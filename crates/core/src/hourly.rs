//! Time-of-day analysis (§6.2, Figure 4, Table 5).
//!
//! The CAMPUS load is "utterly dominated ... by the daily rhythms of user
//! activity": hourly operation counts cycle with the work day, and
//! restricting statistics to peak hours (9am–6pm weekdays) cuts their
//! normalized variance by 4x or more. This module buckets a trace by
//! hour, produces the Figure 4 series, and computes the Table 5
//! mean/standard-deviation summary for all hours vs peak hours.

use crate::record::TraceRecord;
use crate::time::{hour_index, is_peak, HOUR};

/// Per-hour activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HourBucket {
    /// Total operations.
    pub ops: u64,
    /// READ operations.
    pub read_ops: u64,
    /// WRITE operations.
    pub write_ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl HourBucket {
    /// Adds another bucket's counters into this one.
    pub fn absorb(&mut self, other: &HourBucket) {
        self.ops += other.ops;
        self.read_ops += other.read_ops;
        self.write_ops += other.write_ops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }

    /// Hourly read/write operation ratio; `None` when no writes occurred
    /// (the paper notes off-peak ratios "spike" when a few accesses skew
    /// the ratio, so callers decide how to plot empty denominators).
    pub fn rw_ratio(&self) -> Option<f64> {
        (self.write_ops > 0).then(|| self.read_ops as f64 / self.write_ops as f64)
    }
}

/// A trace bucketed into consecutive hours.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HourlySeries {
    /// Index of the first hour (hours since the trace epoch).
    pub first_hour: u64,
    /// One bucket per hour, contiguous from `first_hour`.
    pub buckets: Vec<HourBucket>,
}

/// Record-at-a-time accumulator behind [`HourlySeries::from_records`],
/// usable by one-pass multi-product consumers (the trace index).
/// `Clone` lets a live ingest snapshot its running buckets mid-stream.
#[derive(Debug, Clone, Default)]
pub struct HourlyBuilder {
    map: std::collections::BTreeMap<u64, HourBucket>,
}

impl HourlyBuilder {
    /// Folds one record into its hour bucket.
    pub fn observe(&mut self, r: &TraceRecord) {
        let b = self.map.entry(hour_index(r.micros)).or_default();
        b.ops += 1;
        if r.op.is_read() {
            b.read_ops += 1;
            b.bytes_read += u64::from(r.ret_count);
        } else if r.op.is_write() {
            b.write_ops += 1;
            b.bytes_written += u64::from(r.ret_count);
        }
    }

    /// Folds another builder's buckets into this one. Buckets are pure
    /// per-hour sums, so merging per-chunk builders in any order equals
    /// one pass over the whole trace; [`crate::index::PartialIndex`]
    /// relies on this.
    pub fn absorb(&mut self, other: HourlyBuilder) {
        for (k, b) in other.map {
            self.map.entry(k).or_default().absorb(&b);
        }
    }

    /// Produces the contiguous hourly series.
    pub fn finish(self) -> HourlySeries {
        let Some((&first, _)) = self.map.first_key_value() else {
            return HourlySeries::default();
        };
        let &last = self
            .map
            .last_key_value()
            .map(|(k, _)| k)
            .expect("non-empty");
        let mut buckets = vec![HourBucket::default(); (last - first + 1) as usize];
        for (k, v) in self.map {
            buckets[(k - first) as usize] = v;
        }
        HourlySeries {
            first_hour: first,
            buckets,
        }
    }
}

impl HourlySeries {
    /// Buckets records by hour. Records need not be sorted.
    pub fn from_records<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        let mut b = HourlyBuilder::default();
        for r in records {
            b.observe(r);
        }
        b.finish()
    }

    /// Iterates `(hour_start_micros, bucket)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &HourBucket)> {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, b)| ((self.first_hour + i as u64) * HOUR, b))
    }

    /// The Figure 4 upper panel: `(hour_start_micros, ops)` series.
    pub fn ops_series(&self) -> Vec<(u64, u64)> {
        self.iter().map(|(t, b)| (t, b.ops)).collect()
    }

    /// The Figure 4 lower panel: `(hour_start_micros, read/write ratio)`
    /// series, skipping hours with no writes.
    pub fn ratio_series(&self) -> Vec<(u64, f64)> {
        self.iter()
            .filter_map(|(t, b)| b.rw_ratio().map(|r| (t, r)))
            .collect()
    }

    /// Computes the Table 5 summary over all hours or peak hours only.
    pub fn table5(&self, peak_only: bool) -> Table5Row {
        let selected: Vec<&HourBucket> = self
            .iter()
            .filter(|(t, _)| !peak_only || is_peak(*t))
            .map(|(_, b)| b)
            .collect();
        let stat =
            |f: &dyn Fn(&HourBucket) -> f64| MeanStd::from_samples(selected.iter().map(|b| f(b)));
        Table5Row {
            total_ops: stat(&|b| b.ops as f64),
            data_read_mb: stat(&|b| b.bytes_read as f64 / 1e6),
            read_ops: stat(&|b| b.read_ops as f64),
            data_written_mb: stat(&|b| b.bytes_written as f64 / 1e6),
            write_ops: stat(&|b| b.write_ops as f64),
            rw_op_ratio: MeanStd::from_samples(selected.iter().filter_map(|b| b.rw_ratio())),
            hours: selected.len(),
        }
    }
}

/// A mean and its standard deviation, with the paper's presentation of
/// the deviation as a percentage of the mean.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean and standard deviation from samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let v: Vec<f64> = samples.into_iter().collect();
        if v.is_empty() {
            return Self::default();
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        Self {
            mean,
            std: var.sqrt(),
        }
    }

    /// The standard deviation as a percentage of the mean (Table 5's
    /// parenthesized numbers).
    pub fn std_pct(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            100.0 * self.std / self.mean
        }
    }
}

/// One column of Table 5: hourly averages with normalized deviations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Table5Row {
    /// Total ops per hour.
    pub total_ops: MeanStd,
    /// MB read per hour.
    pub data_read_mb: MeanStd,
    /// Read ops per hour.
    pub read_ops: MeanStd,
    /// MB written per hour.
    pub data_written_mb: MeanStd,
    /// Write ops per hour.
    pub write_ops: MeanStd,
    /// Hourly read/write op ratio.
    pub rw_op_ratio: MeanStd,
    /// Number of hours included.
    pub hours: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FileId, Op};
    use crate::time::{DAY, HOUR};

    fn rec(t: u64, op: Op, bytes: u32) -> TraceRecord {
        TraceRecord::new(t, op, FileId(1)).with_range(0, bytes)
    }

    #[test]
    fn empty_series() {
        let s = HourlySeries::from_records(std::iter::empty());
        assert!(s.buckets.is_empty());
        assert_eq!(s.table5(false).hours, 0);
    }

    #[test]
    fn buckets_are_contiguous() {
        let recs = [
            rec(HOUR / 2, Op::Read, 10),
            rec(3 * HOUR + 1, Op::Write, 20),
        ];
        let s = HourlySeries::from_records(recs.iter());
        assert_eq!(s.first_hour, 0);
        assert_eq!(s.buckets.len(), 4);
        assert_eq!(s.buckets[0].read_ops, 1);
        assert_eq!(s.buckets[1].ops, 0);
        assert_eq!(s.buckets[3].write_ops, 1);
        assert_eq!(s.buckets[3].bytes_written, 20);
    }

    #[test]
    fn ratio_series_skips_zero_write_hours() {
        let recs = [
            rec(0, Op::Read, 1),
            rec(HOUR, Op::Read, 1),
            rec(HOUR + 1, Op::Write, 1),
        ];
        let s = HourlySeries::from_records(recs.iter());
        let ratios = s.ratio_series();
        assert_eq!(ratios.len(), 1);
        assert_eq!(ratios[0].0, HOUR);
        assert_eq!(ratios[0].1, 1.0);
    }

    #[test]
    fn peak_filter_reduces_variance_for_diurnal_load() {
        // Simulate a strongly diurnal week: 100 ops in each peak hour,
        // 1 op in each off-peak hour.
        let mut recs = Vec::new();
        for hour in 0..(7 * 24u64) {
            let t = hour * HOUR + 1;
            let n = if is_peak(t) { 100 } else { 1 };
            for i in 0..n {
                recs.push(rec(t + i, Op::Read, 1));
            }
        }
        let s = HourlySeries::from_records(recs.iter());
        let all = s.table5(false);
        let peak = s.table5(true);
        assert_eq!(peak.hours, 45); // 9 hours x 5 weekdays
        assert!(peak.total_ops.std_pct() < all.total_ops.std_pct() / 4.0);
        assert!((peak.total_ops.mean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mean_std_basics() {
        let ms = MeanStd::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((ms.mean - 5.0).abs() < 1e-9);
        assert!((ms.std - 2.0).abs() < 1e-9);
        assert!((ms.std_pct() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn multi_day_series_length() {
        let recs = [rec(0, Op::Read, 1), rec(2 * DAY, Op::Read, 1)];
        let s = HourlySeries::from_records(recs.iter());
        assert_eq!(s.buckets.len(), 49);
    }
}
