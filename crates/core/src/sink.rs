//! Streaming destinations for trace records.
//!
//! Generation and capture produce records one at a time; analysis wants
//! them in a `Vec`, an on-disk store, or folded straight into an index.
//! [`RecordSink`] is the seam between the two: a producer pushes
//! time-ordered records into *some* sink without knowing whether they
//! are being collected in memory (`Vec<TraceRecord>`), encoded into a
//! chunked store file (`nfstrace_store::StoreWriter`), or accumulated
//! into a [`crate::index::PartialIndex`] — so a multi-day trace never
//! has to exist as one giant vector unless the caller asks for one.

use crate::index::PartialIndex;
use crate::record::TraceRecord;
use std::convert::Infallible;

/// A destination for a stream of time-ordered trace records.
///
/// # Examples
///
/// ```
/// use nfstrace_core::record::{FileId, Op, TraceRecord};
/// use nfstrace_core::sink::RecordSink;
///
/// let mut v: Vec<TraceRecord> = Vec::new();
/// v.push_record(TraceRecord::new(0, Op::Read, FileId(1))).unwrap();
/// assert_eq!(v.len(), 1);
/// ```
pub trait RecordSink {
    /// The sink's failure mode ([`Infallible`] for in-memory sinks).
    type Err;

    /// Accepts the next record of the stream.
    ///
    /// # Errors
    ///
    /// Sink-specific; in-memory sinks never fail, on-disk sinks
    /// propagate I/O and ordering errors.
    fn push_record(&mut self, record: TraceRecord) -> Result<(), Self::Err>;
}

impl RecordSink for Vec<TraceRecord> {
    type Err = Infallible;

    fn push_record(&mut self, record: TraceRecord) -> Result<(), Infallible> {
        self.push(record);
        Ok(())
    }
}

impl RecordSink for PartialIndex {
    type Err = Infallible;

    fn push_record(&mut self, record: TraceRecord) -> Result<(), Infallible> {
        self.observe(&record);
        Ok(())
    }
}

/// Unwraps a `Result<T, Infallible>` without a panic path, for callers
/// driving infallible sinks through the generic interface.
pub fn into_ok<T>(r: Result<T, Infallible>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FileId, Op};

    #[test]
    fn vec_sink_collects_in_order() {
        let mut v: Vec<TraceRecord> = Vec::new();
        for t in [5u64, 9, 12] {
            into_ok(v.push_record(TraceRecord::new(t, Op::Getattr, FileId(1))));
        }
        let times: Vec<u64> = v.iter().map(|r| r.micros).collect();
        assert_eq!(times, vec![5, 9, 12]);
    }

    #[test]
    fn partial_index_sink_accumulates() {
        let mut p = PartialIndex::default();
        into_ok(p.push_record(TraceRecord::new(0, Op::Read, FileId(1)).with_range(0, 4096)));
        into_ok(p.push_record(TraceRecord::new(1, Op::Write, FileId(1)).with_range(0, 512)));
        let built = p.finish();
        assert_eq!(built.summary.read_ops, 1);
        assert_eq!(built.summary.write_ops, 1);
    }
}
