//! The on-disk trace format.
//!
//! One record per line, in the spirit of the `nfsdump` format the paper's
//! tools emit: a fixed prefix of always-present fields followed by
//! `key=value` pairs for optional ones. Names are percent-escaped so the
//! format stays line- and space-delimited. The format is what the
//! anonymizer reads and writes.
//!
//! ```text
//! v1 <micros> <reply_micros> <client> <server> <uid> <gid> <xid> <vers>
//!    <op> <fh-hex> <status> [off=N] [cnt=N] [ret=N] [eof=1] [name=...]
//!    [name2=...] [fh2=H] [pre=N] [post=N] [trunc=N] [newfh=H] [ftype=N]
//! ```

use crate::record::{FileId, Op, TraceRecord};
use std::fmt;
use std::io::{BufRead, Write};

/// An error from parsing the text trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Percent-escapes a name so it contains no whitespace, `%`, or `=`.
pub fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'%' | b'=' | b' ' | b'\t' | b'\n' | b'\r' => {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
            0x21..=0x7e => out.push(b as char),
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
        }
    }
    out
}

/// Reverses [`escape_name`].
pub fn unescape_name(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Serializes one record as a format line (no trailing newline).
pub fn format_record(r: &TraceRecord) -> String {
    let mut line = String::with_capacity(96);
    write_record_into(r, &mut line);
    line
}

/// Appends one record's format line (no trailing newline) to `line`.
///
/// The allocation-free building block behind [`format_record`] and
/// [`write_trace`]: callers stream multi-gigabyte traces through one
/// reused buffer instead of allocating a `String` per record.
pub fn write_record_into(r: &TraceRecord, line: &mut String) {
    use std::fmt::Write as _;
    // Writing into a String is infallible.
    let _ = write!(
        line,
        "v1 {} {} {} {} {} {} {} {} {} {:x} {}",
        r.micros,
        r.reply_micros,
        r.client,
        r.server,
        r.uid,
        r.gid,
        r.xid,
        r.vers,
        r.op.token(),
        r.fh.0,
        r.status,
    );
    if r.offset != 0 || r.count != 0 || r.ret_count != 0 {
        let _ = write!(
            line,
            " off={} cnt={} ret={}",
            r.offset, r.count, r.ret_count
        );
    }
    if r.eof {
        line.push_str(" eof=1");
    }
    if let Some(n) = &r.name {
        line.push_str(" name=");
        line.push_str(&escape_name(n));
    }
    if let Some(n) = &r.name2 {
        line.push_str(" name2=");
        line.push_str(&escape_name(n));
    }
    if let Some(f) = r.fh2 {
        let _ = write!(line, " fh2={:x}", f.0);
    }
    if let Some(v) = r.pre_size {
        let _ = write!(line, " pre={v}");
    }
    if let Some(v) = r.post_size {
        let _ = write!(line, " post={v}");
    }
    if let Some(v) = r.truncate_to {
        let _ = write!(line, " trunc={v}");
    }
    if let Some(f) = r.new_fh {
        let _ = write!(line, " newfh={:x}", f.0);
    }
    if let Some(t) = r.ftype {
        let _ = write!(line, " ftype={t}");
    }
}

/// Parses one format line.
///
/// # Errors
///
/// [`ParseError`] describing the malformed field; `line_no` is echoed in
/// the error.
pub fn parse_record(line: &str, line_no: usize) -> Result<TraceRecord, ParseError> {
    let err = |m: &str| ParseError {
        line: line_no,
        message: m.to_string(),
    };
    let mut it = line.split_ascii_whitespace();
    if it.next() != Some("v1") {
        return Err(err("missing v1 magic"));
    }
    let mut next_u64 = |what: &str| -> Result<u64, ParseError> {
        it.next()
            .ok_or_else(|| err(&format!("missing {what}")))?
            .parse::<u64>()
            .map_err(|_| err(&format!("bad {what}")))
    };
    let micros = next_u64("micros")?;
    let reply_micros = next_u64("reply_micros")?;
    let client = next_u64("client")? as u32;
    let server = next_u64("server")? as u32;
    let uid = next_u64("uid")? as u32;
    let gid = next_u64("gid")? as u32;
    let xid = next_u64("xid")? as u32;
    let vers = next_u64("vers")? as u8;
    let op_tok = it.next().ok_or_else(|| err("missing op"))?;
    let op = Op::from_token(op_tok).ok_or_else(|| err("unknown op"))?;
    let fh = u64::from_str_radix(it.next().ok_or_else(|| err("missing fh"))?, 16)
        .map_err(|_| err("bad fh"))?;
    let status = it
        .next()
        .ok_or_else(|| err("missing status"))?
        .parse::<u32>()
        .map_err(|_| err("bad status"))?;

    let mut r = TraceRecord::new(micros, op, FileId(fh));
    r.reply_micros = reply_micros;
    r.client = client;
    r.server = server;
    r.uid = uid;
    r.gid = gid;
    r.xid = xid;
    r.vers = vers;
    r.status = status;
    r.ret_count = 0;

    for kv in it {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| err(&format!("bad key=value: {kv}")))?;
        match k {
            "off" => r.offset = v.parse().map_err(|_| err("bad off"))?,
            "cnt" => r.count = v.parse().map_err(|_| err("bad cnt"))?,
            "ret" => r.ret_count = v.parse().map_err(|_| err("bad ret"))?,
            "eof" => r.eof = v == "1",
            "name" => r.name = Some(unescape_name(v).ok_or_else(|| err("bad name escape"))?),
            "name2" => r.name2 = Some(unescape_name(v).ok_or_else(|| err("bad name2 escape"))?),
            "fh2" => {
                r.fh2 = Some(FileId(
                    u64::from_str_radix(v, 16).map_err(|_| err("bad fh2"))?,
                ))
            }
            "pre" => r.pre_size = Some(v.parse().map_err(|_| err("bad pre"))?),
            "post" => r.post_size = Some(v.parse().map_err(|_| err("bad post"))?),
            "trunc" => r.truncate_to = Some(v.parse().map_err(|_| err("bad trunc"))?),
            "newfh" => {
                r.new_fh = Some(FileId(
                    u64::from_str_radix(v, 16).map_err(|_| err("bad newfh"))?,
                ))
            }
            "ftype" => r.ftype = Some(v.parse().map_err(|_| err("bad ftype"))?),
            other => return Err(err(&format!("unknown key {other}"))),
        }
    }
    Ok(r)
}

/// Writes records as lines to `w`, streaming every record through one
/// reused line buffer (no per-record allocation).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<'a, W: Write, I>(mut w: W, records: I) -> std::io::Result<()>
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut line = String::with_capacity(160);
    for r in records {
        line.clear();
        write_record_into(r, &mut line);
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Reads all records from `r`, skipping blank and `#`-comment lines.
///
/// # Errors
///
/// I/O errors are converted to a [`ParseError`] with the failing line.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<TraceRecord>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| ParseError {
            line: i + 1,
            message: format!("i/o error: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_record(trimmed, i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecord {
        let mut r = TraceRecord::new(1_234_567, Op::Lookup, FileId(0xdead)).with_name("inbox.lock");
        r.reply_micros = 1_234_999;
        r.client = 0x0a000001;
        r.uid = 501;
        r.gid = 100;
        r.xid = 0x77;
        r.new_fh = Some(FileId(0xbeef));
        r.ftype = Some(1);
        r
    }

    #[test]
    fn roundtrip_basic() {
        let r = sample();
        let line = format_record(&r);
        let got = parse_record(&line, 1).unwrap();
        assert_eq!(got, r);
    }

    #[test]
    fn roundtrip_read_record() {
        let mut r = TraceRecord::new(5, Op::Read, FileId(9)).with_range(8192, 8192);
        r.eof = true;
        r.post_size = Some(16384);
        let got = parse_record(&format_record(&r), 1).unwrap();
        assert_eq!(got, r);
    }

    #[test]
    fn names_with_spaces_and_percent_escape() {
        for name in ["a b", "100% done", "tab\there", "eq=sign", "naïve"] {
            let r = TraceRecord::new(0, Op::Create, FileId(1)).with_name(name);
            let line = format_record(&r);
            assert!(!line.contains('\t'));
            let got = parse_record(&line, 1).unwrap();
            assert_eq!(got.name.as_deref(), Some(name));
        }
    }

    #[test]
    fn write_and_read_trace() {
        let recs = vec![
            sample(),
            TraceRecord::new(10, Op::Write, FileId(3)).with_range(0, 100),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, recs.iter()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let got = read_trace(text.as_bytes()).unwrap();
        assert_eq!(got, recs);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a comment\n\nv1 0 0 0 0 0 0 0 3 null 0 0\n";
        let got = read_trace(text.as_bytes()).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].op, Op::Null);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "v1 0 0 0 0 0 0 0 3 null 0 0\nv1 bogus\n";
        let e = read_trace(text.as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_op_rejected() {
        assert!(parse_record("v1 0 0 0 0 0 0 0 3 frobnicate 0 0", 1).is_err());
    }

    #[test]
    fn unescape_rejects_truncated_escape() {
        assert_eq!(unescape_name("abc%2"), None);
        assert_eq!(unescape_name("abc%zz"), None);
        assert_eq!(unescape_name("abc%20"), Some("abc ".to_string()));
    }
}
