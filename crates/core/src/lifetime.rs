//! Create-based block lifetime analysis (§5.2, Table 4, Figure 3).
//!
//! Following Roselli's create-based method, the trace is processed in two
//! phases. During Phase 1 both block *births* (data writes or file
//! extensions) and *deaths* (overwrites, truncates, file deletions) are
//! recorded; during Phase 2 (the *end margin*) only deaths are recorded.
//! Death records whose lifespan exceeds the Phase 2 length are discarded
//! to remove sampling bias, and every Phase-1-born block without a
//! counted death is *end surplus*.
//!
//! The paper ran five 24-hour Phase 1 windows (weekday 9am starts) each
//! with a 24-hour end margin.

use crate::record::{FileId, Op, TraceRecord};
use crate::runs::BLOCK;
use std::collections::HashMap;

/// Why a block came into existence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BirthCause {
    /// An actual data write.
    Write,
    /// File extension: blocks between the old end-of-file and the write
    /// (or truncate-up target) that were never explicitly written.
    Extension,
}

/// Why a block died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeathCause {
    /// Overwritten by a later write.
    Overwrite,
    /// Discarded by a truncating SETATTR (or truncating CREATE).
    Truncate,
    /// The file was removed.
    Delete,
}

/// Phase configuration for one analysis window.
///
/// `Hash` so reports can be cached keyed by their configuration (see
/// [`crate::index::TraceIndex`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LifetimeConfig {
    /// Start of Phase 1 (births + deaths recorded).
    pub phase1_start: u64,
    /// Length of Phase 1 in microseconds.
    pub phase1_len: u64,
    /// Length of Phase 2, the end margin (deaths only).
    pub phase2_len: u64,
}

impl LifetimeConfig {
    /// The paper's daily configuration: 24 h phase starting at
    /// `start`, with a 24 h end margin.
    pub fn daily(start: u64) -> Self {
        Self {
            phase1_start: start,
            phase1_len: crate::time::DAY,
            phase2_len: crate::time::DAY,
        }
    }

    fn phase1_end(&self) -> u64 {
        self.phase1_start + self.phase1_len
    }

    fn phase2_end(&self) -> u64 {
        self.phase1_end() + self.phase2_len
    }
}

#[derive(Debug, Clone, Copy)]
struct LiveBlock {
    birth_micros: u64,
    /// Whether the birth fell inside Phase 1 (countable).
    countable: bool,
}

#[derive(Debug, Default)]
struct FileState {
    size: u64,
    live: HashMap<u64, LiveBlock>,
}

/// The outcome of one lifetime analysis window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LifetimeReport {
    /// Countable births from data writes.
    pub births_write: u64,
    /// Countable births from file extension.
    pub births_extension: u64,
    /// Counted deaths by overwrite.
    pub deaths_overwrite: u64,
    /// Counted deaths by truncation.
    pub deaths_truncate: u64,
    /// Counted deaths by file deletion.
    pub deaths_delete: u64,
    /// Deaths discarded because the lifespan exceeded Phase 2.
    pub deaths_discarded: u64,
    /// Phase-1 births with no counted death.
    pub end_surplus: u64,
    /// Lifespans (µs) of counted deaths, unsorted.
    pub lifespans: Vec<u64>,
}

impl LifetimeReport {
    /// Total countable births.
    pub fn births_total(&self) -> u64 {
        self.births_write + self.births_extension
    }

    /// Total counted deaths.
    pub fn deaths_total(&self) -> u64 {
        self.deaths_overwrite + self.deaths_truncate + self.deaths_delete
    }

    /// End surplus as a fraction of births (the paper reports 2.1–5.9%
    /// for CAMPUS, 3.5–9.5% for EECS).
    pub fn end_surplus_fraction(&self) -> f64 {
        let b = self.births_total();
        if b == 0 {
            0.0
        } else {
            self.end_surplus as f64 / b as f64
        }
    }

    /// Merges another window's report into this one (the paper sums five
    /// weekday windows for Table 4).
    pub fn merge(&mut self, other: &LifetimeReport) {
        self.births_write += other.births_write;
        self.births_extension += other.births_extension;
        self.deaths_overwrite += other.deaths_overwrite;
        self.deaths_truncate += other.deaths_truncate;
        self.deaths_delete += other.deaths_delete;
        self.deaths_discarded += other.deaths_discarded;
        self.end_surplus += other.end_surplus;
        self.lifespans.extend_from_slice(&other.lifespans);
    }

    /// Cumulative fraction of counted deaths with lifespan ≤ each probe
    /// point (Figure 3's x-axis: 1 s, 30 s, 5 min, 1 h, 1 day).
    pub fn cdf(&self, probes_micros: &[u64]) -> Vec<(u64, f64)> {
        let n = self.lifespans.len() as f64;
        probes_micros
            .iter()
            .map(|&p| {
                let c = self.lifespans.iter().filter(|&&l| l <= p).count() as f64;
                (p, if n == 0.0 { 0.0 } else { c / n })
            })
            .collect()
    }

    /// Median lifespan of counted deaths, if any.
    pub fn median_lifespan(&self) -> Option<u64> {
        if self.lifespans.is_empty() {
            return None;
        }
        let mut v = self.lifespans.clone();
        v.sort_unstable();
        Some(v[v.len() / 2])
    }
}

/// Standard Figure 3 probe points.
pub fn figure3_probes() -> Vec<u64> {
    use crate::time::{DAY, HOUR, MINUTE, SECOND};
    vec![
        SECOND,
        30 * SECOND,
        5 * MINUTE,
        30 * MINUTE,
        HOUR,
        6 * HOUR,
        18 * HOUR,
        DAY,
    ]
}

/// The streaming analyzer. Feed time-ordered records with
/// [`BlockLifetimeAnalyzer::observe`], then call
/// [`BlockLifetimeAnalyzer::finish`].
#[derive(Debug)]
pub struct BlockLifetimeAnalyzer {
    config: LifetimeConfig,
    files: HashMap<FileId, FileState>,
    /// (directory, name) → file, learned from lookups and creates so
    /// REMOVE calls (which carry only the directory and name) can be
    /// attributed to a file.
    names: HashMap<(FileId, String), FileId>,
    report: LifetimeReport,
}

impl BlockLifetimeAnalyzer {
    /// Creates an analyzer for one window.
    pub fn new(config: LifetimeConfig) -> Self {
        Self {
            config,
            files: HashMap::new(),
            names: HashMap::new(),
            report: LifetimeReport::default(),
        }
    }

    /// Processes one record. Records outside the two phases are ignored
    /// except for name learning (which has no timing sensitivity).
    pub fn observe(&mut self, r: &TraceRecord) {
        // Name learning happens regardless of phase.
        match r.op {
            Op::Lookup | Op::Create | Op::Mkdir | Op::Symlink | Op::Mknod => {
                if let (Some(name), Some(child)) = (&r.name, r.new_fh) {
                    self.names.insert((r.fh, name.clone()), child);
                }
            }
            Op::Rename => {
                if let (Some(from), Some(to)) = (&r.name, &r.name2) {
                    if let Some(child) = self.names.remove(&(r.fh, from.clone())) {
                        let to_dir = r.fh2.unwrap_or(r.fh);
                        // A rename over an existing file deletes it.
                        if let Some(old) = self.names.insert((to_dir, to.clone()), child) {
                            if old != child {
                                self.kill_file(old, r.micros, DeathCause::Delete);
                            }
                        }
                    }
                }
            }
            _ => {}
        }

        if r.micros < self.config.phase1_start || r.micros >= self.config.phase2_end() {
            return;
        }

        match r.op {
            Op::Write => self.on_write(r),
            Op::Setattr => {
                if let Some(target) = r.truncate_to {
                    self.on_truncate(r.fh, target, r.micros);
                }
            }
            Op::Create => {
                // CREATE (unchecked) over an existing name truncates it.
                if let Some(name) = &r.name {
                    if let Some(&existing) = self.names.get(&(r.fh, name.clone())) {
                        if Some(existing) != r.new_fh {
                            self.kill_file(existing, r.micros, DeathCause::Delete);
                        } else {
                            self.on_truncate(existing, 0, r.micros);
                        }
                    }
                }
                if let Some(new) = r.new_fh {
                    self.files.entry(new).or_default().size = 0;
                }
            }
            Op::Remove => {
                if let Some(name) = &r.name {
                    if let Some(child) = self.names.remove(&(r.fh, name.clone())) {
                        self.kill_file(child, r.micros, DeathCause::Delete);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_write(&mut self, r: &TraceRecord) {
        let now = r.micros;
        let count = r.ret_count.max(r.count);
        let state = self.files.entry(r.fh).or_default();
        // Seed size from WCC pre-op attributes when this is the first
        // sighting of the file.
        if state.size == 0 && state.live.is_empty() {
            if let Some(pre) = r.pre_size {
                state.size = pre;
            }
        }
        let in_phase1 = now < self.config.phase1_end();

        // Extension births: blocks between old EOF and the write start.
        if r.offset > state.size {
            let first = state.size.div_ceil(BLOCK);
            let last = r.offset / BLOCK;
            for b in first..last {
                state.live.insert(
                    b,
                    LiveBlock {
                        birth_micros: now,
                        countable: in_phase1,
                    },
                );
                if in_phase1 {
                    self.report.births_extension += 1;
                }
            }
        }

        // Written blocks: overwrite deaths then births.
        let start = r.offset / BLOCK;
        let end = (r.offset + u64::from(count)).div_ceil(BLOCK);
        for b in start..end.max(start + 1) {
            if let Some(old) = state.live.remove(&b) {
                record_death(
                    &mut self.report,
                    &self.config,
                    old,
                    now,
                    DeathCause::Overwrite,
                );
            }
            state.live.insert(
                b,
                LiveBlock {
                    birth_micros: now,
                    countable: in_phase1,
                },
            );
            if in_phase1 {
                self.report.births_write += 1;
            }
        }
        state.size = state.size.max(r.offset + u64::from(count));
    }

    fn on_truncate(&mut self, fh: FileId, target: u64, now: u64) {
        let Some(state) = self.files.get_mut(&fh) else {
            return;
        };
        if target < state.size {
            let first_dead = target.div_ceil(BLOCK);
            let mut dead: Vec<u64> = state
                .live
                .keys()
                .copied()
                .filter(|&b| b >= first_dead)
                .collect();
            // Block order, not map order: keeps the report (its lifespan
            // list in particular) deterministic across runs.
            dead.sort_unstable();
            for b in dead {
                if let Some(old) = state.live.remove(&b) {
                    record_death(
                        &mut self.report,
                        &self.config,
                        old,
                        now,
                        DeathCause::Truncate,
                    );
                }
            }
        }
        state.size = target;
    }

    fn kill_file(&mut self, fh: FileId, now: u64, cause: DeathCause) {
        if let Some(state) = self.files.remove(&fh) {
            // Block order, not map order, for a deterministic report.
            let mut blocks: Vec<(u64, LiveBlock)> = state.live.into_iter().collect();
            blocks.sort_unstable_by_key(|&(b, _)| b);
            for (_, old) in blocks {
                record_death(&mut self.report, &self.config, old, now, cause);
            }
        }
    }

    /// Ends the analysis: every still-live countable block becomes end
    /// surplus. Returns the report.
    pub fn finish(mut self) -> LifetimeReport {
        for state in self.files.values() {
            self.report.end_surplus += state.live.values().filter(|b| b.countable).count() as u64;
        }
        self.report
    }
}

/// Lifetime windows can ride a fused replay pass alongside the other
/// analyzers — the `repro` suite runs all five weekday windows in one
/// pass this way (see [`crate::index::RecordObserver`]).
impl crate::index::RecordObserver for BlockLifetimeAnalyzer {
    fn observe(&mut self, r: &TraceRecord) {
        BlockLifetimeAnalyzer::observe(self, r);
    }
}

fn record_death(
    report: &mut LifetimeReport,
    config: &LifetimeConfig,
    block: LiveBlock,
    now: u64,
    cause: DeathCause,
) {
    if !block.countable || now >= config.phase2_end() {
        return;
    }
    let lifespan = now.saturating_sub(block.birth_micros);
    if lifespan > config.phase2_len {
        // Sampling-bias removal: counted as end surplus instead.
        report.deaths_discarded += 1;
        report.end_surplus += 1;
        return;
    }
    match cause {
        DeathCause::Overwrite => report.deaths_overwrite += 1,
        DeathCause::Truncate => report.deaths_truncate += 1,
        DeathCause::Delete => report.deaths_delete += 1,
    }
    report.lifespans.push(lifespan);
}

/// Runs a full windowed analysis over time-ordered records.
pub fn analyze<'a, I>(records: I, config: LifetimeConfig) -> LifetimeReport
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut a = BlockLifetimeAnalyzer::new(config);
    for r in records {
        a.observe(r);
    }
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{DAY, HOUR, SECOND};

    fn cfg() -> LifetimeConfig {
        LifetimeConfig {
            phase1_start: 0,
            phase1_len: DAY,
            phase2_len: DAY,
        }
    }

    fn write(t: u64, fh: u64, off: u64, cnt: u32) -> TraceRecord {
        TraceRecord::new(t, Op::Write, FileId(fh)).with_range(off, cnt)
    }

    fn create(t: u64, dir: u64, name: &str, child: u64) -> TraceRecord {
        let mut r = TraceRecord::new(t, Op::Create, FileId(dir)).with_name(name);
        r.new_fh = Some(FileId(child));
        r
    }

    fn remove(t: u64, dir: u64, name: &str) -> TraceRecord {
        TraceRecord::new(t, Op::Remove, FileId(dir)).with_name(name)
    }

    #[test]
    fn overwrite_death_and_lifespan() {
        let recs = [
            write(0, 1, 0, BLOCK as u32),
            write(10 * SECOND, 1, 0, BLOCK as u32),
        ];
        let rep = analyze(recs.iter(), cfg());
        assert_eq!(rep.births_write, 2);
        assert_eq!(rep.deaths_overwrite, 1);
        assert_eq!(rep.lifespans, vec![10 * SECOND]);
        // The overwriting block itself survives.
        assert_eq!(rep.end_surplus, 1);
    }

    #[test]
    fn extension_births_counted() {
        // Write at offset 4 blocks into an empty file: blocks 0-3 born by
        // extension, block 4 by write.
        let recs = [write(0, 1, 4 * BLOCK, BLOCK as u32)];
        let rep = analyze(recs.iter(), cfg());
        assert_eq!(rep.births_extension, 4);
        assert_eq!(rep.births_write, 1);
    }

    #[test]
    fn truncate_deaths() {
        let recs = [write(0, 1, 0, (4 * BLOCK) as u32), {
            let mut r = TraceRecord::new(HOUR, Op::Setattr, FileId(1));
            r.truncate_to = Some(0);
            r
        }];
        let rep = analyze(recs.iter(), cfg());
        assert_eq!(rep.deaths_truncate, 4);
        assert_eq!(rep.end_surplus, 0);
    }

    #[test]
    fn delete_deaths_via_name_resolution() {
        let recs = [
            create(0, 99, "scratch", 7),
            write(1, 7, 0, (2 * BLOCK) as u32),
            remove(2 * SECOND, 99, "scratch"),
        ];
        let rep = analyze(recs.iter(), cfg());
        assert_eq!(rep.deaths_delete, 2);
        assert_eq!(rep.births_write, 2);
        assert_eq!(rep.end_surplus, 0);
    }

    #[test]
    fn phase2_births_not_counted_but_deaths_are() {
        let recs = [
            write(DAY - SECOND, 1, 0, BLOCK as u32), // phase-1 birth
            write(DAY + HOUR, 1, 0, BLOCK as u32),   // phase-2: kills it
        ];
        let rep = analyze(recs.iter(), cfg());
        assert_eq!(rep.births_write, 1);
        assert_eq!(rep.deaths_overwrite, 1);
        // The phase-2-born block is not surplus (not countable).
        assert_eq!(rep.end_surplus, 0);
    }

    #[test]
    fn long_lifespan_discarded_as_surplus() {
        let mut c = cfg();
        c.phase2_len = HOUR; // short end margin
        let recs = [
            write(0, 1, 0, BLOCK as u32),
            // Death at phase1_end + 30min, lifespan ≈ 24.5h > 1h margin.
            write(DAY + HOUR / 2, 1, 0, BLOCK as u32),
        ];
        let rep = analyze(recs.iter(), c);
        assert_eq!(rep.deaths_overwrite, 0);
        assert_eq!(rep.deaths_discarded, 1);
        assert_eq!(rep.end_surplus, 1);
    }

    #[test]
    fn events_after_phase2_ignored() {
        let recs = [
            write(0, 1, 0, BLOCK as u32),
            write(3 * DAY, 1, 0, BLOCK as u32),
        ];
        let rep = analyze(recs.iter(), cfg());
        assert_eq!(rep.deaths_total(), 0);
        assert_eq!(rep.end_surplus, 1);
    }

    #[test]
    fn rename_over_existing_deletes_target() {
        let recs = [
            create(0, 99, "mbox", 7),
            write(1, 7, 0, BLOCK as u32),
            create(2, 99, "mbox.tmp", 8),
            write(3, 8, 0, BLOCK as u32),
            {
                let mut r = TraceRecord::new(SECOND, Op::Rename, FileId(99)).with_name("mbox.tmp");
                r.name2 = Some("mbox".into());
                r.fh2 = Some(FileId(99));
                r
            },
        ];
        let rep = analyze(recs.iter(), cfg());
        assert_eq!(rep.deaths_delete, 1); // old mbox block
        assert_eq!(rep.end_surplus, 1); // the renamed file's block lives
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let recs = [
            write(0, 1, 0, BLOCK as u32),
            write(SECOND / 2, 1, 0, BLOCK as u32),
            write(10 * SECOND, 1, 0, BLOCK as u32),
            write(20 * crate::time::MINUTE, 1, 0, BLOCK as u32),
        ];
        let rep = analyze(recs.iter(), cfg());
        let cdf = rep.cdf(&figure3_probes());
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Lifespans: 0.5 s, 9.5 s, ~20 min; the median is the middle one.
        assert_eq!(rep.median_lifespan(), Some(9_500_000));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = analyze(
            [
                write(0, 1, 0, BLOCK as u32),
                write(1000, 1, 0, BLOCK as u32),
            ]
            .iter(),
            cfg(),
        );
        let b = analyze(
            [
                write(0, 2, 0, BLOCK as u32),
                write(1000, 2, 0, BLOCK as u32),
            ]
            .iter(),
            cfg(),
        );
        a.merge(&b);
        assert_eq!(a.births_write, 4);
        assert_eq!(a.deaths_overwrite, 2);
        assert_eq!(a.lifespans.len(), 2);
    }

    #[test]
    fn pre_size_seeds_extension_accounting() {
        // WCC says the file was 2 blocks; a write at block 5 extends by 3.
        let mut w = write(0, 1, 5 * BLOCK, BLOCK as u32);
        w.pre_size = Some(2 * BLOCK);
        let rep = analyze(std::iter::once(&w), cfg());
        assert_eq!(rep.births_extension, 3);
        assert_eq!(rep.births_write, 1);
    }
}
