//! Simulation-time helpers.
//!
//! The trace epoch (time 0) is **Sunday 00:00**, matching the paper's
//! analysis week of Sunday 10/21/2001 through Saturday 10/27/2001. Peak
//! hours are 9am–6pm Monday through Friday (§6.2).

/// Microseconds per second.
pub const SECOND: u64 = 1_000_000;
/// Microseconds per minute.
pub const MINUTE: u64 = 60 * SECOND;
/// Microseconds per hour.
pub const HOUR: u64 = 60 * MINUTE;
/// Microseconds per day.
pub const DAY: u64 = 24 * HOUR;
/// Microseconds per week.
pub const WEEK: u64 = 7 * DAY;

/// Day-of-week names starting from the trace epoch (a Sunday).
pub const DAY_NAMES: [&str; 7] = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];

/// Hour-of-day (0-23) of a trace timestamp.
pub fn hour_of_day(micros: u64) -> u32 {
    ((micros % DAY) / HOUR) as u32
}

/// Day-of-week (0 = Sunday) of a trace timestamp.
pub fn day_of_week(micros: u64) -> u32 {
    ((micros % WEEK) / DAY) as u32
}

/// Absolute hour index since the epoch.
pub fn hour_index(micros: u64) -> u64 {
    micros / HOUR
}

/// Whether a timestamp falls in the paper's peak hours: 9am–6pm on a
/// weekday (Monday=1 … Friday=5).
pub fn is_peak(micros: u64) -> bool {
    let dow = day_of_week(micros);
    let hod = hour_of_day(micros);
    (1..=5).contains(&dow) && (9..18).contains(&hod)
}

/// Formats a trace timestamp as `Day HH:MM:SS`.
pub fn format_micros(micros: u64) -> String {
    let dow = day_of_week(micros) as usize;
    let h = hour_of_day(micros);
    let m = (micros % HOUR) / MINUTE;
    let s = (micros % MINUTE) / SECOND;
    format!("{} {:02}:{:02}:{:02}", DAY_NAMES[dow], h, m, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_sunday_midnight() {
        assert_eq!(day_of_week(0), 0);
        assert_eq!(hour_of_day(0), 0);
        assert!(!is_peak(0));
    }

    #[test]
    fn monday_ten_am_is_peak() {
        let t = DAY + 10 * HOUR;
        assert_eq!(day_of_week(t), 1);
        assert_eq!(hour_of_day(t), 10);
        assert!(is_peak(t));
    }

    #[test]
    fn peak_boundaries() {
        let mon = DAY;
        assert!(!is_peak(mon + 8 * HOUR + 59 * MINUTE));
        assert!(is_peak(mon + 9 * HOUR));
        assert!(is_peak(mon + 17 * HOUR + 59 * MINUTE));
        assert!(!is_peak(mon + 18 * HOUR));
    }

    #[test]
    fn weekend_is_never_peak() {
        for h in 0..24u64 {
            assert!(!is_peak(h * HOUR)); // Sunday
            assert!(!is_peak(6 * DAY + h * HOUR)); // Saturday
        }
    }

    #[test]
    fn formatting() {
        assert_eq!(format_micros(0), "Sun 00:00:00");
        assert_eq!(
            format_micros(3 * DAY + 9 * HOUR + 30 * MINUTE + 5 * SECOND),
            "Wed 09:30:05"
        );
    }

    #[test]
    fn second_week_wraps() {
        assert_eq!(day_of_week(WEEK + DAY), 1);
        assert!(is_peak(WEEK + DAY + 12 * HOUR));
    }
}
