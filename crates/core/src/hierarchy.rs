//! On-the-fly reconstruction of the active directory hierarchy (§4.1.1).
//!
//! "It is possible to reconstruct the active parts of the hierarchy
//! on-the-fly by learning the relationship between directories and their
//! contents as revealed by lookup calls and responses ... after
//! processing several minutes of traces, the probability is very small
//! that we will encounter a file or directory whose parent directory has
//! not already been seen."

use crate::record::{FileId, Op, TraceRecord};
use std::collections::HashMap;

/// A reconstructed (partial) namespace: child → (parent, name).
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    parent: HashMap<FileId, (FileId, String)>,
    children: HashMap<(FileId, String), FileId>,
    /// Identities ever observed as a directory argument or child.
    known: std::collections::HashSet<FileId>,
}

impl Hierarchy {
    /// An empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learns from one record (lookups, creates, renames, removes).
    pub fn observe(&mut self, r: &TraceRecord) {
        match r.op {
            Op::Lookup | Op::Create | Op::Mkdir | Op::Symlink | Op::Mknod => {
                if let (Some(name), Some(child)) = (&r.name, r.new_fh) {
                    self.link(r.fh, name.clone(), child);
                }
                self.known.insert(r.fh);
            }
            Op::Rename => {
                if let (Some(from), Some(to)) = (&r.name, &r.name2) {
                    let to_dir = r.fh2.unwrap_or(r.fh);
                    if let Some(child) = self.children.remove(&(r.fh, from.clone())) {
                        self.link(to_dir, to.clone(), child);
                    }
                }
            }
            Op::Remove | Op::Rmdir => {
                if let Some(name) = &r.name {
                    if let Some(child) = self.children.remove(&(r.fh, name.clone())) {
                        self.parent.remove(&child);
                    }
                }
            }
            _ => {
                self.known.insert(r.fh);
            }
        }
    }

    fn link(&mut self, dir: FileId, name: String, child: FileId) {
        if let Some(old) = self.children.insert((dir, name.clone()), child) {
            if old != child {
                self.parent.remove(&old);
            }
        }
        self.parent.insert(child, (dir, name));
        self.known.insert(dir);
        self.known.insert(child);
    }

    /// The parent directory and entry name of `fh`, if learned.
    pub fn parent_of(&self, fh: FileId) -> Option<(FileId, &str)> {
        self.parent.get(&fh).map(|(p, n)| (*p, n.as_str()))
    }

    /// Looks up a child by directory and name.
    pub fn child_of(&self, dir: FileId, name: &str) -> Option<FileId> {
        self.children.get(&(dir, name.to_string())).copied()
    }

    /// Reconstructs the path of `fh` as far up as the hierarchy is known,
    /// e.g. `".../home7/inbox.lock"`. Cycles are cut defensively.
    pub fn path_of(&self, fh: FileId) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut cur = fh;
        let mut hops = 0;
        while let Some((p, name)) = self.parent_of(cur) {
            parts.push(name);
            cur = p;
            hops += 1;
            if hops > 512 {
                break;
            }
        }
        parts.reverse();
        format!(".../{}", parts.join("/"))
    }

    /// Number of child links learned.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

/// One point of the §4.1.1 coverage measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveragePoint {
    /// End of the measurement interval, microseconds.
    pub micros: u64,
    /// Operations in the interval whose primary handle had a known
    /// parent (or was a known directory), over all operations.
    pub known_fraction: f64,
}

/// Replays a trace, measuring per-interval how often an operation's file
/// was already placeable in the hierarchy. The paper's claim: this
/// fraction climbs toward 1 within minutes.
pub fn coverage_over_time<'a, I>(records: I, bucket_micros: u64) -> Vec<CoveragePoint>
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut b = CoverageBuilder::new(bucket_micros);
    for r in records {
        b.observe(r);
    }
    b.finish()
}

/// Record-at-a-time accumulator behind [`coverage_over_time`], usable by
/// streaming consumers (the out-of-core store index) that cannot hold
/// the trace in memory.
#[derive(Debug)]
pub struct CoverageBuilder {
    bucket_micros: u64,
    h: Hierarchy,
    out: Vec<CoveragePoint>,
    bucket_end: u64,
    known: u64,
    total: u64,
}

impl CoverageBuilder {
    /// Creates a builder with the given measurement interval.
    pub fn new(bucket_micros: u64) -> Self {
        CoverageBuilder {
            bucket_micros,
            h: Hierarchy::new(),
            out: Vec::new(),
            bucket_end: 0,
            known: 0,
            total: 0,
        }
    }

    /// Folds one record in. Records must arrive in time order.
    pub fn observe(&mut self, r: &TraceRecord) {
        if self.bucket_end == 0 {
            self.bucket_end = r.micros + self.bucket_micros;
        }
        while r.micros >= self.bucket_end {
            self.flush_bucket();
        }
        self.total += 1;
        if self.h.parent_of(r.fh).is_some() || self.h.known.contains(&r.fh) {
            self.known += 1;
        }
        self.h.observe(r);
    }

    fn flush_bucket(&mut self) {
        self.out.push(CoveragePoint {
            micros: self.bucket_end,
            known_fraction: if self.total == 0 {
                0.0
            } else {
                self.known as f64 / self.total as f64
            },
        });
        self.known = 0;
        self.total = 0;
        self.bucket_end += self.bucket_micros;
    }

    /// Closes the trailing partial bucket and returns the series.
    pub fn finish(mut self) -> Vec<CoveragePoint> {
        if self.total > 0 {
            self.out.push(CoveragePoint {
                micros: self.bucket_end,
                known_fraction: self.known as f64 / self.total as f64,
            });
        }
        self.out
    }
}

/// Coverage accumulation can ride a fused replay pass alongside the
/// other analyzers (see [`crate::index::RecordObserver`]).
impl crate::index::RecordObserver for CoverageBuilder {
    fn observe(&mut self, r: &TraceRecord) {
        CoverageBuilder::observe(self, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup(t: u64, dir: u64, name: &str, child: u64) -> TraceRecord {
        let mut r = TraceRecord::new(t, Op::Lookup, FileId(dir)).with_name(name);
        r.new_fh = Some(FileId(child));
        r
    }

    #[test]
    fn paths_reconstruct() {
        let mut h = Hierarchy::new();
        h.observe(&lookup(0, 1, "home7", 2));
        h.observe(&lookup(1, 2, "inbox.lock", 3));
        assert_eq!(h.path_of(FileId(3)), ".../home7/inbox.lock");
        assert_eq!(h.parent_of(FileId(3)).unwrap().0, FileId(2));
        assert_eq!(h.child_of(FileId(2), "inbox.lock"), Some(FileId(3)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn remove_unlinks() {
        let mut h = Hierarchy::new();
        h.observe(&lookup(0, 1, "f", 2));
        h.observe(&TraceRecord::new(1, Op::Remove, FileId(1)).with_name("f"));
        assert!(h.parent_of(FileId(2)).is_none());
        assert!(h.child_of(FileId(1), "f").is_none());
    }

    #[test]
    fn rename_relinks() {
        let mut h = Hierarchy::new();
        h.observe(&lookup(0, 1, "old", 2));
        let mut rn = TraceRecord::new(1, Op::Rename, FileId(1)).with_name("old");
        rn.name2 = Some("new".into());
        rn.fh2 = Some(FileId(9));
        h.observe(&lookup(0, 1, "dir9", 9));
        h.observe(&rn);
        assert_eq!(h.child_of(FileId(9), "new"), Some(FileId(2)));
        assert_eq!(h.parent_of(FileId(2)).unwrap().0, FileId(9));
    }

    #[test]
    fn relink_same_name_replaces_old_child() {
        let mut h = Hierarchy::new();
        h.observe(&lookup(0, 1, "f", 2));
        h.observe(&lookup(1, 1, "f", 3)); // recreated with a new identity
        assert_eq!(h.child_of(FileId(1), "f"), Some(FileId(3)));
        assert!(h.parent_of(FileId(2)).is_none());
    }

    #[test]
    fn unknown_path_is_bare() {
        let h = Hierarchy::new();
        assert_eq!(h.path_of(FileId(42)), ".../");
        assert!(h.is_empty());
    }

    #[test]
    fn coverage_climbs() {
        // Interleave lookups (which teach) with reads of the same files.
        let mut recs = Vec::new();
        for i in 0..50u64 {
            recs.push(lookup(i * 1000, 1, &format!("f{i}"), 100 + i));
        }
        for i in 0..50u64 {
            recs.push(TraceRecord::new(
                100_000 + i * 1000,
                Op::Read,
                FileId(100 + i),
            ));
        }
        let pts = coverage_over_time(recs.iter(), 50_000);
        // The late buckets (reads of known files) must have full coverage.
        assert!((pts.last().unwrap().known_fraction - 1.0).abs() < 1e-9);
        // The first bucket sees brand-new files.
        assert!(pts[0].known_fraction < 1.0);
    }
}
