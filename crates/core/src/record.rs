//! The version-independent trace record.
//!
//! The sniffer pairs each NFS call with its reply and flattens both into
//! one [`TraceRecord`] carrying everything the paper's analyses need:
//! timing, identities, the operation, byte ranges, and the attribute
//! snapshots (sizes) that replies piggyback. NFSv2 and NFSv3 procedures
//! are folded into one [`Op`] enumeration, as the paper's own analyses
//! treat the two protocol versions uniformly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A server-assigned file identity (derived from the file handle).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

/// Version-independent NFS operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Op {
    Null,
    Getattr,
    Setattr,
    Lookup,
    Access,
    Readlink,
    Read,
    Write,
    Create,
    Mkdir,
    Symlink,
    Mknod,
    Remove,
    Rmdir,
    Rename,
    Link,
    Readdir,
    Readdirplus,
    Fsstat,
    Fsinfo,
    Pathconf,
    Commit,
    /// NFSv2 STATFS (v3's FSSTAT analogue, kept distinct for op counts).
    Statfs,
}

impl Op {
    /// All operations, for table-driven tests and histograms.
    pub const ALL: [Op; 23] = [
        Op::Null,
        Op::Getattr,
        Op::Setattr,
        Op::Lookup,
        Op::Access,
        Op::Readlink,
        Op::Read,
        Op::Write,
        Op::Create,
        Op::Mkdir,
        Op::Symlink,
        Op::Mknod,
        Op::Remove,
        Op::Rmdir,
        Op::Rename,
        Op::Link,
        Op::Readdir,
        Op::Readdirplus,
        Op::Fsstat,
        Op::Fsinfo,
        Op::Pathconf,
        Op::Commit,
        Op::Statfs,
    ];

    /// Whether this op transfers data from the server (a read).
    pub fn is_read(self) -> bool {
        self == Op::Read
    }

    /// Whether this op transfers data to the server (a write).
    pub fn is_write(self) -> bool {
        self == Op::Write
    }

    /// The paper's data/metadata split: READ, WRITE, and COMMIT move
    /// data; everything else is metadata.
    pub fn is_data(self) -> bool {
        matches!(self, Op::Read | Op::Write | Op::Commit)
    }

    /// The attribute calls (`lookup`, `getattr`, `access`) that §6.1.1
    /// says dominate the EECS workload.
    pub fn is_attribute_call(self) -> bool {
        matches!(self, Op::Lookup | Op::Getattr | Op::Access)
    }

    /// Whether this op creates a directory entry.
    pub fn is_create_like(self) -> bool {
        matches!(
            self,
            Op::Create | Op::Mkdir | Op::Symlink | Op::Mknod | Op::Link
        )
    }

    /// Whether this op removes a directory entry.
    pub fn is_remove_like(self) -> bool {
        matches!(self, Op::Remove | Op::Rmdir)
    }

    /// Stable lower-case token used by the text trace format.
    pub fn token(self) -> &'static str {
        match self {
            Op::Null => "null",
            Op::Getattr => "getattr",
            Op::Setattr => "setattr",
            Op::Lookup => "lookup",
            Op::Access => "access",
            Op::Readlink => "readlink",
            Op::Read => "read",
            Op::Write => "write",
            Op::Create => "create",
            Op::Mkdir => "mkdir",
            Op::Symlink => "symlink",
            Op::Mknod => "mknod",
            Op::Remove => "remove",
            Op::Rmdir => "rmdir",
            Op::Rename => "rename",
            Op::Link => "link",
            Op::Readdir => "readdir",
            Op::Readdirplus => "readdirplus",
            Op::Fsstat => "fsstat",
            Op::Fsinfo => "fsinfo",
            Op::Pathconf => "pathconf",
            Op::Commit => "commit",
            Op::Statfs => "statfs",
        }
    }

    /// Parses a text-format token.
    pub fn from_token(s: &str) -> Option<Self> {
        Op::ALL.into_iter().find(|op| op.token() == s)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One paired NFS call/reply, flattened for analysis.
///
/// Optional fields are populated when the operation carries them: `name`
/// for directory ops, `offset`/`count` for data ops, sizes from reply
/// attributes, and so on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Capture time of the call, microseconds since the trace epoch.
    pub micros: u64,
    /// Capture time of the reply; 0 when the reply was lost.
    pub reply_micros: u64,
    /// Client identity (IPv4 as u32, possibly anonymized).
    pub client: u32,
    /// Server identity.
    pub server: u32,
    /// Caller UID from the AUTH_UNIX credential.
    pub uid: u32,
    /// Caller GID.
    pub gid: u32,
    /// RPC transaction id.
    pub xid: u32,
    /// NFS protocol version (2 or 3).
    pub vers: u8,
    /// The operation.
    pub op: Op,
    /// Primary file or directory identity.
    pub fh: FileId,
    /// Secondary identity (rename destination directory, link target dir).
    pub fh2: Option<FileId>,
    /// Name argument (lookup/create/remove/rename-from...).
    pub name: Option<String>,
    /// Second name argument (rename-to).
    pub name2: Option<String>,
    /// Byte offset for READ/WRITE/COMMIT.
    pub offset: u64,
    /// Requested byte count.
    pub count: u32,
    /// Byte count the reply reported transferred.
    pub ret_count: u32,
    /// Whether a READ reply reported end-of-file.
    pub eof: bool,
    /// NFS status from the reply (0 = OK); `u32::MAX` when no reply.
    pub status: u32,
    /// File size before the operation (from WCC pre-op attributes).
    pub pre_size: Option<u64>,
    /// File size after the operation (from post-op attributes).
    pub post_size: Option<u64>,
    /// Target size of a SETATTR truncate/extend.
    pub truncate_to: Option<u64>,
    /// Identity of an object created by this op (from the reply).
    pub new_fh: Option<FileId>,
    /// File type from reply attributes (1 = regular, 2 = directory, ...).
    pub ftype: Option<u8>,
}

impl TraceRecord {
    /// A minimal record for `op` on `fh` at `micros`; the builders below
    /// fill in the rest.
    pub fn new(micros: u64, op: Op, fh: FileId) -> Self {
        TraceRecord {
            micros,
            reply_micros: micros,
            client: 0,
            server: 0,
            uid: 0,
            gid: 0,
            xid: 0,
            vers: 3,
            op,
            fh,
            fh2: None,
            name: None,
            name2: None,
            offset: 0,
            count: 0,
            ret_count: 0,
            eof: false,
            status: 0,
            pre_size: None,
            post_size: None,
            truncate_to: None,
            new_fh: None,
            ftype: None,
        }
    }

    /// Builder: sets the byte range.
    pub fn with_range(mut self, offset: u64, count: u32) -> Self {
        self.offset = offset;
        self.count = count;
        self.ret_count = count;
        self
    }

    /// Builder: sets the name argument.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Builder: sets the client identity.
    pub fn with_client(mut self, client: u32) -> Self {
        self.client = client;
        self
    }

    /// Builder: sets the post-op file size.
    pub fn with_post_size(mut self, size: u64) -> Self {
        self.post_size = Some(size);
        self
    }

    /// Builder: marks the reply as reporting EOF.
    pub fn with_eof(mut self, eof: bool) -> Self {
        self.eof = eof;
        self
    }

    /// Whether the reply reported success.
    pub fn is_ok(&self) -> bool {
        self.status == 0
    }

    /// Whether the reply was never captured.
    pub fn reply_lost(&self) -> bool {
        self.status == u32::MAX
    }

    /// Bytes this record actually moved (0 for metadata ops).
    pub fn data_bytes(&self) -> u64 {
        if self.op.is_read() || self.op.is_write() {
            u64::from(self.ret_count)
        } else {
            0
        }
    }

    /// Server-to-call round trip in microseconds, when the reply exists.
    pub fn latency_micros(&self) -> Option<u64> {
        (!self.reply_lost() && self.reply_micros >= self.micros)
            .then(|| self.reply_micros - self.micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_token_roundtrip() {
        for op in Op::ALL {
            assert_eq!(Op::from_token(op.token()), Some(op));
        }
        assert_eq!(Op::from_token("bogus"), None);
    }

    #[test]
    fn data_metadata_split_matches_paper() {
        let data: Vec<Op> = Op::ALL.into_iter().filter(|o| o.is_data()).collect();
        assert_eq!(data, vec![Op::Read, Op::Write, Op::Commit]);
    }

    #[test]
    fn attribute_calls_match_paper() {
        let attrs: Vec<Op> = Op::ALL
            .into_iter()
            .filter(|o| o.is_attribute_call())
            .collect();
        assert_eq!(attrs, vec![Op::Getattr, Op::Lookup, Op::Access]);
    }

    #[test]
    fn builders_compose() {
        let r = TraceRecord::new(1_000, Op::Read, FileId(7))
            .with_range(8192, 8192)
            .with_client(42)
            .with_post_size(1 << 20)
            .with_eof(false);
        assert_eq!(r.offset, 8192);
        assert_eq!(r.ret_count, 8192);
        assert_eq!(r.client, 42);
        assert_eq!(r.post_size, Some(1 << 20));
        assert_eq!(r.data_bytes(), 8192);
        assert!(r.is_ok());
    }

    #[test]
    fn metadata_moves_no_data() {
        let r = TraceRecord::new(0, Op::Getattr, FileId(1)).with_range(0, 4096);
        assert_eq!(r.data_bytes(), 0);
    }

    #[test]
    fn latency_requires_reply() {
        let mut r = TraceRecord::new(100, Op::Read, FileId(1));
        r.reply_micros = 350;
        assert_eq!(r.latency_micros(), Some(250));
        r.status = u32::MAX;
        assert_eq!(r.latency_micros(), None);
    }

    #[test]
    fn create_and_remove_like_sets() {
        assert!(Op::Create.is_create_like());
        assert!(Op::Link.is_create_like());
        assert!(!Op::Write.is_create_like());
        assert!(Op::Remove.is_remove_like());
        assert!(Op::Rmdir.is_remove_like());
        assert!(!Op::Rename.is_remove_like());
    }
}
