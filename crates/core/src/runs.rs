//! Run detection and the entire/sequential/random taxonomy (§4.2,
//! Table 3, Figure 2).
//!
//! NFS has no open/close, so the paper defines a *run* as a maximal
//! series of accesses to one file split on two conditions: the previous
//! access touched end-of-file, or the previous access is stale (older
//! than 30 seconds). Runs are then categorized:
//!
//! - **sequential**: every access starts where the previous one ended,
//!   with offsets and counts rounded up to 8 KB blocks; in *processed*
//!   mode jumps of fewer than 10 blocks are forgiven;
//! - **entire**: sequential and covering the file from offset 0 to EOF;
//! - **random**: everything else;
//!
//! and by direction: read, write, or read-write.

use crate::record::FileId;
use crate::reorder::Access;

/// The paper's block size for rounding: 8 KB.
pub const BLOCK: u64 = 8192;

/// The staleness bound that splits runs: 30 seconds.
pub const RUN_SPLIT_MICROS: u64 = 30 * 1_000_000;

/// Small-jump tolerance in blocks for the processed taxonomy: "we
/// consider any jump of fewer than 10 blocks sequential".
pub const SMALL_JUMP_BLOCKS: u64 = 10;

/// Run direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunKind {
    /// Only reads.
    Read,
    /// Only writes.
    Write,
    /// Both.
    ReadWrite,
}

/// Run access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunPattern {
    /// Sequential and spanning the whole file.
    Entire,
    /// In-order but not spanning the whole file.
    Sequential,
    /// Out-of-order.
    Random,
}

/// A detected run with its classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// The file.
    pub file: FileId,
    /// Read/write/read-write.
    pub kind: RunKind,
    /// Entire/sequential/random.
    pub pattern: RunPattern,
    /// Number of accesses.
    pub accesses: usize,
    /// Total bytes accessed.
    pub bytes: u64,
    /// Largest file size observed during the run.
    pub file_size: u64,
    /// Time of the first access.
    pub start_micros: u64,
    /// Time of the last access.
    pub end_micros: u64,
    /// The accesses themselves (kept for the sequentiality metric).
    pub items: Vec<Access>,
}

/// Options controlling run splitting and categorization.
///
/// `Eq`/`Hash` so run tables can be cached keyed by their options (see
/// [`crate::index::TraceIndex`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunOptions {
    /// Split when the previous access is older than this.
    pub split_micros: u64,
    /// Forgive seeks shorter than this many blocks (0 = raw taxonomy).
    pub small_jump_blocks: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        // The paper's processed configuration.
        Self {
            split_micros: RUN_SPLIT_MICROS,
            small_jump_blocks: SMALL_JUMP_BLOCKS,
        }
    }
}

impl RunOptions {
    /// The raw configuration: no jump forgiveness.
    pub fn raw() -> Self {
        Self {
            small_jump_blocks: 0,
            ..Self::default()
        }
    }
}

/// Rounds an offset down to its block index.
pub fn block_of(offset: u64) -> u64 {
    offset / BLOCK
}

/// Rounds a byte range up to its end block (exclusive).
pub fn end_block(offset: u64, count: u32) -> u64 {
    (offset + u64::from(count)).div_ceil(BLOCK)
}

/// Splits one file's (reorder-sorted) accesses into runs (§4.2 rules).
pub fn split_runs(file: FileId, accesses: &[Access], opts: RunOptions) -> Vec<Run> {
    let mut runs = Vec::new();
    let mut current: Vec<Access> = Vec::new();
    for &a in accesses {
        if let Some(last) = current.last() {
            let last_hit_eof = access_hits_eof(last);
            let stale = a.micros.saturating_sub(last.micros) > opts.split_micros;
            if last_hit_eof || stale {
                runs.push(finish_run(file, std::mem::take(&mut current), opts));
            }
        }
        current.push(a);
    }
    if !current.is_empty() {
        runs.push(finish_run(file, current, opts));
    }
    runs
}

/// Whether an access reached the file's end (triggers a run split).
fn access_hits_eof(a: &Access) -> bool {
    a.eof || (a.file_size > 0 && a.offset + u64::from(a.count) >= a.file_size)
}

fn finish_run(file: FileId, items: Vec<Access>, opts: RunOptions) -> Run {
    let kind = run_kind(&items);
    let pattern = categorize(&items, opts);
    let bytes: u64 = items.iter().map(|a| u64::from(a.count)).sum();
    let file_size = items.iter().map(|a| a.file_size).max().unwrap_or(0);
    let start_micros = items.first().map(|a| a.micros).unwrap_or(0);
    let end_micros = items.last().map(|a| a.micros).unwrap_or(0);
    Run {
        file,
        kind,
        pattern,
        accesses: items.len(),
        bytes,
        file_size,
        start_micros,
        end_micros,
        items,
    }
}

fn run_kind(items: &[Access]) -> RunKind {
    let writes = items.iter().filter(|a| a.is_write).count();
    if writes == 0 {
        RunKind::Read
    } else if writes == items.len() {
        RunKind::Write
    } else {
        RunKind::ReadWrite
    }
}

/// Categorizes a run. Singleton runs are entire if they cover the whole
/// file, else sequential (per the Table 3 caption).
fn categorize(items: &[Access], opts: RunOptions) -> RunPattern {
    let covers_whole_file = run_covers_file(items);
    if items.len() == 1 {
        return if covers_whole_file {
            RunPattern::Entire
        } else {
            RunPattern::Sequential
        };
    }
    let mut sequential = true;
    let mut prev_end = end_block(items[0].offset, items[0].count);
    for a in &items[1..] {
        let start = block_of(a.offset);
        // Exactly consecutive after block rounding, or within the
        // small-jump tolerance (forward or backward).
        let jump = start.abs_diff(prev_end);
        if start != prev_end && jump >= opts.small_jump_blocks {
            sequential = false;
            break;
        }
        prev_end = end_block(a.offset, a.count);
    }
    if !sequential {
        RunPattern::Random
    } else if covers_whole_file && items[0].offset == 0 {
        RunPattern::Entire
    } else {
        RunPattern::Sequential
    }
}

/// Whether a run's accesses span offset 0 through end-of-file.
fn run_covers_file(items: &[Access]) -> bool {
    let starts_at_zero = items.iter().map(|a| a.offset).min() == Some(0);
    let hits_eof = items.iter().any(access_hits_eof);
    starts_at_zero && hits_eof
}

/// Splits and categorizes runs for every file in a trace.
pub fn runs_for_trace(per_file: &crate::index::AccessMap, opts: RunOptions) -> Vec<Run> {
    let mut out = Vec::new();
    // Deterministic iteration order for reproducible statistics.
    let mut files: Vec<_> = per_file.keys().copied().collect();
    files.sort_unstable();
    for f in files {
        out.extend(split_runs(f, &per_file[&f], opts));
    }
    out
}

/// The Table 3 percentages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PatternTable {
    /// Percent of runs that are read runs.
    pub reads_pct: f64,
    /// Within read runs: percent entire / sequential / random.
    pub read_entire_pct: f64,
    /// See `read_entire_pct`.
    pub read_sequential_pct: f64,
    /// See `read_entire_pct`.
    pub read_random_pct: f64,
    /// Percent of runs that are write runs.
    pub writes_pct: f64,
    /// Within write runs.
    pub write_entire_pct: f64,
    /// Within write runs.
    pub write_sequential_pct: f64,
    /// Within write runs.
    pub write_random_pct: f64,
    /// Percent of runs that are read-write runs.
    pub rw_pct: f64,
    /// Within read-write runs.
    pub rw_entire_pct: f64,
    /// Within read-write runs.
    pub rw_sequential_pct: f64,
    /// Within read-write runs.
    pub rw_random_pct: f64,
}

impl PatternTable {
    /// Builds the table from categorized runs.
    pub fn from_runs(runs: &[Run]) -> Self {
        let total = runs.len() as f64;
        if total == 0.0 {
            return Self::default();
        }
        let pct = |n: usize, d: usize| {
            if d == 0 {
                0.0
            } else {
                100.0 * n as f64 / d as f64
            }
        };
        let count = |k: RunKind, p: Option<RunPattern>| {
            runs.iter()
                .filter(|r| r.kind == k && p.is_none_or(|p| r.pattern == p))
                .count()
        };
        let (r, w, rw) = (
            count(RunKind::Read, None),
            count(RunKind::Write, None),
            count(RunKind::ReadWrite, None),
        );
        PatternTable {
            reads_pct: pct(r, runs.len()),
            read_entire_pct: pct(count(RunKind::Read, Some(RunPattern::Entire)), r),
            read_sequential_pct: pct(count(RunKind::Read, Some(RunPattern::Sequential)), r),
            read_random_pct: pct(count(RunKind::Read, Some(RunPattern::Random)), r),
            writes_pct: pct(w, runs.len()),
            write_entire_pct: pct(count(RunKind::Write, Some(RunPattern::Entire)), w),
            write_sequential_pct: pct(count(RunKind::Write, Some(RunPattern::Sequential)), w),
            write_random_pct: pct(count(RunKind::Write, Some(RunPattern::Random)), w),
            rw_pct: pct(rw, runs.len()),
            rw_entire_pct: pct(count(RunKind::ReadWrite, Some(RunPattern::Entire)), rw),
            rw_sequential_pct: pct(count(RunKind::ReadWrite, Some(RunPattern::Sequential)), rw),
            rw_random_pct: pct(count(RunKind::ReadWrite, Some(RunPattern::Random)), rw),
        }
    }
}

/// Figure 2: bytes accessed, bucketed by file size, per pattern.
///
/// Buckets are powers of two of file size; each run's bytes land in the
/// bucket of the file's size at access time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SizeProfile {
    /// (file-size bucket upper bound, bytes) per pattern, ascending.
    pub total: Vec<(u64, u64)>,
    /// Entire-run bytes per bucket.
    pub entire: Vec<(u64, u64)>,
    /// Sequential-run bytes per bucket.
    pub sequential: Vec<(u64, u64)>,
    /// Random-run bytes per bucket.
    pub random: Vec<(u64, u64)>,
}

impl SizeProfile {
    /// Builds the profile from runs using power-of-two buckets from 1 KB
    /// to 1 GB.
    pub fn from_runs(runs: &[Run]) -> Self {
        let buckets: Vec<u64> = (10..=30).map(|p| 1u64 << p).collect();
        let mut total = vec![0u64; buckets.len()];
        let mut entire = vec![0u64; buckets.len()];
        let mut sequential = vec![0u64; buckets.len()];
        let mut random = vec![0u64; buckets.len()];
        for r in runs {
            let size = r.file_size.max(r.bytes).max(1);
            let idx = buckets
                .iter()
                .position(|&b| size <= b)
                .unwrap_or(buckets.len() - 1);
            total[idx] += r.bytes;
            match r.pattern {
                RunPattern::Entire => entire[idx] += r.bytes,
                RunPattern::Sequential => sequential[idx] += r.bytes,
                RunPattern::Random => random[idx] += r.bytes,
            }
        }
        let zip = |v: Vec<u64>| buckets.iter().copied().zip(v).collect::<Vec<_>>();
        SizeProfile {
            total: zip(total),
            entire: zip(entire),
            sequential: zip(sequential),
            random: zip(random),
        }
    }

    /// Cumulative percent-of-total-bytes curve for one series.
    pub fn cumulative_pct(series: &[(u64, u64)], grand_total: u64) -> Vec<(u64, f64)> {
        let mut acc = 0u64;
        series
            .iter()
            .map(|&(b, v)| {
                acc += v;
                let pct = if grand_total == 0 {
                    0.0
                } else {
                    100.0 * acc as f64 / grand_total as f64
                };
                (b, pct)
            })
            .collect()
    }

    /// Total bytes across all buckets.
    pub fn grand_total(&self) -> u64 {
        self.total.iter().map(|&(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(micros: u64, offset: u64, count: u32) -> Access {
        Access {
            micros,
            offset,
            count,
            is_write: false,
            eof: false,
            file_size: 10 * BLOCK,
        }
    }

    fn waccess(micros: u64, offset: u64, count: u32) -> Access {
        Access {
            is_write: true,
            ..acc(micros, offset, count)
        }
    }

    #[test]
    fn sequential_run_detected() {
        let items: Vec<Access> = (0..5)
            .map(|i| acc(i * 1000, i * BLOCK, BLOCK as u32))
            .collect();
        let runs = split_runs(FileId(1), &items, RunOptions::default());
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].pattern, RunPattern::Sequential);
        assert_eq!(runs[0].kind, RunKind::Read);
        assert_eq!(runs[0].bytes, 5 * BLOCK);
    }

    #[test]
    fn entire_run_detected() {
        let mut items: Vec<Access> = (0..10)
            .map(|i| acc(i * 1000, i * BLOCK, BLOCK as u32))
            .collect();
        items[9].eof = true;
        let runs = split_runs(FileId(1), &items, RunOptions::default());
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].pattern, RunPattern::Entire);
    }

    #[test]
    fn random_run_detected_raw() {
        let items = vec![
            acc(0, 0, BLOCK as u32),
            acc(1000, 5 * BLOCK, BLOCK as u32),
            acc(2000, 2 * BLOCK, BLOCK as u32),
        ];
        let runs = split_runs(FileId(1), &items, RunOptions::raw());
        assert_eq!(runs[0].pattern, RunPattern::Random);
    }

    #[test]
    fn small_jump_forgiven_in_processed_mode() {
        // Jump of 4 blocks: random in raw mode, sequential in processed.
        let items = vec![acc(0, 0, BLOCK as u32), acc(1000, 5 * BLOCK, BLOCK as u32)];
        let raw = split_runs(FileId(1), &items, RunOptions::raw());
        assert_eq!(raw[0].pattern, RunPattern::Random);
        let proc = split_runs(FileId(1), &items, RunOptions::default());
        assert_eq!(proc[0].pattern, RunPattern::Sequential);
    }

    #[test]
    fn large_jump_random_even_processed() {
        let items = vec![acc(0, 0, BLOCK as u32), acc(1000, 50 * BLOCK, BLOCK as u32)];
        let runs = split_runs(FileId(1), &items, RunOptions::default());
        assert_eq!(runs[0].pattern, RunPattern::Random);
    }

    #[test]
    fn eof_splits_runs() {
        let mut first = acc(0, 9 * BLOCK, BLOCK as u32);
        first.eof = true;
        let items = vec![first, acc(1000, 0, BLOCK as u32)];
        let runs = split_runs(FileId(1), &items, RunOptions::default());
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn staleness_splits_runs() {
        let items = vec![
            acc(0, 0, BLOCK as u32),
            acc(31_000_000, BLOCK, BLOCK as u32),
        ];
        let runs = split_runs(FileId(1), &items, RunOptions::default());
        assert_eq!(runs.len(), 2);
        // Within the bound: one run.
        let items = vec![
            acc(0, 0, BLOCK as u32),
            acc(29_000_000, BLOCK, BLOCK as u32),
        ];
        let runs = split_runs(FileId(1), &items, RunOptions::default());
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn singleton_entire_vs_sequential() {
        // Covers the whole 1-block file: entire.
        let mut a = acc(0, 0, BLOCK as u32);
        a.file_size = BLOCK;
        let runs = split_runs(FileId(1), &[a], RunOptions::default());
        assert_eq!(runs[0].pattern, RunPattern::Entire);
        // Middle of a big file: sequential.
        let b = acc(0, 4 * BLOCK, BLOCK as u32);
        let runs = split_runs(FileId(1), &[b], RunOptions::default());
        assert_eq!(runs[0].pattern, RunPattern::Sequential);
    }

    #[test]
    fn kinds_classified() {
        let items = vec![acc(0, 0, 1), waccess(1, BLOCK, 1)];
        let runs = split_runs(FileId(1), &items, RunOptions::default());
        assert_eq!(runs[0].kind, RunKind::ReadWrite);
        let items = vec![waccess(0, 0, 1), waccess(1, BLOCK, 1)];
        let runs = split_runs(FileId(1), &items, RunOptions::default());
        assert_eq!(runs[0].kind, RunKind::Write);
    }

    #[test]
    fn unaligned_counts_rounded_to_blocks() {
        // 0k(8k), 8k(7k), 16k(8k): the 1k hole is absorbed by rounding
        // (the paper's example).
        let items = vec![
            acc(0, 0, 8192),
            acc(1000, 8192, 7168),
            acc(2000, 16384, 8192),
        ];
        let runs = split_runs(FileId(1), &items, RunOptions::raw());
        assert_eq!(runs[0].pattern, RunPattern::Sequential);
    }

    #[test]
    fn pattern_table_percentages_sum() {
        let mut runs = Vec::new();
        for i in 0..10u64 {
            let items: Vec<Access> = (0..3)
                .map(|j| acc(i * 100 + j, j * BLOCK, BLOCK as u32))
                .collect();
            runs.extend(split_runs(FileId(i), &items, RunOptions::default()));
        }
        let t = PatternTable::from_runs(&runs);
        assert!((t.reads_pct + t.writes_pct + t.rw_pct - 100.0).abs() < 1e-9);
        assert!(
            (t.read_entire_pct + t.read_sequential_pct + t.read_random_pct - 100.0).abs() < 1e-9
        );
    }

    #[test]
    fn size_profile_buckets_by_file_size() {
        let mut a = acc(0, 0, BLOCK as u32);
        a.file_size = 2 * 1024 * 1024; // 2 MB file
        let runs = split_runs(FileId(1), &[a], RunOptions::default());
        let prof = SizeProfile::from_runs(&runs);
        let total_bytes = prof.grand_total();
        assert_eq!(total_bytes, BLOCK);
        // The bytes must land in the 2 MB bucket.
        let bucket = prof
            .total
            .iter()
            .find(|&&(b, v)| v > 0 && b >= 2 * 1024 * 1024)
            .unwrap();
        assert_eq!(bucket.0, 2 * 1024 * 1024);
        let cum = SizeProfile::cumulative_pct(&prof.total, total_bytes);
        assert!((cum.last().unwrap().1 - 100.0).abs() < 1e-9);
    }
}
