//! Trace record model and the FAST 2003 analysis suite.
//!
//! This crate is the paper's analytical contribution, reimplemented as a
//! library. It consumes streams of [`TraceRecord`]s — version-independent
//! NFS call/reply pairs, as produced by `nfstrace-sniffer` or directly by
//! `nfstrace-workload` — and computes every analysis in the paper:
//!
//! - [`summary`]: daily activity totals (Table 2) and the data/metadata
//!   and read/write characterizations (Table 1).
//! - [`reorder`]: the reorder-window partial sort that undoes nfsiod
//!   call reordering, and the swapped-access measurement (Figure 1).
//! - [`runs`]: run splitting and the entire/sequential/random taxonomy
//!   (Table 3), plus the file-size access profile (Figure 2).
//! - [`seqmetric`]: the sequentiality metric with k-consecutive block
//!   tolerance (Figure 5).
//! - [`lifetime`]: create-based block lifetime analysis (Table 4,
//!   Figure 3).
//! - [`hourly`]: time-of-day variance and peak-hour statistics
//!   (Figure 4, Table 5).
//! - [`names`]: filename → attribute prediction (§6.3).
//! - [`hierarchy`]: on-the-fly reconstruction of the active directory
//!   tree from lookup traffic (§4.1.1).
//! - [`historical`]: the comparison numbers the paper quotes from the
//!   Sprite, BSD, INS/RES, and NT studies.
//! - [`text`]: the anonymizable on-disk trace format.
//! - [`time`]: simulation-time helpers (the trace epoch is a Sunday
//!   midnight, matching the paper's 10/21/2001 week).
//!
//! # The one-pass pipeline
//!
//! All of the above are *views over the same per-file, reorder-corrected
//! access streams*. [`index::TraceIndex`] is the shared substrate: built
//! in a single pass over a trace, it holds the summary counters, hourly
//! buckets, and per-file access lists, and caches every derived product
//! (sorted access maps per reorder window, run tables per
//! [`runs::RunOptions`], lifetime reports per
//! [`lifetime::LifetimeConfig`]) so a full reproduction suite buckets
//! and sorts the trace exactly once per (trace, window). Analyses that
//! fan out over independent work — the Figure 1 window sweep, sharded
//! workload generation — use the deterministic [`parallel`] helpers;
//! the worker count comes from the `NFSTRACE_THREADS` environment
//! variable (default: available parallelism) and never changes results.
//!
//! # Out-of-core analysis
//!
//! The construction pass is *mergeable*: [`index::PartialIndex`]
//! accumulates one chunk of a trace, and partials merged in chunk order
//! rebuild the whole index bit-identically. Analyses consume the
//! [`index::TraceView`] trait rather than `TraceIndex` directly, so the
//! `nfstrace_store` crate's chunked on-disk store can serve the same
//! tables and figures while only ever decoding one chunk of records at
//! a time; generators stream records into any [`sink::RecordSink`]
//! (a `Vec`, a store writer, a partial index) without materializing
//! the merged trace.

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod hierarchy;
pub mod historical;
pub mod hourly;
pub mod index;
pub mod lifetime;
pub mod names;
pub mod parallel;
pub mod record;
pub mod reorder;
pub mod runs;
pub mod seqmetric;
pub mod sink;
pub mod summary;
pub mod text;
pub mod time;

pub use index::{PartialIndex, RecordStream, TraceIndex, TraceView};
pub use record::{FileId, Op, TraceRecord};
pub use sink::RecordSink;
pub use summary::SummaryStats;
