//! Filename → attribute prediction (§6.3).
//!
//! "On CAMPUS we can predict the size, lifespan, and access patterns of
//! most files extremely well simply by examining the last component of
//! the pathname." Nearly every CAMPUS file is a lock file, a dot file, a
//! mail-composer temporary, or a mailbox; EECS adds window-manager
//! Applet files, browser cache files, and build artifacts. This module
//! classifies names into those categories, states each category's
//! predicted profile, and evaluates the predictions against observed
//! per-file statistics.

use crate::record::{FileId, Op, TraceRecord};
use std::collections::HashMap;

/// Categories of files recognizable from the last pathname component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileCategory {
    /// Zero-length mailbox lock files (`*.lock`, `lock.*`).
    Lock,
    /// Configuration dot files (`.pinerc`, `.cshrc`, ...).
    Dot,
    /// Mail-composer temporaries (`snd.*`, `pico.*`).
    MailTmp,
    /// User inboxes and mail folders (`inbox`, `mbox`, `received`, ...).
    Mailbox,
    /// Window-manager scratch files (`Applet_*_Extern`).
    Applet,
    /// Web browser cache files (`cache########`).
    BrowserCache,
    /// Source code (`*.c`, `*.h`, `*.java`, ...).
    Source,
    /// Build artifacts (`*.o`, `*.so`, `*.a`).
    Object,
    /// Log and index files (`*.log`, `*.idx`).
    Log,
    /// Editor temporaries (`#name#`, `name~`).
    EditorTmp,
    /// RCS/CVS version files (`*,v`).
    Rcs,
    /// Everything else.
    Other,
}

impl FileCategory {
    /// All categories, for iteration.
    pub const ALL: [FileCategory; 12] = [
        FileCategory::Lock,
        FileCategory::Dot,
        FileCategory::MailTmp,
        FileCategory::Mailbox,
        FileCategory::Applet,
        FileCategory::BrowserCache,
        FileCategory::Source,
        FileCategory::Object,
        FileCategory::Log,
        FileCategory::EditorTmp,
        FileCategory::Rcs,
        FileCategory::Other,
    ];

    /// A short label for report output.
    pub fn label(self) -> &'static str {
        match self {
            FileCategory::Lock => "lock",
            FileCategory::Dot => "dot",
            FileCategory::MailTmp => "mail-tmp",
            FileCategory::Mailbox => "mailbox",
            FileCategory::Applet => "applet",
            FileCategory::BrowserCache => "browser-cache",
            FileCategory::Source => "source",
            FileCategory::Object => "object",
            FileCategory::Log => "log",
            FileCategory::EditorTmp => "editor-tmp",
            FileCategory::Rcs => "rcs",
            FileCategory::Other => "other",
        }
    }
}

/// Classifies the last component of a pathname.
///
/// # Examples
///
/// ```
/// use nfstrace_core::names::{classify, FileCategory};
///
/// assert_eq!(classify("inbox.lock"), FileCategory::Lock);
/// assert_eq!(classify(".pinerc"), FileCategory::Dot);
/// assert_eq!(classify("snd.1234"), FileCategory::MailTmp);
/// assert_eq!(classify("inbox"), FileCategory::Mailbox);
/// assert_eq!(classify("Applet_12_Extern"), FileCategory::Applet);
/// ```
pub fn classify(name: &str) -> FileCategory {
    // Order matters: locks beat dots so ".inbox.lock" is a lock.
    if name.ends_with(".lock") || name.starts_with("lock.") || name == "lock" {
        return FileCategory::Lock;
    }
    if name.starts_with("snd.") || name.starts_with("pico.") {
        return FileCategory::MailTmp;
    }
    if name.starts_with('.') {
        return FileCategory::Dot;
    }
    if name == "inbox"
        || name == "mbox"
        || name == "received"
        || name.starts_with("mbox.")
        || name == "sent-mail"
        || name == "saved-messages"
    {
        return FileCategory::Mailbox;
    }
    if name.starts_with("Applet_") && name.ends_with("_Extern") {
        return FileCategory::Applet;
    }
    if name.starts_with("cache") && name.len() > 5 && name[5..].bytes().all(|b| b.is_ascii_digit())
    {
        return FileCategory::BrowserCache;
    }
    if name.ends_with(",v") {
        return FileCategory::Rcs;
    }
    if (name.starts_with('#') && name.ends_with('#') && name.len() > 1) || name.ends_with('~') {
        return FileCategory::EditorTmp;
    }
    if name.ends_with(".log") || name.ends_with(".idx") {
        return FileCategory::Log;
    }
    if [".c", ".h", ".cc", ".cpp", ".java", ".rs", ".py", ".tex"]
        .iter()
        .any(|s| name.ends_with(s))
    {
        return FileCategory::Source;
    }
    if [".o", ".so", ".a"].iter().any(|s| name.ends_with(s)) {
        return FileCategory::Object;
    }
    FileCategory::Other
}

/// The attribute profile a category predicts at file-creation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedProfile {
    /// Predicted maximum size in bytes (`u64::MAX` = unbounded).
    pub max_size: u64,
    /// Predicted maximum lifetime in microseconds (`u64::MAX` = long).
    pub max_lifetime: u64,
    /// Whether deletion is expected at all.
    pub expect_deleted: bool,
}

/// The §6.3 predictions, parameterized from the paper's numbers: locks
/// are zero-length and live under 0.4 s; composer temps are under 40 KB
/// and minutes-lived; dot files fit in a few blocks and persist;
/// mailboxes are large and never deleted.
pub fn predicted_profile(cat: FileCategory) -> PredictedProfile {
    use crate::time::{HOUR, MINUTE, SECOND};
    match cat {
        FileCategory::Lock => PredictedProfile {
            max_size: 0,
            max_lifetime: 2 * SECOND,
            expect_deleted: true,
        },
        FileCategory::MailTmp => PredictedProfile {
            max_size: 40 * 1024,
            max_lifetime: 30 * MINUTE,
            expect_deleted: true,
        },
        FileCategory::Dot => PredictedProfile {
            max_size: 32 * 1024,
            max_lifetime: u64::MAX,
            expect_deleted: false,
        },
        FileCategory::Mailbox => PredictedProfile {
            max_size: u64::MAX,
            max_lifetime: u64::MAX,
            expect_deleted: false,
        },
        FileCategory::Applet | FileCategory::EditorTmp => PredictedProfile {
            max_size: 64 * 1024,
            max_lifetime: 12 * HOUR,
            expect_deleted: true,
        },
        FileCategory::BrowserCache => PredictedProfile {
            max_size: 1024 * 1024,
            max_lifetime: u64::MAX,
            expect_deleted: true,
        },
        FileCategory::Object => PredictedProfile {
            max_size: 4 * 1024 * 1024,
            max_lifetime: 12 * HOUR,
            expect_deleted: true,
        },
        FileCategory::Source | FileCategory::Log | FileCategory::Rcs | FileCategory::Other => {
            PredictedProfile {
                max_size: u64::MAX,
                max_lifetime: u64::MAX,
                expect_deleted: false,
            }
        }
    }
}

/// Observed lifecycle of one named file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileObservation {
    /// Creation time, if the create was traced.
    pub created: Option<u64>,
    /// Deletion time, if traced.
    pub deleted: Option<u64>,
    /// Largest size observed.
    pub max_size: u64,
    /// Total read + written bytes.
    pub bytes_moved: u64,
}

impl FileObservation {
    /// Observed lifetime, when both endpoints were traced.
    pub fn lifetime(&self) -> Option<u64> {
        match (self.created, self.deleted) {
            (Some(c), Some(d)) if d >= c => Some(d - c),
            _ => None,
        }
    }
}

/// Per-category accuracy of the name-based predictions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CategoryStats {
    /// Files observed (created during the trace).
    pub files: u64,
    /// Files both created and deleted during the trace.
    pub created_and_deleted: u64,
    /// Of those, how many had zero observed size.
    pub zero_length: u64,
    /// Files whose observed max size was within the predicted bound.
    pub size_within_prediction: u64,
    /// Files (with measurable lifetime) within the predicted lifetime.
    pub lifetime_within_prediction: u64,
    /// Files with measurable lifetime.
    pub lifetime_measured: u64,
    /// Sorted observed lifetimes in microseconds.
    pub lifetimes: Vec<u64>,
}

impl CategoryStats {
    /// Fraction of size predictions that held.
    pub fn size_accuracy(&self) -> f64 {
        frac(self.size_within_prediction, self.files)
    }

    /// Fraction of lifetime predictions that held.
    pub fn lifetime_accuracy(&self) -> f64 {
        frac(self.lifetime_within_prediction, self.lifetime_measured)
    }

    /// The p-th percentile lifetime (0-100), if measured.
    pub fn lifetime_percentile(&self, p: f64) -> Option<u64> {
        if self.lifetimes.is_empty() {
            return None;
        }
        let idx = ((p / 100.0) * (self.lifetimes.len() - 1) as f64).round() as usize;
        Some(self.lifetimes[idx.min(self.lifetimes.len() - 1)])
    }
}

fn frac(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// The full §6.3 evaluation over a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NamePredictionReport {
    /// Per-category statistics.
    pub by_category: HashMap<FileCategory, CategoryStats>,
    /// Total files created during the trace.
    pub total_created: u64,
    /// Total files created and deleted during the trace.
    pub total_created_and_deleted: u64,
    /// Renames observed (the paper: "file renames are rare").
    pub renames: u64,
}

impl NamePredictionReport {
    /// Evaluates name-based prediction over time-ordered records.
    pub fn from_records<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        let mut b = NamePredictionBuilder::default();
        for r in records {
            b.observe(r);
        }
        b.finish()
    }

    /// Fraction of created-and-deleted files that are locks (the paper:
    /// 96% on CAMPUS, 8% on EECS).
    pub fn lock_fraction_of_churn(&self) -> f64 {
        let locks = self
            .by_category
            .get(&FileCategory::Lock)
            .map_or(0, |s| s.created_and_deleted);
        frac(locks, self.total_created_and_deleted)
    }
}

/// Record-at-a-time accumulator behind
/// [`NamePredictionReport::from_records`], usable by streaming consumers
/// (the out-of-core store index) that cannot hold the trace in memory.
#[derive(Debug, Default)]
pub struct NamePredictionBuilder {
    /// Per-file observations keyed by identity, with the name captured
    /// at create time.
    obs: HashMap<FileId, (String, FileObservation)>,
    names: HashMap<(FileId, String), FileId>,
    report: NamePredictionReport,
}

impl NamePredictionBuilder {
    /// Folds one record in. Records must arrive in time order.
    pub fn observe(&mut self, r: &TraceRecord) {
        let (obs, names, report) = (&mut self.obs, &mut self.names, &mut self.report);
        match r.op {
            Op::Create | Op::Mkdir | Op::Symlink | Op::Mknod => {
                if let (Some(name), Some(child)) = (&r.name, r.new_fh) {
                    names.insert((r.fh, name.clone()), child);
                    if r.op == Op::Create {
                        report.total_created += 1;
                        obs.entry(child).or_insert_with(|| {
                            (
                                name.clone(),
                                FileObservation {
                                    created: Some(r.micros),
                                    ..FileObservation::default()
                                },
                            )
                        });
                    }
                }
            }
            Op::Lookup => {
                if let (Some(name), Some(child)) = (&r.name, r.new_fh) {
                    names.insert((r.fh, name.clone()), child);
                }
            }
            Op::Remove => {
                if let Some(name) = &r.name {
                    if let Some(child) = names.remove(&(r.fh, name.clone())) {
                        if let Some((_, o)) = obs.get_mut(&child) {
                            o.deleted = Some(r.micros);
                        }
                    }
                }
            }
            Op::Rename => {
                report.renames += 1;
                if let (Some(from), Some(to)) = (&r.name, &r.name2) {
                    if let Some(child) = names.remove(&(r.fh, from.clone())) {
                        names.insert((r.fh2.unwrap_or(r.fh), to.clone()), child);
                    }
                }
            }
            Op::Write | Op::Read => {
                if let Some((_, o)) = obs.get_mut(&r.fh) {
                    o.bytes_moved += u64::from(r.ret_count);
                    let end = r.offset + u64::from(r.ret_count);
                    o.max_size = o.max_size.max(end).max(r.post_size.unwrap_or(0));
                }
            }
            Op::Setattr => {
                if let (Some(sz), Some((_, o))) = (r.truncate_to, obs.get_mut(&r.fh)) {
                    o.max_size = o.max_size.max(sz);
                }
            }
            _ => {}
        }
    }

    /// Folds the per-file observations into category statistics and
    /// returns the report. The fold is order-independent (counters are
    /// sums, lifetime lists are sorted), so the result does not depend
    /// on map iteration order.
    pub fn finish(self) -> NamePredictionReport {
        let mut report = self.report;
        for (_, (name, o)) in self.obs {
            let cat = classify(&name);
            let profile = predicted_profile(cat);
            let stats = report.by_category.entry(cat).or_default();
            stats.files += 1;
            if profile.max_size == u64::MAX || o.max_size <= profile.max_size {
                stats.size_within_prediction += 1;
            }
            if o.deleted.is_some() {
                stats.created_and_deleted += 1;
                report.total_created_and_deleted += 1;
                if o.max_size == 0 {
                    stats.zero_length += 1;
                }
            }
            if let Some(l) = o.lifetime() {
                stats.lifetime_measured += 1;
                stats.lifetimes.push(l);
                if profile.max_lifetime == u64::MAX || l <= profile.max_lifetime {
                    stats.lifetime_within_prediction += 1;
                }
            }
        }
        for stats in report.by_category.values_mut() {
            stats.lifetimes.sort_unstable();
        }
        report
    }
}

/// Name prediction can ride a fused replay pass alongside the other
/// analyzers (see [`crate::index::RecordObserver`]).
impl crate::index::RecordObserver for NamePredictionBuilder {
    fn observe(&mut self, r: &TraceRecord) {
        NamePredictionBuilder::observe(self, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SECOND;

    #[test]
    fn classify_paper_examples() {
        assert_eq!(classify("inbox.lock"), FileCategory::Lock);
        assert_eq!(classify("lock.1234"), FileCategory::Lock);
        assert_eq!(classify(".pinerc"), FileCategory::Dot);
        assert_eq!(classify(".cshrc"), FileCategory::Dot);
        assert_eq!(classify(".inbox.lock"), FileCategory::Lock);
        assert_eq!(classify("snd.4821"), FileCategory::MailTmp);
        assert_eq!(classify("pico.9932"), FileCategory::MailTmp);
        assert_eq!(classify("inbox"), FileCategory::Mailbox);
        assert_eq!(classify("mbox"), FileCategory::Mailbox);
        assert_eq!(classify("sent-mail"), FileCategory::Mailbox);
        assert_eq!(classify("Applet_3_Extern"), FileCategory::Applet);
        assert_eq!(classify("cache00412"), FileCategory::BrowserCache);
        assert_eq!(classify("main.c"), FileCategory::Source);
        assert_eq!(classify("main.o"), FileCategory::Object);
        assert_eq!(classify("server.log"), FileCategory::Log);
        assert_eq!(classify("#draft#"), FileCategory::EditorTmp);
        assert_eq!(classify("notes.txt~"), FileCategory::EditorTmp);
        assert_eq!(classify("main.c,v"), FileCategory::Rcs);
        assert_eq!(classify("thesis.pdf"), FileCategory::Other);
        assert_eq!(classify("cachedir"), FileCategory::Other);
    }

    fn create(t: u64, name: &str, child: u64) -> TraceRecord {
        let mut r = TraceRecord::new(t, Op::Create, FileId(1)).with_name(name);
        r.new_fh = Some(FileId(child));
        r
    }

    fn remove(t: u64, name: &str) -> TraceRecord {
        TraceRecord::new(t, Op::Remove, FileId(1)).with_name(name)
    }

    fn write(t: u64, fh: u64, count: u32) -> TraceRecord {
        TraceRecord::new(t, Op::Write, FileId(fh)).with_range(0, count)
    }

    #[test]
    fn lock_lifecycle_is_predicted() {
        let recs = [
            create(0, "inbox.lock", 10),
            remove(SECOND / 4, "inbox.lock"),
        ];
        let rep = NamePredictionReport::from_records(recs.iter());
        let lock = &rep.by_category[&FileCategory::Lock];
        assert_eq!(lock.files, 1);
        assert_eq!(lock.created_and_deleted, 1);
        assert_eq!(lock.zero_length, 1);
        assert_eq!(lock.lifetime_within_prediction, 1);
        assert!((rep.lock_fraction_of_churn() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_mail_tmp_fails_size_prediction() {
        let recs = [
            create(0, "snd.1", 10),
            write(1, 10, 100 * 1024), // 100 KB: beyond the 40 KB bound
            remove(2 * SECOND, "snd.1"),
        ];
        let rep = NamePredictionReport::from_records(recs.iter());
        let tmp = &rep.by_category[&FileCategory::MailTmp];
        assert_eq!(tmp.files, 1);
        assert_eq!(tmp.size_within_prediction, 0);
        assert_eq!(tmp.lifetime_within_prediction, 1);
    }

    #[test]
    fn renames_counted_and_tracked() {
        let mut rn = TraceRecord::new(5, Op::Rename, FileId(1)).with_name("a.lock");
        rn.name2 = Some("b.lock".into());
        let recs = [create(0, "a.lock", 10), rn, remove(10, "b.lock")];
        let rep = NamePredictionReport::from_records(recs.iter());
        assert_eq!(rep.renames, 1);
        // The delete still reaches the file through the rename.
        assert_eq!(rep.by_category[&FileCategory::Lock].created_and_deleted, 1);
    }

    #[test]
    fn lifetime_percentiles() {
        let mut recs = Vec::new();
        for i in 0..100u64 {
            recs.push(create(i * 1000, &format!("l{i}.lock"), 100 + i));
            recs.push(remove(i * 1000 + (i + 1) * 1000, &format!("l{i}.lock")));
        }
        let rep = NamePredictionReport::from_records(recs.iter());
        let lock = &rep.by_category[&FileCategory::Lock];
        assert_eq!(lock.lifetime_measured, 100);
        let p50 = lock.lifetime_percentile(50.0).unwrap();
        let p99 = lock.lifetime_percentile(99.0).unwrap();
        assert!(p50 < p99);
    }

    #[test]
    fn mailbox_never_deleted_prediction() {
        let recs = [create(0, "inbox", 10), write(1, 10, 8192)];
        let rep = NamePredictionReport::from_records(recs.iter());
        let mbox = &rep.by_category[&FileCategory::Mailbox];
        assert_eq!(mbox.files, 1);
        assert_eq!(mbox.created_and_deleted, 0);
        assert_eq!(mbox.size_within_prediction, 1);
    }
}
