//! Comparison numbers quoted from earlier trace studies.
//!
//! Tables 2 and 3 of the paper place CAMPUS and EECS beside the Roselli
//! INS/RES/NT traces (2000), the Sprite traces (1991), and the BSD study.
//! These constants are transcriptions of the published rows so the bench
//! binaries can print the full comparative tables; they are *inputs*, not
//! measurements.

/// A Table 2 column: average daily activity of a historical trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DailyActivityRow {
    /// Trace label.
    pub name: &'static str,
    /// Year the trace was gathered.
    pub year: u32,
    /// Days of data.
    pub days: u32,
    /// Total ops per day, millions.
    pub total_ops_millions: f64,
    /// Data read per day, GB.
    pub data_read_gb: f64,
    /// Read ops per day, millions.
    pub read_ops_millions: f64,
    /// Data written per day, GB.
    pub data_written_gb: f64,
    /// Write ops per day, millions.
    pub write_ops_millions: f64,
    /// Read/write bytes ratio.
    pub rw_bytes_ratio: f64,
    /// Read/write ops ratio.
    pub rw_ops_ratio: f64,
}

/// The INS (instructional), RES (research), NT (desktop), and Sprite
/// columns of Table 2.
pub const TABLE2_HISTORICAL: [DailyActivityRow; 4] = [
    DailyActivityRow {
        name: "INS",
        year: 2000,
        days: 31,
        total_ops_millions: 8.30,
        data_read_gb: 3.05,
        read_ops_millions: 2.32,
        data_written_gb: 0.542,
        write_ops_millions: 0.15,
        rw_bytes_ratio: 5.6,
        rw_ops_ratio: 15.4,
    },
    DailyActivityRow {
        name: "RES",
        year: 2000,
        days: 31,
        total_ops_millions: 3.20,
        data_read_gb: 1.70,
        read_ops_millions: 0.303,
        data_written_gb: 0.455,
        write_ops_millions: 0.071,
        rw_bytes_ratio: 3.7,
        rw_ops_ratio: 4.27,
    },
    DailyActivityRow {
        name: "NT",
        year: 2000,
        days: 31,
        total_ops_millions: 3.87,
        data_read_gb: 4.04,
        read_ops_millions: 1.27,
        data_written_gb: 0.639,
        write_ops_millions: 0.231,
        rw_bytes_ratio: 6.3,
        rw_ops_ratio: 4.49,
    },
    DailyActivityRow {
        name: "Sprite",
        year: 1991,
        days: 8,
        total_ops_millions: 0.432,
        data_read_gb: 5.36,
        read_ops_millions: 0.207,
        data_written_gb: 1.16,
        write_ops_millions: 0.057,
        rw_bytes_ratio: 4.6,
        rw_ops_ratio: 3.61,
    },
];

/// The paper's own Table 2 rows (the published CAMPUS/EECS numbers), for
/// shape comparison against regenerated results.
pub const TABLE2_PAPER: [DailyActivityRow; 2] = [
    DailyActivityRow {
        name: "CAMPUS(wk)",
        year: 2001,
        days: 7,
        total_ops_millions: 26.7,
        data_read_gb: 119.6,
        read_ops_millions: 17.29,
        data_written_gb: 44.57,
        write_ops_millions: 5.73,
        rw_bytes_ratio: 2.68,
        rw_ops_ratio: 3.01,
    },
    DailyActivityRow {
        name: "EECS(wk)",
        year: 2001,
        days: 7,
        total_ops_millions: 4.44,
        data_read_gb: 5.10,
        read_ops_millions: 0.461,
        data_written_gb: 9.086,
        write_ops_millions: 0.667,
        rw_bytes_ratio: 0.56,
        rw_ops_ratio: 0.69,
    },
];

/// A Table 3 column: run-pattern percentages of a historical study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternRow {
    /// Study label.
    pub name: &'static str,
    /// Reads as % of runs, then entire/seq/random as % of reads.
    pub reads: [f64; 4],
    /// Writes as % of runs, then entire/seq/random as % of writes.
    pub writes: [f64; 4],
    /// Read-write as % of runs, then entire/seq/random as % of r-w.
    pub read_writes: [f64; 4],
}

/// The NT, Sprite, and BSD columns of Table 3.
pub const TABLE3_HISTORICAL: [PatternRow; 3] = [
    PatternRow {
        name: "NT",
        reads: [73.8, 64.6, 7.1, 28.3],
        writes: [23.5, 41.6, 57.1, 1.3],
        read_writes: [2.7, 15.9, 0.3, 83.8],
    },
    PatternRow {
        name: "Sprite",
        reads: [83.5, 72.5, 25.4, 2.1],
        writes: [15.4, 67.0, 28.9, 4.0],
        read_writes: [1.1, 0.1, 0.0, 99.9],
    },
    PatternRow {
        name: "BSD",
        reads: [64.5, 67.1, 24.0, 8.9],
        writes: [27.5, 82.5, 17.2, 0.3],
        read_writes: [7.9, f64::NAN, f64::NAN, 75.1],
    },
];

/// The paper's processed CAMPUS and EECS Table 3 columns.
pub const TABLE3_PAPER: [PatternRow; 2] = [
    PatternRow {
        name: "CAMPUS",
        reads: [53.1, 57.6, 33.9, 8.6],
        writes: [43.9, 37.8, 53.2, 9.0],
        read_writes: [3.0, 3.5, 2.1, 94.3],
    },
    PatternRow {
        name: "EECS",
        reads: [16.5, 57.2, 39.0, 3.8],
        writes: [82.3, 19.6, 78.3, 2.1],
        read_writes: [1.1, 5.8, 7.3, 86.8],
    },
];

/// Table 4 as published, for shape comparison: (write-birth %,
/// extension-birth %, overwrite-death %, truncate-death %,
/// delete-death %).
pub const TABLE4_PAPER_CAMPUS: [f64; 5] = [99.9, 0.1, 99.1, 0.6, 0.3];
/// See [`TABLE4_PAPER_CAMPUS`].
pub const TABLE4_PAPER_EECS: [f64; 5] = [75.5, 24.5, 42.4, 5.8, 51.8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_percent_shapes() {
        // Historical traces all read more than they write; the paper's
        // EECS inverts that. These sanity checks guard transcription.
        for row in TABLE2_HISTORICAL {
            assert!(row.rw_bytes_ratio > 1.0, "{}", row.name);
            assert!(row.rw_ops_ratio > 1.0, "{}", row.name);
        }
        assert!(TABLE2_PAPER[0].rw_bytes_ratio > 1.0); // CAMPUS reads dominate
        assert!(TABLE2_PAPER[1].rw_bytes_ratio < 1.0); // EECS writes dominate
    }

    #[test]
    fn table3_breakdowns_sum_to_about_100() {
        for row in TABLE3_PAPER {
            let total = row.reads[0] + row.writes[0] + row.read_writes[0];
            assert!((total - 100.0).abs() < 1.0, "{}: {total}", row.name);
            let read_sum: f64 = row.reads[1..].iter().sum();
            assert!((read_sum - 100.0).abs() < 1.0, "{}: {read_sum}", row.name);
        }
    }

    #[test]
    fn table4_death_causes_sum_to_100() {
        let c: f64 = TABLE4_PAPER_CAMPUS[2..].iter().sum();
        let e: f64 = TABLE4_PAPER_EECS[2..].iter().sum();
        assert!((c - 100.0).abs() < 0.5);
        assert!((e - 100.0).abs() < 0.5);
    }
}
