//! The one-pass analysis index.
//!
//! Every table and figure in the paper is a view over the same
//! underlying structures: per-file, reorder-corrected access streams,
//! aggregate counters, hourly buckets, and block lifetime events.
//! Recomputing those from the raw record stream for each artifact makes
//! a full reproduction pass re-bucket and re-sort a week-long trace a
//! dozen times. [`TraceIndex`] is built **once** per trace — a single
//! pass over the records populates the summary counters, the hourly
//! buckets, and the per-file access lists — and every derived product
//! (reorder-window-sorted access maps, run tables keyed by
//! [`RunOptions`], lifetime reports keyed by [`LifetimeConfig`], the
//! name-prediction report) is computed on first request and cached
//! behind the shared reference.
//!
//! Time-windowed views ([`TraceIndex::time_window`]) share the backing
//! record storage via [`Arc`], so analyzing "the week" and "Wednesday
//! morning" of one trace never copies a record.
//!
//! # Examples
//!
//! ```
//! use nfstrace_core::index::TraceIndex;
//! use nfstrace_core::record::{FileId, Op, TraceRecord};
//! use nfstrace_core::runs::RunOptions;
//!
//! let records = vec![
//!     TraceRecord::new(0, Op::Read, FileId(1)).with_range(0, 8192),
//!     TraceRecord::new(500, Op::Read, FileId(1)).with_range(8192, 8192),
//! ];
//! let idx = TraceIndex::new(records);
//! assert_eq!(idx.summary().read_ops, 2);
//! let runs = idx.runs(10, RunOptions::default());
//! assert_eq!(runs.len(), 1);
//! // Asking again hits the cache: still exactly one sort pass.
//! let _ = idx.runs(10, RunOptions::raw());
//! assert_eq!(idx.sort_passes(), 1);
//! ```

use crate::hourly::{HourlyBuilder, HourlySeries};
use crate::lifetime::{self, LifetimeConfig, LifetimeReport};
use crate::names::NamePredictionReport;
use crate::record::{FileId, TraceRecord};
use crate::reorder::{self, Access, SwapPoint};
use crate::runs::{runs_for_trace, Run, RunOptions};
use crate::summary::SummaryStats;
use crate::time::{DAY, HOUR};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Per-file access lists, the unit the reorder and run analyses consume.
pub type AccessMap = HashMap<FileId, Vec<Access>>;

/// Cached run tables keyed by (reorder window ms, run options).
type RunCache = HashMap<(u64, RunOptions), Arc<Vec<Run>>>;

/// A build-once, query-many index over one trace (or one time window of
/// one trace).
#[derive(Debug)]
pub struct TraceIndex {
    /// The full backing trace, time-sorted, shared across windows.
    records: Arc<Vec<TraceRecord>>,
    /// This view's half-open record range within `records`.
    lo: usize,
    hi: usize,
    /// Aggregate counters, built in the construction pass.
    summary: SummaryStats,
    /// Hourly buckets, built in the construction pass.
    hourly: HourlySeries,
    /// Arrival-order per-file accesses, built in the construction pass.
    raw: Arc<AccessMap>,
    /// Reorder-corrected access maps, one per requested window (ms).
    sorted: Mutex<HashMap<u64, Arc<AccessMap>>>,
    /// Run tables keyed by (reorder window ms, run options).
    runs: Mutex<RunCache>,
    /// Lifetime reports keyed by their phase configuration.
    lifetimes: Mutex<HashMap<LifetimeConfig, Arc<LifetimeReport>>>,
    /// The paper's merged five-weekday lifetime report.
    weekday: OnceLock<Arc<LifetimeReport>>,
    /// The §6.3 name-prediction report.
    names: OnceLock<NamePredictionReport>,
    /// How many reorder bucket+sort passes this index has performed.
    sort_passes: AtomicU64,
}

impl TraceIndex {
    /// Builds an index over a whole trace in one pass. Records are
    /// time-sorted first if they are not already (generated and on-disk
    /// traces are).
    pub fn new(mut records: Vec<TraceRecord>) -> Self {
        if !records.windows(2).all(|w| w[0].micros <= w[1].micros) {
            records.sort_by_key(|r| r.micros);
        }
        let n = records.len();
        Self::build(Arc::new(records), 0, n)
    }

    /// The single construction pass: one loop over the record range
    /// feeds the summary counters, the hourly buckets, and the per-file
    /// access lists simultaneously.
    fn build(records: Arc<Vec<TraceRecord>>, lo: usize, hi: usize) -> Self {
        let mut summary = SummaryStats::accumulator();
        let mut hourly = HourlyBuilder::default();
        let mut raw: AccessMap = HashMap::new();
        for r in &records[lo..hi] {
            summary.add(r);
            hourly.observe(r);
            if let Some(a) = Access::from_record(r) {
                raw.entry(r.fh).or_default().push(a);
            }
        }
        summary.finish();
        TraceIndex {
            records,
            lo,
            hi,
            summary,
            hourly: hourly.finish(),
            raw: Arc::new(raw),
            sorted: Mutex::new(HashMap::new()),
            runs: Mutex::new(HashMap::new()),
            lifetimes: Mutex::new(HashMap::new()),
            weekday: OnceLock::new(),
            names: OnceLock::new(),
            sort_passes: AtomicU64::new(0),
        }
    }

    /// An index over the records in `[start_micros, end_micros)`,
    /// sharing the backing storage with `self`. The view gets its own
    /// caches (its per-file streams differ from the parent's).
    pub fn time_window(&self, start_micros: u64, end_micros: u64) -> TraceIndex {
        let view = &self.records[self.lo..self.hi];
        let a = view.partition_point(|r| r.micros < start_micros);
        let b = view.partition_point(|r| r.micros < end_micros);
        Self::build(Arc::clone(&self.records), self.lo + a, self.lo + b)
    }

    /// The records in this view, time-sorted.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records[self.lo..self.hi]
    }

    /// Number of records in this view.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Aggregate counters (Tables 1 and 2).
    pub fn summary(&self) -> &SummaryStats {
        &self.summary
    }

    /// Hourly buckets (Figure 4, Table 5).
    pub fn hourly(&self) -> &HourlySeries {
        &self.hourly
    }

    /// The §6.3 name-prediction report, computed on first use.
    pub fn names(&self) -> &NamePredictionReport {
        self.names
            .get_or_init(|| NamePredictionReport::from_records(self.records().iter()))
    }

    /// Per-file accesses corrected with a `window_ms` reorder window
    /// (§4.2). Window 0 returns the arrival-order lists. Each window is
    /// sorted exactly once per index; repeat calls are cache hits.
    pub fn accesses(&self, window_ms: u64) -> Arc<AccessMap> {
        if window_ms == 0 {
            return Arc::clone(&self.raw);
        }
        let mut cache = self.sorted.lock().expect("index lock");
        if let Some(m) = cache.get(&window_ms) {
            return Arc::clone(m);
        }
        let mut sorted: AccessMap = self.raw.as_ref().clone();
        for list in sorted.values_mut() {
            reorder::sort_within_window(list, window_ms * 1000);
        }
        self.sort_passes.fetch_add(1, Ordering::Relaxed);
        let arc = Arc::new(sorted);
        cache.insert(window_ms, Arc::clone(&arc));
        arc
    }

    /// The run table for a reorder window and split/categorization
    /// options (Table 3, Figures 2 and 5), computed once per key.
    pub fn runs(&self, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>> {
        let key = (window_ms, opts);
        if let Some(r) = self.runs.lock().expect("index lock").get(&key) {
            return Arc::clone(r);
        }
        // Compute outside the lock: `accesses` takes its own lock.
        let computed = Arc::new(runs_for_trace(&self.accesses(window_ms), opts));
        let mut cache = self.runs.lock().expect("index lock");
        Arc::clone(cache.entry(key).or_insert(computed))
    }

    /// The block lifetime report for one phase configuration (§5.2),
    /// computed once per configuration.
    pub fn lifetime(&self, cfg: LifetimeConfig) -> Arc<LifetimeReport> {
        let mut cache = self.lifetimes.lock().expect("index lock");
        if let Some(r) = cache.get(&cfg) {
            return Arc::clone(r);
        }
        let rep = Arc::new(lifetime::analyze(self.records().iter(), cfg));
        cache.insert(cfg, Arc::clone(&rep));
        rep
    }

    /// The paper's Table 4 / Figure 3 methodology: five weekday
    /// 24-hour windows starting 9am, each with a 24-hour end margin,
    /// merged. Requires ≥ 8 days of trace for full margins.
    pub fn weekday_lifetime(&self) -> Arc<LifetimeReport> {
        Arc::clone(self.weekday.get_or_init(|| {
            let mut merged = LifetimeReport::default();
            for d in 1..=5u64 {
                let cfg = LifetimeConfig {
                    phase1_start: d * DAY + 9 * HOUR,
                    phase1_len: DAY,
                    phase2_len: DAY,
                };
                merged.merge(&self.lifetime(cfg));
            }
            Arc::new(merged)
        }))
    }

    /// The Figure 1 sweep over this view's arrival-order accesses,
    /// parallelized across files (see
    /// [`reorder::swap_fraction_sweep`]).
    pub fn swap_sweep(&self, windows_ms: &[u64]) -> Vec<SwapPoint> {
        reorder::swap_fraction_sweep(&self.raw, windows_ms)
    }

    /// How many reorder bucket+sort passes this index has performed —
    /// one per distinct nonzero window ever requested. The reproduction
    /// suite asserts this stays at one per (trace, window).
    pub fn sort_passes(&self) -> u64 {
        self.sort_passes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Op;

    fn rec(micros: u64, op: Op, fh: u64, offset: u64, count: u32) -> TraceRecord {
        TraceRecord::new(micros, op, FileId(fh)).with_range(offset, count)
    }

    fn sample() -> Vec<TraceRecord> {
        let mut v = Vec::new();
        for i in 0..40u64 {
            v.push(rec(i * 1_000, Op::Read, i % 3, (i / 3) * 8192, 8192));
            if i % 4 == 0 {
                v.push(rec(i * 1_000 + 300, Op::Write, 7, i * 8192, 4096));
            }
            if i % 5 == 0 {
                v.push(TraceRecord::new(i * 1_000 + 500, Op::Getattr, FileId(9)));
            }
        }
        v
    }

    #[test]
    fn matches_legacy_single_shot_paths() {
        let records = sample();
        let idx = TraceIndex::new(records.clone());
        assert_eq!(idx.summary(), &SummaryStats::from_records(records.iter()));
        assert_eq!(idx.hourly(), &HourlySeries::from_records(records.iter()));
        let legacy = reorder::accesses_by_file(records.iter());
        assert_eq!(idx.accesses(0).as_ref(), &legacy);
        let mut sorted = legacy.clone();
        for l in sorted.values_mut() {
            reorder::sort_within_window(l, 10_000);
        }
        assert_eq!(idx.accesses(10).as_ref(), &sorted);
        assert_eq!(
            idx.runs(10, RunOptions::default()).as_ref(),
            &runs_for_trace(&sorted, RunOptions::default())
        );
    }

    #[test]
    fn caches_are_hit_not_rebuilt() {
        let idx = TraceIndex::new(sample());
        let a = idx.runs(10, RunOptions::default());
        let b = idx.runs(10, RunOptions::default());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(idx.sort_passes(), 1);
        let _ = idx.runs(10, RunOptions::raw());
        assert_eq!(idx.sort_passes(), 1, "raw opts reuse the sorted map");
        let _ = idx.runs(5, RunOptions::default());
        assert_eq!(idx.sort_passes(), 2, "a second window is a new pass");
    }

    #[test]
    fn window_zero_is_arrival_order_and_free() {
        let idx = TraceIndex::new(sample());
        let _ = idx.accesses(0);
        let _ = idx.runs(0, RunOptions::raw());
        assert_eq!(idx.sort_passes(), 0);
    }

    #[test]
    fn time_window_shares_storage_and_matches_slice() {
        let records = sample();
        let idx = TraceIndex::new(records.clone());
        let sub = idx.time_window(10_000, 20_000);
        let expect: Vec<&TraceRecord> = records
            .iter()
            .filter(|r| (10_000..20_000).contains(&r.micros))
            .collect();
        assert_eq!(sub.len(), expect.len());
        let legacy = SummaryStats::from_records(expect);
        assert_eq!(sub.summary(), &legacy);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let mut records = sample();
        records.reverse();
        let idx = TraceIndex::new(records);
        let r = idx.records();
        assert!(r.windows(2).all(|w| w[0].micros <= w[1].micros));
    }

    #[test]
    fn empty_trace() {
        let idx = TraceIndex::new(Vec::new());
        assert!(idx.is_empty());
        assert_eq!(idx.summary().total_ops, 0);
        assert!(idx.runs(10, RunOptions::default()).is_empty());
    }

    #[test]
    fn lifetime_cached_per_config_and_weekday_merges() {
        let idx = TraceIndex::new(sample());
        let cfg = LifetimeConfig {
            phase1_start: 0,
            phase1_len: 20_000,
            phase2_len: 20_000,
        };
        let a = idx.lifetime(cfg);
        let b = idx.lifetime(cfg);
        assert!(Arc::ptr_eq(&a, &b));
        let w1 = idx.weekday_lifetime();
        let w2 = idx.weekday_lifetime();
        assert!(Arc::ptr_eq(&w1, &w2));
    }
}
