//! The one-pass analysis index and its mergeable building blocks.
//!
//! Every table and figure in the paper is a view over the same
//! underlying structures: per-file, reorder-corrected access streams,
//! aggregate counters, hourly buckets, and block lifetime events.
//! Recomputing those from the raw record stream for each artifact makes
//! a full reproduction pass re-bucket and re-sort a week-long trace a
//! dozen times. [`TraceIndex`] is built **once** per trace — a single
//! pass over the records populates the summary counters, the hourly
//! buckets, and the per-file access lists — and every derived product
//! (reorder-window-sorted access maps, run tables keyed by
//! [`RunOptions`], lifetime reports keyed by [`LifetimeConfig`], the
//! name-prediction report) is computed on first request and cached
//! behind the shared reference.
//!
//! Time-windowed views ([`TraceIndex::time_window`]) share the backing
//! record storage via [`Arc`], so analyzing "the week" and "Wednesday
//! morning" of one trace never copies a record.
//!
//! # Partial indices and out-of-core analysis
//!
//! The construction pass decomposes: [`PartialIndex`] accumulates one
//! *chunk* of a trace, and partials [`PartialIndex::absorb`]ed in chunk
//! order rebuild exactly what one pass over the concatenated records
//! builds — bit-identical summary, hourly series, and per-file access
//! lists. [`TraceIndex::new_sharded`] uses this to parallelize the
//! in-memory construction pass, and the `nfstrace_store` crate uses it
//! to index on-disk chunked traces that never fit in memory at once.
//! The derived-product caching lives in [`ProductCaches`], shared by
//! both index flavors, and the analysis surface every table/figure
//! consumes is the [`TraceView`] trait.
//!
//! # Fused replay
//!
//! The record-replaying analyses (block lifetimes, name prediction,
//! hierarchy coverage) each traverse the full record stream. Run
//! naively, the reproduction suite replays a trace seven times — five
//! weekday lifetime windows, names, coverage — which for the on-disk
//! store means seven full chunk-decode passes. Every streaming analyzer
//! therefore implements [`RecordObserver`], and
//! [`TraceView::prepare`] / [`ProductCaches::prepare`] [`fan_out`] any
//! batch of them over **one** replay: callers that know their full
//! analysis set up front (the `repro` suite) pay one decode pass total,
//! asserted via [`TraceView::decode_passes`].
//!
//! # Examples
//!
//! ```
//! use nfstrace_core::index::TraceIndex;
//! use nfstrace_core::record::{FileId, Op, TraceRecord};
//! use nfstrace_core::runs::RunOptions;
//!
//! let records = vec![
//!     TraceRecord::new(0, Op::Read, FileId(1)).with_range(0, 8192),
//!     TraceRecord::new(500, Op::Read, FileId(1)).with_range(8192, 8192),
//! ];
//! let idx = TraceIndex::new(records);
//! assert_eq!(idx.summary().read_ops, 2);
//! let runs = idx.runs(10, RunOptions::default());
//! assert_eq!(runs.len(), 1);
//! // Asking again hits the cache: still exactly one sort pass.
//! let _ = idx.runs(10, RunOptions::raw());
//! assert_eq!(idx.sort_passes(), 1);
//! ```

use crate::hierarchy::{CoverageBuilder, CoveragePoint};
use crate::hourly::{HourlyBuilder, HourlySeries};
use crate::lifetime::{BlockLifetimeAnalyzer, LifetimeConfig, LifetimeReport};
use crate::names::{NamePredictionBuilder, NamePredictionReport};
use crate::record::{FileId, TraceRecord};
use crate::reorder::{self, Access, SwapPoint};
use crate::runs::{runs_for_trace, Run, RunOptions};
use crate::summary::SummaryStats;
use crate::time::{DAY, HOUR};
use nfstrace_telemetry::{span, Counter, Histogram, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One file's access list, shared copy-on-write between snapshots: a
/// [`PartialIndex`] snapshot and the running partial share every list
/// until the ingest touches that file again ([`Arc::make_mut`]), so
/// snapshotting never copies accesses.
pub type AccessList = Arc<Vec<Access>>;

/// Per-file access lists, the unit the reorder and run analyses consume.
pub type AccessMap = HashMap<FileId, AccessList>;

/// Per-file arrival sequence numbers, aligned index-for-index with the
/// [`AccessMap`] lists of a seq-tracked [`PartialIndex`].
type SeqMap = HashMap<FileId, Arc<Vec<u64>>>;

/// Cached run tables keyed by (reorder window ms, run options).
type RunCache = HashMap<(u64, RunOptions), Arc<Vec<Run>>>;

/// A source that can replay its records — in time order — any number of
/// times. In-memory indices iterate a slice; the on-disk store decodes
/// chunk by chunk, so a replay never holds more than one chunk of
/// records.
pub trait RecordStream {
    /// Calls `f` once per record, in time order.
    fn for_each_record(&self, f: &mut dyn FnMut(&TraceRecord));
}

/// A record-at-a-time analysis accumulator that can subscribe to a
/// shared decoded-record stream.
///
/// Every streaming analyzer in the suite (name prediction, hierarchy
/// coverage, each block-lifetime window, the construction-pass
/// [`PartialIndex`]) implements this, so [`fan_out`] — and the fused
/// replay in [`ProductCaches::prepare`] — can feed any number of them
/// from **one** pass over the records. For the on-disk store that means
/// one chunk-decode pass total instead of one per analysis.
pub trait RecordObserver {
    /// Folds one record in. Records arrive in time order.
    fn observe(&mut self, r: &TraceRecord);
}

impl RecordObserver for PartialIndex {
    fn observe(&mut self, r: &TraceRecord) {
        PartialIndex::observe(self, r);
    }
}

/// Replays `source` once, feeding every record to every observer in
/// order. The single-pass engine behind [`ProductCaches::prepare`].
pub fn fan_out(source: &dyn RecordStream, observers: &mut [&mut dyn RecordObserver]) {
    source.for_each_record(&mut |r| {
        for o in observers.iter_mut() {
            o.observe(r);
        }
    });
}

/// A replay-derived product that [`ProductCaches::prepare`] can compute
/// in its next fused pass.
///
/// Callers that know the full set of record-replaying analyses they are
/// about to run (the `repro` suite does) register them all up front, so
/// the view replays — for the on-disk store, *decodes* — its records
/// exactly once instead of once per analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayRequest {
    /// The §6.3 name-prediction report ([`TraceView::names`]).
    Names,
    /// §4.1.1 hierarchy coverage with this bucket width in microseconds
    /// ([`TraceView::hierarchy_coverage`]).
    Coverage(u64),
    /// One block-lifetime window ([`TraceView::lifetime`]).
    Lifetime(LifetimeConfig),
    /// The five merged weekday windows
    /// ([`TraceView::weekday_lifetime`]).
    WeekdayLifetime,
}

/// The analysis surface every paper artifact consumes.
///
/// Both [`TraceIndex`] (records in memory) and the store-backed index
/// in `nfstrace_store` (records on disk, chunk-parallel partials)
/// implement this, so the whole table/figure layer is written once and
/// runs out-of-core unchanged. The contract is **bit-identity**: every
/// method must return exactly what [`TraceIndex::new`] over the same
/// records returns.
pub trait TraceView: RecordStream {
    /// Number of records in this view.
    fn len(&self) -> usize;

    /// Whether the view is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters (Tables 1 and 2).
    fn summary(&self) -> &SummaryStats;

    /// Hourly buckets (Figure 4, Table 5).
    fn hourly(&self) -> &HourlySeries;

    /// The §6.3 name-prediction report, computed on first use.
    fn names(&self) -> &NamePredictionReport;

    /// Per-file accesses corrected with a `window_ms` reorder window
    /// (§4.2). Window 0 returns the arrival-order lists.
    fn accesses(&self, window_ms: u64) -> Arc<AccessMap>;

    /// The run table for a reorder window and split/categorization
    /// options (Table 3, Figures 2 and 5), computed once per key.
    fn runs(&self, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>>;

    /// The block lifetime report for one phase configuration (§5.2),
    /// computed once per configuration.
    fn lifetime(&self, cfg: LifetimeConfig) -> Arc<LifetimeReport>;

    /// The paper's Table 4 / Figure 3 methodology: five weekday 24-hour
    /// windows starting 9am, each with a 24-hour end margin, merged.
    fn weekday_lifetime(&self) -> Arc<LifetimeReport>;

    /// The Figure 1 sweep over this view's arrival-order accesses.
    fn swap_sweep(&self, windows_ms: &[u64]) -> Vec<SwapPoint>;

    /// A view over the records in `[start_micros, end_micros)`.
    fn time_window(&self, start_micros: u64, end_micros: u64) -> Self
    where
        Self: Sized;

    /// How many reorder bucket+sort passes this view has performed.
    fn sort_passes(&self) -> u64;

    /// §4.1.1 hierarchy-reconstruction coverage, computed once per
    /// bucket width and cached (like every other replay product) —
    /// repeat calls share the [`Arc`].
    fn hierarchy_coverage(&self, bucket_micros: u64) -> Arc<Vec<CoveragePoint>>;

    /// Computes every not-yet-cached product in `requests` in **one**
    /// fused replay pass (see [`ProductCaches::prepare`]). Calling the
    /// individual accessors afterwards is pure cache hits.
    fn prepare(&self, requests: &[ReplayRequest]);

    /// How many full record-replay passes this view has performed for
    /// its replay-derived products (names, coverage, lifetimes). For
    /// the on-disk store every such pass decodes the view's chunks, so
    /// the reproduction suite asserts this stays at one — the fused
    /// pass — per view, the same way it bounds [`TraceView::sort_passes`].
    fn decode_passes(&self) -> u64;
}

/// A mergeable shard of the [`TraceIndex`] construction pass.
///
/// One `PartialIndex` accumulates one contiguous, time-ordered chunk of
/// a trace. Partials absorbed **in chunk order** (chunk ordinal, which
/// for a time-sorted trace also means timestamp order) produce the same
/// summary, hourly buckets, and per-file access lists as a single pass
/// over the concatenated records — the per-file lists concatenate in
/// record order, and every counter is a sum.
///
/// # Examples
///
/// ```
/// use nfstrace_core::index::PartialIndex;
/// use nfstrace_core::record::{FileId, Op, TraceRecord};
///
/// let recs: Vec<_> = (0..10u64)
///     .map(|i| TraceRecord::new(i, Op::Read, FileId(1)).with_range(i * 8192, 8192))
///     .collect();
/// let mut whole = PartialIndex::from_records(&recs);
/// let mut merged = PartialIndex::from_records(&recs[..4]);
/// merged.absorb(PartialIndex::from_records(&recs[4..]));
/// assert_eq!(whole.finish().summary, merged.finish().summary);
/// ```
///
/// `Clone` exists for *snapshots*: a live ingest keeps one running
/// partial and clones it to answer queries mid-stream without ending
/// accumulation ([`PartialIndex::snapshot_base`]). The per-file access
/// lists are copy-on-write ([`AccessList`]), so a snapshot costs
/// O(counters + hourly buckets) — **not** O(distinct files + accesses)
/// — and later observes re-copy only the lists a snapshot still holds.
///
/// # Sequence tracking
///
/// A partial built with [`PartialIndex::with_seq_tracking`] additionally
/// records, per access, a caller-supplied global arrival sequence
/// number ([`PartialIndex::observe_seq`]). Seq-tracked partials over
/// *overlapping* time ranges — the per-shard partials of a sharded live
/// ingest — can then be merged exactly with [`PartialIndex::merge`]:
/// sequence numbers recover the original cross-shard interleave that
/// timestamps alone cannot (equal-microsecond ties).
#[derive(Debug, Clone)]
pub struct PartialIndex {
    summary: SummaryStats,
    hourly: HourlyBuilder,
    raw: Arc<AccessMap>,
    /// Arrival seqs aligned with `raw`; `Some` only for seq-tracked
    /// partials.
    seqs: Option<Arc<SeqMap>>,
    len: usize,
}

impl Default for PartialIndex {
    fn default() -> Self {
        Self::new()
    }
}

/// The finished products of a (possibly merged) construction pass:
/// everything [`TraceIndex`] derives its cached analyses from.
/// `Clone` is cheap (the access lists are behind [`Arc`]s) so a live
/// ingest can cache the finished base per generation.
#[derive(Debug, Clone)]
pub struct IndexBase {
    /// Aggregate counters.
    pub summary: SummaryStats,
    /// Hourly buckets.
    pub hourly: HourlySeries,
    /// Arrival-order per-file accesses.
    pub raw: Arc<AccessMap>,
    /// Number of records folded in.
    pub len: usize,
}

impl PartialIndex {
    /// An empty partial ready for [`PartialIndex::observe`] calls.
    pub fn new() -> Self {
        PartialIndex {
            summary: SummaryStats::accumulator(),
            hourly: HourlyBuilder::default(),
            raw: Arc::new(AccessMap::new()),
            seqs: None,
            len: 0,
        }
    }

    /// An empty partial that records a global arrival sequence number
    /// per access ([`PartialIndex::observe_seq`]), enabling
    /// [`PartialIndex::merge`] across time-overlapping partials.
    pub fn with_seq_tracking() -> Self {
        PartialIndex {
            seqs: Some(Arc::new(SeqMap::new())),
            ..PartialIndex::new()
        }
    }

    /// Whether this partial records arrival sequence numbers.
    pub fn tracks_seqs(&self) -> bool {
        self.seqs.is_some()
    }

    /// Builds a partial over one chunk of records in a single pass.
    pub fn from_records<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        let mut p = PartialIndex::new();
        for r in records {
            p.observe(r);
        }
        p
    }

    /// Folds one record into the summary counters, the hourly buckets,
    /// and the per-file access lists simultaneously.
    ///
    /// On a seq-tracked partial use [`PartialIndex::observe_seq`]
    /// instead, so the seq lists stay aligned with the access lists.
    pub fn observe(&mut self, r: &TraceRecord) {
        debug_assert!(
            self.seqs.is_none(),
            "seq-tracked partials must use observe_seq"
        );
        self.summary.add(r);
        self.hourly.observe(r);
        if let Some(a) = Access::from_record(r) {
            Arc::make_mut(Arc::make_mut(&mut self.raw).entry(r.fh).or_default()).push(a);
        }
        self.len += 1;
    }

    /// [`PartialIndex::observe`] plus the record's global arrival
    /// sequence number. Requires [`PartialIndex::with_seq_tracking`].
    /// Seqs must be unique across every partial later merged together
    /// and ascending within each partial (an arrival counter is both).
    pub fn observe_seq(&mut self, r: &TraceRecord, seq: u64) {
        self.summary.add(r);
        self.hourly.observe(r);
        if let Some(a) = Access::from_record(r) {
            Arc::make_mut(Arc::make_mut(&mut self.raw).entry(r.fh).or_default()).push(a);
            let seqs = self
                .seqs
                .as_mut()
                .expect("observe_seq requires with_seq_tracking");
            Arc::make_mut(Arc::make_mut(seqs).entry(r.fh).or_default()).push(seq);
        }
        self.len += 1;
    }

    /// Number of records folded in so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no record has been folded in.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Merges the **next** chunk's partial into this one.
    ///
    /// The caller must absorb partials in chunk order: every record in
    /// `later` is taken to follow every record already folded into
    /// `self`, so the per-file access lists concatenate in trace order.
    pub fn absorb(&mut self, later: PartialIndex) {
        debug_assert_eq!(
            self.seqs.is_some(),
            later.seqs.is_some(),
            "absorb requires matching seq-tracking modes"
        );
        self.summary.absorb(&later.summary);
        self.hourly.absorb(later.hourly);
        Self::absorb_map(&mut self.raw, later.raw);
        if let (Some(mine), Some(theirs)) = (&mut self.seqs, later.seqs) {
            Self::absorb_map(mine, theirs);
        }
        self.len += later.len;
    }

    /// Concatenates `later`'s per-key lists after `this`'s. Lists only
    /// `later` holds are moved in wholesale (the `Arc` is shared, not
    /// copied).
    fn absorb_map<K, V>(
        this: &mut Arc<HashMap<K, Arc<Vec<V>>>>,
        later: Arc<HashMap<K, Arc<Vec<V>>>>,
    ) where
        K: std::hash::Hash + Eq + Clone,
        V: Clone,
    {
        let later = Arc::try_unwrap(later).unwrap_or_else(|a| a.as_ref().clone());
        let this = Arc::make_mut(this);
        for (key, list) in later {
            match this.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    Arc::make_mut(e.get_mut()).extend(list.iter().cloned());
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(list);
                }
            }
        }
    }

    /// Merges per-chunk partials — ordered by chunk ordinal — into the
    /// finished construction products. `parts` absorbed front to back.
    pub fn merge_ordered<I>(parts: I) -> IndexBase
    where
        I: IntoIterator<Item = PartialIndex>,
    {
        let mut acc = PartialIndex::new();
        for p in parts {
            acc.absorb(p);
        }
        acc.finish()
    }

    /// The finished products *as of now*, without ending accumulation:
    /// clones the running state and finishes the clone. This is how a
    /// live view materializes "everything ingested so far" while the
    /// ingest keeps folding records in.
    ///
    /// The access lists are copy-on-write, so this costs
    /// O(counters + hourly buckets): the snapshot and the running
    /// partial *share* every per-file list until the next observe of
    /// that file re-copies just that list.
    pub fn snapshot_base(&self) -> IndexBase {
        self.clone().finish()
    }

    /// Ends accumulation and returns the finished products.
    pub fn finish(mut self) -> IndexBase {
        self.summary.finish();
        IndexBase {
            summary: self.summary,
            hourly: self.hourly.finish(),
            raw: self.raw,
            len: self.len,
        }
    }

    /// Merges seq-tracked partials over **overlapping** time ranges —
    /// the per-shard partials of a sharded live ingest — into the
    /// finished construction products, exactly as one pass over the
    /// records in arrival-sequence order would build them.
    ///
    /// The counters and hourly buckets are order-insensitive sums; the
    /// per-file access lists are rebuilt by merging each file's
    /// per-partial runs in ascending sequence order. A file all of
    /// whose accesses came through one partial (the common case when
    /// sharding by client) shares that partial's list `Arc` unmerged.
    ///
    /// # Panics
    ///
    /// If any partial was not built with
    /// [`PartialIndex::with_seq_tracking`].
    pub fn merge<I>(parts: I) -> IndexBase
    where
        I: IntoIterator<Item = PartialIndex>,
    {
        let mut summary = SummaryStats::accumulator();
        let mut hourly = HourlyBuilder::default();
        let mut len = 0usize;
        // One file's access lists from every partial that saw it, each
        // paired with its arrival-sequence list.
        type SeqTaggedLists = Vec<(AccessList, Arc<Vec<u64>>)>;
        let mut sources: HashMap<FileId, SeqTaggedLists> = HashMap::new();
        for p in parts {
            summary.absorb(&p.summary);
            hourly.absorb(p.hourly);
            len += p.len;
            let seqs = p
                .seqs
                .expect("PartialIndex::merge requires seq-tracked partials");
            for (fh, list) in p.raw.iter() {
                let sq = seqs.get(fh).expect("seq lists aligned with access lists");
                debug_assert_eq!(list.len(), sq.len());
                sources
                    .entry(*fh)
                    .or_default()
                    .push((Arc::clone(list), Arc::clone(sq)));
            }
        }
        let mut raw = AccessMap::with_capacity(sources.len());
        for (fh, mut lists) in sources {
            let merged = if lists.len() == 1 {
                lists.pop().expect("one source").0
            } else {
                // K-way merge by globally unique arrival seq. The fan-in
                // is the shard count, so a linear min-scan per access is
                // cheaper than a heap.
                let total = lists.iter().map(|(l, _)| l.len()).sum();
                let mut out = Vec::with_capacity(total);
                let mut pos = vec![0usize; lists.len()];
                for _ in 0..total {
                    let mut best = usize::MAX;
                    let mut best_seq = u64::MAX;
                    for (i, (l, s)) in lists.iter().enumerate() {
                        if pos[i] < l.len() && s[pos[i]] <= best_seq {
                            best_seq = s[pos[i]];
                            best = i;
                        }
                    }
                    out.push(lists[best].0[pos[best]]);
                    pos[best] += 1;
                }
                Arc::new(out)
            };
            raw.insert(fh, merged);
        }
        summary.finish();
        IndexBase {
            summary,
            hourly: hourly.finish(),
            raw: Arc::new(raw),
            len,
        }
    }
}

/// The derived-product caches shared by every index flavor.
///
/// Holds what is computed *from* the construction products on first
/// request: reorder-sorted access maps per window, run tables per
/// (window, options), lifetime reports per configuration, the merged
/// weekday lifetime report, and the name-prediction report. Record
/// access goes through [`RecordStream`], so the same code serves the
/// in-memory index (slice iteration) and the on-disk store index
/// (chunk-at-a-time decode).
///
/// Pass accounting is two-tier: the `query.*` telemetry instruments
/// aggregate across every view sharing a [`Registry`] (the pipeline
/// health export), while the plain per-view counters behind
/// [`ProductCaches::sort_passes`] / [`ProductCaches::decode_passes`]
/// keep the exact per-view semantics the suite's single-pass assertions
/// check — a time window and its parent must not pool those.
#[derive(Debug)]
pub struct ProductCaches {
    /// Reorder-corrected access maps, one per requested window (ms).
    sorted: Mutex<HashMap<u64, Arc<AccessMap>>>,
    /// Run tables keyed by (reorder window ms, run options).
    runs: Mutex<RunCache>,
    /// Lifetime reports keyed by their phase configuration.
    lifetimes: Mutex<HashMap<LifetimeConfig, Arc<LifetimeReport>>>,
    /// The paper's merged five-weekday lifetime report.
    weekday: OnceLock<Arc<LifetimeReport>>,
    /// The §6.3 name-prediction report.
    names: OnceLock<NamePredictionReport>,
    /// Hierarchy-coverage series keyed by bucket width (µs).
    coverage: Mutex<HashMap<u64, Arc<Vec<CoveragePoint>>>>,
    /// How many reorder bucket+sort passes *this view* has performed.
    sort_passes: AtomicU64,
    /// How many full record-replay passes *this view* has performed.
    decode_passes: AtomicU64,
    /// Registry-backed `query.*` instruments, shared across views.
    metrics: QueryMetrics,
}

impl Default for ProductCaches {
    fn default() -> Self {
        ProductCaches::with_registry(&Registry::new())
    }
}

/// The `query.*` slice of the pipeline-health export: fused-replay and
/// reorder-sort pass counts plus their wall-clock histograms.
#[derive(Debug)]
struct QueryMetrics {
    /// `query.requests` — [`ReplayRequest`]s handed to `prepare`
    /// (cache hits included).
    requests: Counter,
    /// `query.replay_passes` — fused replay passes that touched records.
    replay_passes: Counter,
    /// `query.sort_passes` — reorder bucket+sort passes.
    sort_passes: Counter,
    /// `query.replay_micros` — wall time of each fused replay pass.
    replay_micros: Histogram,
    /// `query.sort_micros` — wall time of each reorder sort pass.
    sort_micros: Histogram,
}

impl QueryMetrics {
    fn register(registry: &Registry) -> Self {
        QueryMetrics {
            requests: registry.counter("query.requests"),
            replay_passes: registry.counter("query.replay_passes"),
            sort_passes: registry.counter("query.sort_passes"),
            replay_micros: registry.histogram("query.replay_micros"),
            sort_micros: registry.histogram("query.sort_micros"),
        }
    }
}

/// One analyzer riding a fused replay pass, paired with where its
/// finished product lands.
enum ReplayJob {
    Names(NamePredictionBuilder),
    Coverage(u64, CoverageBuilder),
    Lifetime(LifetimeConfig, BlockLifetimeAnalyzer),
}

impl RecordObserver for ReplayJob {
    fn observe(&mut self, r: &TraceRecord) {
        match self {
            ReplayJob::Names(b) => b.observe(r),
            ReplayJob::Coverage(_, b) => b.observe(r),
            ReplayJob::Lifetime(_, a) => a.observe(r),
        }
    }
}

/// The five weekday Phase-1 windows behind
/// [`TraceView::weekday_lifetime`] (24 h starting 9am, days 1–5, each
/// with a 24 h end margin).
fn weekday_configs() -> [LifetimeConfig; 5] {
    std::array::from_fn(|i| LifetimeConfig {
        phase1_start: (i as u64 + 1) * DAY + 9 * HOUR,
        phase1_len: DAY,
        phase2_len: DAY,
    })
}

impl ProductCaches {
    /// Fresh, empty caches reporting into a private registry.
    pub fn new() -> Self {
        ProductCaches::default()
    }

    /// Fresh, empty caches whose `query.*` instruments live in
    /// `registry`, so every view sharing it contributes to one export.
    pub fn with_registry(registry: &Registry) -> Self {
        ProductCaches {
            sorted: Mutex::default(),
            runs: Mutex::default(),
            lifetimes: Mutex::default(),
            weekday: OnceLock::new(),
            names: OnceLock::new(),
            coverage: Mutex::default(),
            sort_passes: AtomicU64::new(0),
            decode_passes: AtomicU64::new(0),
            metrics: QueryMetrics::register(registry),
        }
    }

    /// See [`TraceView::accesses`]. Each window is sorted exactly once;
    /// repeat calls are cache hits.
    pub fn accesses(&self, raw: &Arc<AccessMap>, window_ms: u64) -> Arc<AccessMap> {
        if window_ms == 0 {
            return Arc::clone(raw);
        }
        let mut cache = self.sorted.lock().expect("index lock");
        if let Some(m) = cache.get(&window_ms) {
            return Arc::clone(m);
        }
        let _span = span!(self.metrics.sort_micros);
        let mut sorted: AccessMap = raw.as_ref().clone();
        for list in sorted.values_mut() {
            // make_mut copies the shared arrival-order list once; the
            // sort then runs on the private copy.
            let list: &mut Vec<Access> = Arc::make_mut(list);
            reorder::sort_within_window(list, window_ms * 1000);
        }
        self.sort_passes.fetch_add(1, Ordering::Relaxed);
        self.metrics.sort_passes.inc();
        let arc = Arc::new(sorted);
        cache.insert(window_ms, Arc::clone(&arc));
        arc
    }

    /// See [`TraceView::runs`].
    pub fn runs(&self, raw: &Arc<AccessMap>, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>> {
        let key = (window_ms, opts);
        if let Some(r) = self.runs.lock().expect("index lock").get(&key) {
            return Arc::clone(r);
        }
        // Compute outside the lock: `accesses` takes its own lock.
        let computed = Arc::new(runs_for_trace(&self.accesses(raw, window_ms), opts));
        let mut cache = self.runs.lock().expect("index lock");
        Arc::clone(cache.entry(key).or_insert(computed))
    }

    /// See [`TraceView::prepare`]: computes every not-yet-cached product
    /// in `requests` with **one** fused replay over `source`.
    ///
    /// Requests already cached (or duplicated within `requests`) cost
    /// nothing; if everything is cached the replay is skipped entirely,
    /// so [`ProductCaches::decode_passes`] counts exactly the passes
    /// that touched the records.
    pub fn prepare(&self, source: &dyn RecordStream, requests: &[ReplayRequest]) {
        self.metrics.requests.add(requests.len() as u64);
        let mut jobs: Vec<ReplayJob> = Vec::new();
        let mut want_weekday = false;
        {
            let queue_lifetime = |jobs: &mut Vec<ReplayJob>, cfg: LifetimeConfig| {
                let cached = self
                    .lifetimes
                    .lock()
                    .expect("index lock")
                    .contains_key(&cfg);
                let queued = jobs
                    .iter()
                    .any(|j| matches!(j, ReplayJob::Lifetime(c, _) if *c == cfg));
                if !cached && !queued {
                    jobs.push(ReplayJob::Lifetime(cfg, BlockLifetimeAnalyzer::new(cfg)));
                }
            };
            for req in requests {
                match *req {
                    ReplayRequest::Names => {
                        let queued = jobs.iter().any(|j| matches!(j, ReplayJob::Names(_)));
                        if self.names.get().is_none() && !queued {
                            jobs.push(ReplayJob::Names(NamePredictionBuilder::default()));
                        }
                    }
                    ReplayRequest::Coverage(bucket) => {
                        let cached = self
                            .coverage
                            .lock()
                            .expect("index lock")
                            .contains_key(&bucket);
                        let queued = jobs
                            .iter()
                            .any(|j| matches!(j, ReplayJob::Coverage(b, _) if *b == bucket));
                        if !cached && !queued {
                            jobs.push(ReplayJob::Coverage(bucket, CoverageBuilder::new(bucket)));
                        }
                    }
                    ReplayRequest::Lifetime(cfg) => queue_lifetime(&mut jobs, cfg),
                    ReplayRequest::WeekdayLifetime => {
                        want_weekday = true;
                        if self.weekday.get().is_none() {
                            for cfg in weekday_configs() {
                                queue_lifetime(&mut jobs, cfg);
                            }
                        }
                    }
                }
            }
        }
        if !jobs.is_empty() {
            self.decode_passes.fetch_add(1, Ordering::Relaxed);
            self.metrics.replay_passes.inc();
            let _span = span!(self.metrics.replay_micros);
            // The fused pass: no locks held, one traversal, every
            // analyzer observes every record.
            let mut refs: Vec<&mut dyn RecordObserver> = jobs
                .iter_mut()
                .map(|j| j as &mut dyn RecordObserver)
                .collect();
            fan_out(source, &mut refs);
            for j in jobs {
                match j {
                    ReplayJob::Names(b) => {
                        let _ = self.names.set(b.finish());
                    }
                    ReplayJob::Coverage(bucket, b) => {
                        self.coverage
                            .lock()
                            .expect("index lock")
                            .entry(bucket)
                            .or_insert_with(|| Arc::new(b.finish()));
                    }
                    ReplayJob::Lifetime(cfg, a) => {
                        self.lifetimes
                            .lock()
                            .expect("index lock")
                            .entry(cfg)
                            .or_insert_with(|| Arc::new(a.finish()));
                    }
                }
            }
        }
        if want_weekday {
            // All five window reports are cached by now, so the merge
            // below replays nothing.
            self.weekday.get_or_init(|| {
                let mut merged = LifetimeReport::default();
                for cfg in weekday_configs() {
                    merged.merge(&self.lifetime(source, cfg));
                }
                Arc::new(merged)
            });
        }
    }

    /// See [`TraceView::lifetime`]; records come from `source`.
    pub fn lifetime(&self, source: &dyn RecordStream, cfg: LifetimeConfig) -> Arc<LifetimeReport> {
        if let Some(r) = self.lifetimes.lock().expect("index lock").get(&cfg) {
            return Arc::clone(r);
        }
        self.prepare(source, &[ReplayRequest::Lifetime(cfg)]);
        Arc::clone(
            self.lifetimes
                .lock()
                .expect("index lock")
                .get(&cfg)
                .expect("prepare computed this configuration"),
        )
    }

    /// See [`TraceView::weekday_lifetime`]: all five weekday windows
    /// are accumulated in one fused replay over `source` and merged.
    pub fn weekday_lifetime(&self, source: &dyn RecordStream) -> Arc<LifetimeReport> {
        self.prepare(source, &[ReplayRequest::WeekdayLifetime]);
        Arc::clone(self.weekday.get().expect("prepare computed the merge"))
    }

    /// See [`TraceView::names`]; records come from `source`.
    pub fn names(&self, source: &dyn RecordStream) -> &NamePredictionReport {
        if let Some(n) = self.names.get() {
            return n;
        }
        self.prepare(source, &[ReplayRequest::Names]);
        self.names.get().expect("prepare computed the report")
    }

    /// See [`TraceView::hierarchy_coverage`]; records come from
    /// `source`, one series cached per bucket width.
    pub fn coverage(
        &self,
        source: &dyn RecordStream,
        bucket_micros: u64,
    ) -> Arc<Vec<CoveragePoint>> {
        if let Some(c) = self
            .coverage
            .lock()
            .expect("index lock")
            .get(&bucket_micros)
        {
            return Arc::clone(c);
        }
        self.prepare(source, &[ReplayRequest::Coverage(bucket_micros)]);
        Arc::clone(
            self.coverage
                .lock()
                .expect("index lock")
                .get(&bucket_micros)
                .expect("prepare computed this bucket width"),
        )
    }

    /// How many reorder bucket+sort passes these caches have performed —
    /// one per distinct nonzero window ever requested.
    pub fn sort_passes(&self) -> u64 {
        self.sort_passes.load(Ordering::Relaxed)
    }

    /// How many full record-replay passes these caches have performed —
    /// at most one per [`ProductCaches::prepare`] batch that contained
    /// anything uncached.
    pub fn decode_passes(&self) -> u64 {
        self.decode_passes.load(Ordering::Relaxed)
    }
}

/// A build-once, query-many index over one trace (or one time window of
/// one trace), records resident in memory.
#[derive(Debug)]
pub struct TraceIndex {
    /// The full backing trace, time-sorted, shared across windows.
    records: Arc<Vec<TraceRecord>>,
    /// This view's half-open record range within `records`.
    lo: usize,
    hi: usize,
    /// The construction-pass products.
    base: IndexBase,
    /// The derived-product caches.
    caches: ProductCaches,
}

impl TraceIndex {
    /// Builds an index over a whole trace, sharding the construction
    /// pass across [`crate::parallel::threads`] workers (the result is
    /// bit-identical for any worker count). Records are time-sorted
    /// first if they are not already (generated and on-disk traces
    /// are).
    pub fn new(records: Vec<TraceRecord>) -> Self {
        Self::new_sharded(records, crate::parallel::threads())
    }

    /// [`TraceIndex::new`] with the construction pass sharded across up
    /// to `threads` worker threads: the record range splits into
    /// contiguous chunks, one [`PartialIndex`] per chunk built in
    /// parallel, merged in chunk order. Bit-identical to `new` for any
    /// thread count.
    pub fn new_sharded(mut records: Vec<TraceRecord>, threads: usize) -> Self {
        if !records.windows(2).all(|w| w[0].micros <= w[1].micros) {
            records.sort_by_key(|r| r.micros);
        }
        let n = records.len();
        Self::build(Arc::new(records), 0, n, threads)
    }

    /// The construction pass over one record range: one loop (per
    /// shard) feeds the summary counters, the hourly buckets, and the
    /// per-file access lists simultaneously.
    fn build(records: Arc<Vec<TraceRecord>>, lo: usize, hi: usize, threads: usize) -> Self {
        let view = &records[lo..hi];
        let threads = threads.clamp(1, crate::parallel::MAX_THREADS);
        let base = if threads == 1 || view.len() < 2 {
            PartialIndex::from_records(view).finish()
        } else {
            let chunk = view.len().div_ceil(threads);
            let shards: Vec<&[TraceRecord]> = view.chunks(chunk).collect();
            let parts = crate::parallel::run_sharded(shards.len(), threads, |i| {
                PartialIndex::from_records(shards[i])
            });
            PartialIndex::merge_ordered(parts)
        };
        TraceIndex {
            records,
            lo,
            hi,
            base,
            caches: ProductCaches::new(),
        }
    }

    /// An index over the records in `[start_micros, end_micros)`,
    /// sharing the backing storage with `self`. The view gets its own
    /// caches (its per-file streams differ from the parent's).
    pub fn time_window(&self, start_micros: u64, end_micros: u64) -> TraceIndex {
        let view = &self.records[self.lo..self.hi];
        let a = view.partition_point(|r| r.micros < start_micros);
        let b = view.partition_point(|r| r.micros < end_micros);
        Self::build(Arc::clone(&self.records), self.lo + a, self.lo + b, 1)
    }

    /// The records in this view, time-sorted.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records[self.lo..self.hi]
    }

    /// Number of records in this view.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Aggregate counters (Tables 1 and 2).
    pub fn summary(&self) -> &SummaryStats {
        &self.base.summary
    }

    /// Hourly buckets (Figure 4, Table 5).
    pub fn hourly(&self) -> &HourlySeries {
        &self.base.hourly
    }

    /// The §6.3 name-prediction report, computed on first use.
    pub fn names(&self) -> &NamePredictionReport {
        self.caches.names(self)
    }

    /// Per-file accesses corrected with a `window_ms` reorder window
    /// (§4.2). Window 0 returns the arrival-order lists. Each window is
    /// sorted exactly once per index; repeat calls are cache hits.
    pub fn accesses(&self, window_ms: u64) -> Arc<AccessMap> {
        self.caches.accesses(&self.base.raw, window_ms)
    }

    /// The run table for a reorder window and split/categorization
    /// options (Table 3, Figures 2 and 5), computed once per key.
    pub fn runs(&self, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>> {
        self.caches.runs(&self.base.raw, window_ms, opts)
    }

    /// The block lifetime report for one phase configuration (§5.2),
    /// computed once per configuration.
    pub fn lifetime(&self, cfg: LifetimeConfig) -> Arc<LifetimeReport> {
        self.caches.lifetime(self, cfg)
    }

    /// The paper's Table 4 / Figure 3 methodology: five weekday
    /// 24-hour windows starting 9am, each with a 24-hour end margin,
    /// merged — all five accumulated in one fused replay.
    pub fn weekday_lifetime(&self) -> Arc<LifetimeReport> {
        self.caches.weekday_lifetime(self)
    }

    /// §4.1.1 hierarchy-reconstruction coverage, computed once per
    /// bucket width and cached.
    pub fn hierarchy_coverage(&self, bucket_micros: u64) -> Arc<Vec<CoveragePoint>> {
        self.caches.coverage(self, bucket_micros)
    }

    /// Computes every not-yet-cached replay product in `requests` in one
    /// fused pass over this view's records (see
    /// [`ProductCaches::prepare`]).
    pub fn prepare(&self, requests: &[ReplayRequest]) {
        self.caches.prepare(self, requests);
    }

    /// How many full record-replay passes this index has performed for
    /// its replay-derived products. The reproduction suite asserts this
    /// stays at one — the fused pass — per view.
    pub fn decode_passes(&self) -> u64 {
        self.caches.decode_passes()
    }

    /// The Figure 1 sweep over this view's arrival-order accesses,
    /// parallelized across files (see
    /// [`reorder::swap_fraction_sweep`]).
    pub fn swap_sweep(&self, windows_ms: &[u64]) -> Vec<SwapPoint> {
        reorder::swap_fraction_sweep(&self.base.raw, windows_ms)
    }

    /// How many reorder bucket+sort passes this index has performed —
    /// one per distinct nonzero window ever requested. The reproduction
    /// suite asserts this stays at one per (trace, window).
    pub fn sort_passes(&self) -> u64 {
        self.caches.sort_passes()
    }
}

impl RecordStream for TraceIndex {
    fn for_each_record(&self, f: &mut dyn FnMut(&TraceRecord)) {
        for r in self.records() {
            f(r);
        }
    }
}

impl TraceView for TraceIndex {
    fn len(&self) -> usize {
        TraceIndex::len(self)
    }

    fn summary(&self) -> &SummaryStats {
        TraceIndex::summary(self)
    }

    fn hourly(&self) -> &HourlySeries {
        TraceIndex::hourly(self)
    }

    fn names(&self) -> &NamePredictionReport {
        TraceIndex::names(self)
    }

    fn accesses(&self, window_ms: u64) -> Arc<AccessMap> {
        TraceIndex::accesses(self, window_ms)
    }

    fn runs(&self, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>> {
        TraceIndex::runs(self, window_ms, opts)
    }

    fn lifetime(&self, cfg: LifetimeConfig) -> Arc<LifetimeReport> {
        TraceIndex::lifetime(self, cfg)
    }

    fn weekday_lifetime(&self) -> Arc<LifetimeReport> {
        TraceIndex::weekday_lifetime(self)
    }

    fn swap_sweep(&self, windows_ms: &[u64]) -> Vec<SwapPoint> {
        TraceIndex::swap_sweep(self, windows_ms)
    }

    fn time_window(&self, start_micros: u64, end_micros: u64) -> TraceIndex {
        TraceIndex::time_window(self, start_micros, end_micros)
    }

    fn sort_passes(&self) -> u64 {
        TraceIndex::sort_passes(self)
    }

    fn hierarchy_coverage(&self, bucket_micros: u64) -> Arc<Vec<CoveragePoint>> {
        TraceIndex::hierarchy_coverage(self, bucket_micros)
    }

    fn prepare(&self, requests: &[ReplayRequest]) {
        TraceIndex::prepare(self, requests)
    }

    fn decode_passes(&self) -> u64 {
        TraceIndex::decode_passes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Op;

    fn rec(micros: u64, op: Op, fh: u64, offset: u64, count: u32) -> TraceRecord {
        TraceRecord::new(micros, op, FileId(fh)).with_range(offset, count)
    }

    fn sample() -> Vec<TraceRecord> {
        let mut v = Vec::new();
        for i in 0..40u64 {
            v.push(rec(i * 1_000, Op::Read, i % 3, (i / 3) * 8192, 8192));
            if i % 4 == 0 {
                v.push(rec(i * 1_000 + 300, Op::Write, 7, i * 8192, 4096));
            }
            if i % 5 == 0 {
                v.push(TraceRecord::new(i * 1_000 + 500, Op::Getattr, FileId(9)));
            }
        }
        v
    }

    #[test]
    fn matches_legacy_single_shot_paths() {
        let records = sample();
        let idx = TraceIndex::new(records.clone());
        assert_eq!(idx.summary(), &SummaryStats::from_records(records.iter()));
        assert_eq!(idx.hourly(), &HourlySeries::from_records(records.iter()));
        let legacy = reorder::accesses_by_file(records.iter());
        assert_eq!(idx.accesses(0).as_ref(), &legacy);
        let mut sorted = legacy;
        for l in sorted.values_mut() {
            let l: &mut Vec<Access> = Arc::make_mut(l);
            reorder::sort_within_window(l, 10_000);
        }
        assert_eq!(idx.accesses(10).as_ref(), &sorted);
        assert_eq!(
            idx.runs(10, RunOptions::default()).as_ref(),
            &runs_for_trace(&sorted, RunOptions::default())
        );
    }

    #[test]
    fn caches_are_hit_not_rebuilt() {
        let idx = TraceIndex::new(sample());
        let a = idx.runs(10, RunOptions::default());
        let b = idx.runs(10, RunOptions::default());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(idx.sort_passes(), 1);
        let _ = idx.runs(10, RunOptions::raw());
        assert_eq!(idx.sort_passes(), 1, "raw opts reuse the sorted map");
        let _ = idx.runs(5, RunOptions::default());
        assert_eq!(idx.sort_passes(), 2, "a second window is a new pass");
    }

    #[test]
    fn window_zero_is_arrival_order_and_free() {
        let idx = TraceIndex::new(sample());
        let _ = idx.accesses(0);
        let _ = idx.runs(0, RunOptions::raw());
        assert_eq!(idx.sort_passes(), 0);
    }

    #[test]
    fn time_window_shares_storage_and_matches_slice() {
        let records = sample();
        let idx = TraceIndex::new(records.clone());
        let sub = idx.time_window(10_000, 20_000);
        let expect: Vec<&TraceRecord> = records
            .iter()
            .filter(|r| (10_000..20_000).contains(&r.micros))
            .collect();
        assert_eq!(sub.len(), expect.len());
        let legacy = SummaryStats::from_records(expect);
        assert_eq!(sub.summary(), &legacy);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let mut records = sample();
        records.reverse();
        let idx = TraceIndex::new(records);
        let r = idx.records();
        assert!(r.windows(2).all(|w| w[0].micros <= w[1].micros));
    }

    #[test]
    fn empty_trace() {
        let idx = TraceIndex::new(Vec::new());
        assert!(idx.is_empty());
        assert_eq!(idx.summary().total_ops, 0);
        assert!(idx.runs(10, RunOptions::default()).is_empty());
    }

    #[test]
    fn lifetime_cached_per_config_and_weekday_merges() {
        let idx = TraceIndex::new(sample());
        let cfg = LifetimeConfig {
            phase1_start: 0,
            phase1_len: 20_000,
            phase2_len: 20_000,
        };
        let a = idx.lifetime(cfg);
        let b = idx.lifetime(cfg);
        assert!(Arc::ptr_eq(&a, &b));
        let w1 = idx.weekday_lifetime();
        let w2 = idx.weekday_lifetime();
        assert!(Arc::ptr_eq(&w1, &w2));
    }

    #[test]
    fn partials_merge_to_whole_pass() {
        let records = sample();
        let whole = PartialIndex::from_records(&records).finish();
        for split in [0, 1, 7, records.len() / 2, records.len()] {
            let mut acc = PartialIndex::from_records(&records[..split]);
            acc.absorb(PartialIndex::from_records(&records[split..]));
            let merged = acc.finish();
            assert_eq!(merged.summary, whole.summary, "split={split}");
            assert_eq!(merged.hourly, whole.hourly, "split={split}");
            assert_eq!(merged.raw, whole.raw, "split={split}");
            assert_eq!(merged.len, whole.len, "split={split}");
        }
    }

    #[test]
    fn sharded_build_matches_serial() {
        let records = sample();
        let serial = TraceIndex::new(records.clone());
        for threads in [2, 3, 8, 64] {
            let sharded = TraceIndex::new_sharded(records.clone(), threads);
            assert_eq!(sharded.summary(), serial.summary(), "threads={threads}");
            assert_eq!(sharded.hourly(), serial.hourly(), "threads={threads}");
            assert_eq!(
                sharded.accesses(0).as_ref(),
                serial.accesses(0).as_ref(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn snapshot_base_matches_finish_and_keeps_accumulating() {
        let records = sample();
        let mut p = PartialIndex::new();
        for r in &records[..20] {
            p.observe(r);
        }
        let snap = p.snapshot_base();
        let head = PartialIndex::from_records(&records[..20]).finish();
        assert_eq!(snap.summary, head.summary);
        assert_eq!(snap.hourly, head.hourly);
        assert_eq!(snap.raw, head.raw);
        // The snapshot did not end accumulation.
        for r in &records[20..] {
            p.observe(r);
        }
        let whole = PartialIndex::from_records(&records).finish();
        let done = p.finish();
        assert_eq!(done.summary, whole.summary);
        assert_eq!(done.raw, whole.raw);
    }

    #[test]
    fn empty_partial_merges_cleanly() {
        let records = sample();
        let mut acc = PartialIndex::new();
        acc.absorb(PartialIndex::from_records(&records));
        acc.absorb(PartialIndex::new());
        let merged = acc.finish();
        let whole = PartialIndex::from_records(&records).finish();
        assert_eq!(merged.summary, whole.summary);
        assert_eq!(merged.hourly, whole.hourly);
    }

    #[test]
    fn trait_surface_matches_inherent() {
        fn generic_total<V: TraceView>(v: &V) -> u64 {
            let sub = v.time_window(0, 20_000);
            sub.summary().total_ops + TraceView::summary(v).total_ops
        }
        let idx = TraceIndex::new(sample());
        let direct = idx.time_window(0, 20_000).summary().total_ops + idx.summary().total_ops;
        assert_eq!(generic_total(&idx), direct);
    }

    #[test]
    fn hierarchy_coverage_streams_like_slice() {
        let records = sample();
        let idx = TraceIndex::new(records.clone());
        let streamed = TraceView::hierarchy_coverage(&idx, 10_000);
        let legacy = crate::hierarchy::coverage_over_time(records.iter(), 10_000);
        assert_eq!(streamed.as_ref(), &legacy);
    }

    /// Writes that churn blocks so the lifetime analyzers have work.
    fn churn_sample() -> Vec<TraceRecord> {
        let mut v = sample();
        for i in 0..30u64 {
            v.push(rec(i * DAY / 8, Op::Write, i % 4, (i % 2) * 8192, 8192));
        }
        v.sort_by_key(|r| r.micros);
        v
    }

    #[test]
    fn prepare_fuses_everything_into_one_pass() {
        let records = churn_sample();
        let idx = TraceIndex::new(records.clone());
        let cfg = LifetimeConfig {
            phase1_start: 0,
            phase1_len: 20_000,
            phase2_len: 20_000,
        };
        idx.prepare(&[
            ReplayRequest::Names,
            ReplayRequest::Coverage(10_000),
            ReplayRequest::Lifetime(cfg),
            ReplayRequest::WeekdayLifetime,
        ]);
        assert_eq!(idx.decode_passes(), 1, "one fused pass computed all");

        // Each product now equals its per-analysis (legacy) computation.
        assert_eq!(
            idx.names(),
            &NamePredictionReport::from_records(records.iter())
        );
        assert_eq!(
            idx.hierarchy_coverage(10_000).as_ref(),
            &crate::hierarchy::coverage_over_time(records.iter(), 10_000)
        );
        assert_eq!(
            idx.lifetime(cfg).as_ref(),
            &crate::lifetime::analyze(records.iter(), cfg)
        );
        let mut merged = LifetimeReport::default();
        for c in weekday_configs() {
            merged.merge(&crate::lifetime::analyze(records.iter(), c));
        }
        assert_eq!(idx.weekday_lifetime().as_ref(), &merged);
        // ... and serving them was pure cache hits.
        assert_eq!(idx.decode_passes(), 1);
    }

    #[test]
    fn weekday_lifetime_is_one_fused_pass() {
        let idx = TraceIndex::new(churn_sample());
        let _ = idx.weekday_lifetime();
        assert_eq!(idx.decode_passes(), 1, "five windows, one replay");
        // The per-window reports were cached by the fused pass too.
        for c in weekday_configs() {
            let _ = idx.lifetime(c);
        }
        assert_eq!(idx.decode_passes(), 1);
    }

    #[test]
    fn unfused_calls_cost_a_pass_each() {
        let idx = TraceIndex::new(churn_sample());
        let _ = idx.names();
        let _ = idx.hierarchy_coverage(10_000);
        let cfg = LifetimeConfig {
            phase1_start: 0,
            phase1_len: 20_000,
            phase2_len: 20_000,
        };
        let _ = idx.lifetime(cfg);
        assert_eq!(idx.decode_passes(), 3, "the old shape: one pass each");
        // Repeats stay cached.
        let _ = idx.names();
        let _ = idx.hierarchy_coverage(10_000);
        let _ = idx.lifetime(cfg);
        assert_eq!(idx.decode_passes(), 3);
    }

    #[test]
    fn prepare_skips_cached_and_duplicate_requests() {
        let idx = TraceIndex::new(churn_sample());
        idx.prepare(&[ReplayRequest::Names, ReplayRequest::Names]);
        assert_eq!(idx.decode_passes(), 1);
        idx.prepare(&[ReplayRequest::Names]);
        assert_eq!(idx.decode_passes(), 1, "fully cached batch replays nothing");
        idx.prepare(&[]);
        assert_eq!(idx.decode_passes(), 1);
    }

    #[test]
    fn cow_snapshot_shares_unchanged_lists_and_copies_touched_ones() {
        let mut p = PartialIndex::new();
        p.observe(&rec(0, Op::Read, 1, 0, 8192));
        p.observe(&rec(10, Op::Read, 2, 0, 8192));
        let snap1 = p.snapshot_base();
        // Touch only file 1; file 2's list must stay shared.
        p.observe(&rec(20, Op::Write, 1, 8192, 4096));
        let snap2 = p.snapshot_base();
        assert!(Arc::ptr_eq(
            &snap1.raw[&FileId(2)],
            &snap2.raw[&FileId(2)],
            // ^ untouched list shared between snapshots
        ));
        assert!(!Arc::ptr_eq(&snap1.raw[&FileId(1)], &snap2.raw[&FileId(1)]));
        assert_eq!(snap1.raw[&FileId(1)].len(), 1);
        assert_eq!(snap2.raw[&FileId(1)].len(), 2);
    }

    /// The sharded-ingest contract: partials fed disjoint, interleaved
    /// (and time-overlapping) slices of one stream, each access stamped
    /// with its global arrival seq, merge to exactly the single-pass
    /// products — including equal-microsecond ties on a shared file
    /// split across shards.
    #[test]
    fn seq_merge_matches_single_pass_over_any_sharding() {
        let mut records = sample();
        // Equal-micros ties on one file, arriving from different shards.
        for i in 0..6u64 {
            records.push(rec(77_777, Op::Write, 50, i * 4096, 4096));
        }
        records.sort_by_key(|r| r.micros);
        let whole = PartialIndex::from_records(&records).finish();
        for shards in [1usize, 2, 3, 5] {
            let mut parts: Vec<PartialIndex> = (0..shards)
                .map(|_| PartialIndex::with_seq_tracking())
                .collect();
            for (seq, r) in records.iter().enumerate() {
                // Deterministic but time-uncorrelated routing.
                let shard = (r.fh.0 as usize ^ (seq / 7)) % shards;
                parts[shard].observe_seq(r, seq as u64);
            }
            let single_source: Vec<FileId> = parts
                .iter()
                .flat_map(|p| p.raw.keys().copied())
                .collect::<std::collections::HashSet<_>>()
                .into_iter()
                .filter(|fh| parts.iter().filter(|p| p.raw.contains_key(fh)).count() == 1)
                .collect();
            let originals: HashMap<FileId, AccessList> = parts
                .iter()
                .flat_map(|p| p.raw.iter().map(|(k, v)| (*k, Arc::clone(v))))
                .filter(|(k, _)| single_source.contains(k))
                .collect();
            let merged = PartialIndex::merge(parts);
            assert_eq!(merged.summary, whole.summary, "shards={shards}");
            assert_eq!(merged.hourly, whole.hourly, "shards={shards}");
            assert_eq!(merged.raw, whole.raw, "shards={shards}");
            assert_eq!(merged.len, whole.len, "shards={shards}");
            // Files observed through exactly one shard share that
            // shard's list Arc instead of being re-merged.
            for (fh, list) in &originals {
                assert!(
                    Arc::ptr_eq(list, &merged.raw[fh]),
                    "single-source file {fh:?} should share its Arc"
                );
            }
        }
    }

    #[test]
    fn seq_tracked_absorb_keeps_alignment() {
        let records = sample();
        let mut a = PartialIndex::with_seq_tracking();
        let mut b = PartialIndex::with_seq_tracking();
        for (seq, r) in records.iter().enumerate() {
            if seq < records.len() / 2 {
                a.observe_seq(r, seq as u64);
            } else {
                b.observe_seq(r, seq as u64);
            }
        }
        a.absorb(b);
        let merged = PartialIndex::merge([a]);
        let whole = PartialIndex::from_records(&records).finish();
        assert_eq!(merged.raw, whole.raw);
        assert_eq!(merged.summary, whole.summary);
    }

    #[test]
    fn fan_out_feeds_every_observer() {
        let records = churn_sample();
        let idx = TraceIndex::new(records.clone());
        let mut names = NamePredictionBuilder::default();
        let mut part = PartialIndex::new();
        fan_out(&idx, &mut [&mut names, &mut part]);
        assert_eq!(part.len(), records.len());
        assert_eq!(
            names.finish(),
            NamePredictionReport::from_records(records.iter())
        );
    }
}
