//! The reorder window (§4.2, Figure 1).
//!
//! NFS calls reach the server in a different order than the application
//! issued them because client-side `nfsiod` processes race each other
//! (§4.1.5). Naively treating the arrival order as the access pattern
//! makes workloads look far more random than they are. The paper's fix:
//! "we partially sort requests in ascending order within a small temporal
//! window" — look ahead a few milliseconds and swap nearby requests that
//! are out of offset order.
//!
//! The window must be as small as possible: "with an infinite sorting
//! window, any workload that visits every block of a file in any order
//! will appear sequential." Figure 1 plots the fraction of accesses
//! swapped against the window size; the knee picks the window (5 ms for
//! EECS, 10 ms for CAMPUS).

use crate::index::{AccessList, AccessMap};
use crate::record::TraceRecord;
use std::sync::Arc;

/// One data access (READ or WRITE) to a file, the unit of run analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Capture time, microseconds.
    pub micros: u64,
    /// Byte offset.
    pub offset: u64,
    /// Bytes transferred.
    pub count: u32,
    /// Whether this is a write.
    pub is_write: bool,
    /// Whether the reply reported end-of-file (reads only).
    pub eof: bool,
    /// File size after the access, from reply attributes (0 if unknown).
    pub file_size: u64,
}

impl Access {
    /// Extracts an access from a READ/WRITE record; `None` otherwise.
    pub fn from_record(r: &TraceRecord) -> Option<Self> {
        if !(r.op.is_read() || r.op.is_write()) {
            return None;
        }
        Some(Access {
            micros: r.micros,
            offset: r.offset,
            count: r.ret_count.max(r.count),
            is_write: r.op.is_write(),
            eof: r.eof,
            file_size: r.post_size.unwrap_or(0),
        })
    }
}

/// Groups a record stream's data accesses by file, preserving order.
pub fn accesses_by_file<'a, I>(records: I) -> AccessMap
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut map = AccessMap::new();
    for r in records {
        if let Some(a) = Access::from_record(r) {
            Arc::make_mut(map.entry(r.fh).or_default()).push(a);
        }
    }
    map
}

/// Partially sorts one file's accesses in ascending offset order within a
/// temporal window of `window_micros`, in place. Returns the number of
/// accesses that moved.
///
/// For each position, the algorithm looks ahead at accesses arriving
/// within the window and swaps the smallest-offset one into place if the
/// current access is out of order — the paper's described behaviour. A
/// zero window leaves the list untouched.
pub fn sort_within_window(accesses: &mut [Access], window_micros: u64) -> u64 {
    if window_micros == 0 || accesses.len() < 2 {
        return 0;
    }
    let mut swapped = vec![false; accesses.len()];
    for i in 0..accesses.len() - 1 {
        let horizon = accesses[i].micros.saturating_add(window_micros);
        let mut best = i;
        let mut j = i + 1;
        while j < accesses.len() && accesses[j].micros <= horizon {
            if accesses[j].offset < accesses[best].offset {
                best = j;
            }
            j += 1;
        }
        if best != i {
            accesses.swap(i, best);
            swapped[i] = true;
            swapped[best] = true;
        }
    }
    swapped.iter().filter(|&&s| s).count() as u64
}

/// A point on the Figure 1 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapPoint {
    /// Window size in milliseconds.
    pub window_ms: u64,
    /// Fraction of accesses that were swapped (0..=1).
    pub swapped_fraction: f64,
}

/// Measures the swapped-access fraction across a sweep of window sizes
/// (Figure 1). Each window size re-sorts pristine copies of the per-file
/// access lists.
///
/// The (file × window) grid is embarrassingly parallel; files are
/// sharded across [`crate::parallel::threads`] workers and the per-shard
/// swap counts summed, so the result is identical for any worker count.
pub fn swap_fraction_sweep(per_file: &AccessMap, windows_ms: &[u64]) -> Vec<SwapPoint> {
    swap_fraction_sweep_with_threads(per_file, windows_ms, crate::parallel::threads())
}

/// [`swap_fraction_sweep`] with an explicit worker count (for the
/// determinism tests and callers that manage their own parallelism).
pub fn swap_fraction_sweep_with_threads(
    per_file: &AccessMap,
    windows_ms: &[u64],
    threads: usize,
) -> Vec<SwapPoint> {
    let lists: Vec<&AccessList> = per_file.values().collect();
    let total: u64 = lists.iter().map(|v| v.len() as u64).sum();
    let shards = threads.clamp(1, lists.len().max(1));
    let chunk = lists.len().div_ceil(shards).max(1);
    // Each shard returns one swap count per window over its files.
    let partials = crate::parallel::run_sharded(shards, shards, |ci| {
        let mut counts = vec![0u64; windows_ms.len()];
        let mut scratch: Vec<Access> = Vec::new();
        for list in &lists[(ci * chunk).min(lists.len())..((ci + 1) * chunk).min(lists.len())] {
            for (wi, &w) in windows_ms.iter().enumerate() {
                if w == 0 {
                    continue; // a zero window swaps nothing
                }
                scratch.clear();
                scratch.extend_from_slice(list);
                counts[wi] += sort_within_window(&mut scratch, w * 1000);
            }
        }
        counts
    });
    windows_ms
        .iter()
        .enumerate()
        .map(|(wi, &w)| {
            let swapped: u64 = partials.iter().map(|p| p[wi]).sum();
            SwapPoint {
                window_ms: w,
                swapped_fraction: if total == 0 {
                    0.0
                } else {
                    swapped as f64 / total as f64
                },
            }
        })
        .collect()
}

/// Picks the knee of a Figure 1 curve: the smallest window after which
/// growing the window further yields diminishing gains (below
/// `gain_threshold` additional swapped fraction per step).
pub fn pick_knee(points: &[SwapPoint], gain_threshold: f64) -> Option<u64> {
    for pair in points.windows(2) {
        let gain = pair[1].swapped_fraction - pair[0].swapped_fraction;
        if gain < gain_threshold {
            return Some(pair[0].window_ms);
        }
    }
    points.last().map(|p| p.window_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(micros: u64, offset: u64) -> Access {
        Access {
            micros,
            offset,
            count: 8192,
            is_write: false,
            eof: false,
            file_size: 0,
        }
    }

    #[test]
    fn already_sorted_swaps_nothing() {
        let mut v = vec![acc(0, 0), acc(100, 8192), acc(200, 16384)];
        assert_eq!(sort_within_window(&mut v, 5_000), 0);
        assert_eq!(v[0].offset, 0);
    }

    #[test]
    fn adjacent_inversion_fixed() {
        let mut v = vec![acc(0, 8192), acc(100, 0), acc(200, 16384)];
        let swapped = sort_within_window(&mut v, 5_000);
        assert_eq!(swapped, 2);
        let offsets: Vec<u64> = v.iter().map(|a| a.offset).collect();
        assert_eq!(offsets, vec![0, 8192, 16384]);
    }

    #[test]
    fn inversion_outside_window_untouched() {
        // The out-of-order access arrives 50 ms later: beyond a 5 ms
        // window, so it must NOT be pulled forward (that would mask true
        // randomness).
        let mut v = vec![acc(0, 8192), acc(50_000, 0)];
        assert_eq!(sort_within_window(&mut v, 5_000), 0);
        assert_eq!(v[0].offset, 8192);
    }

    #[test]
    fn zero_window_is_identity() {
        let mut v = vec![acc(0, 99), acc(1, 0)];
        assert_eq!(sort_within_window(&mut v, 0), 0);
        assert_eq!(v[0].offset, 99);
    }

    #[test]
    fn scrambled_burst_fully_sorted() {
        // Five accesses within 1 ms, in scrambled order.
        let mut v = vec![
            acc(0, 16384),
            acc(200, 0),
            acc(400, 32768),
            acc(600, 8192),
            acc(800, 24576),
        ];
        sort_within_window(&mut v, 5_000);
        let offsets: Vec<u64> = v.iter().map(|a| a.offset).collect();
        assert_eq!(offsets, vec![0, 8192, 16384, 24576, 32768]);
    }

    use crate::record::FileId;

    #[test]
    fn sweep_is_monotonic_and_knees() {
        let mut per_file = AccessMap::new();
        // Sequential run with nearby swaps at 2 ms scale.
        let mut list = Vec::new();
        for i in 0..100u64 {
            let off = if i % 10 == 3 {
                (i + 1) * 8192
            } else if i % 10 == 4 {
                (i - 1) * 8192
            } else {
                i * 8192
            };
            list.push(acc(i * 2_000, off));
        }
        per_file.insert(FileId(1), Arc::new(list));
        let pts = swap_fraction_sweep(&per_file, &[0, 1, 2, 5, 10, 20, 50]);
        assert_eq!(pts[0].swapped_fraction, 0.0);
        for w in pts.windows(2) {
            assert!(w[1].swapped_fraction >= w[0].swapped_fraction - 1e-12);
        }
        let knee = pick_knee(&pts, 0.005).unwrap();
        assert!(knee <= 20, "knee = {knee}");
    }

    #[test]
    fn sweep_parallel_matches_serial() {
        let mut per_file = AccessMap::new();
        for f in 0..17u64 {
            let list: Vec<Access> = (0..60u64)
                .map(|i| acc(i * 1500, ((i * 7 + f) % 60) * 8192))
                .collect();
            per_file.insert(FileId(f), Arc::new(list));
        }
        let windows = [0u64, 1, 2, 5, 10, 20];
        let serial = swap_fraction_sweep_with_threads(&per_file, &windows, 1);
        for t in [2, 3, 8] {
            assert_eq!(
                swap_fraction_sweep_with_threads(&per_file, &windows, t),
                serial,
                "threads={t}"
            );
        }
    }

    #[test]
    fn access_extraction_ignores_metadata() {
        use crate::record::{FileId, Op, TraceRecord};
        let r = TraceRecord::new(0, Op::Getattr, FileId(1));
        assert!(Access::from_record(&r).is_none());
        let r = TraceRecord::new(0, Op::Read, FileId(1)).with_range(4096, 4096);
        let a = Access::from_record(&r).unwrap();
        assert_eq!(a.offset, 4096);
        assert!(!a.is_write);
    }
}
