//! Property tests on the analysis core's invariants.

use nfstrace_core::record::{FileId, Op, TraceRecord};
use nfstrace_core::reorder::{sort_within_window, Access};
use nfstrace_core::runs::{split_runs, RunOptions, RunPattern, BLOCK};
use nfstrace_core::seqmetric::sequentiality_metric;
use nfstrace_core::text;
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = Access> {
    (
        0u64..10_000_000,
        0u64..200,
        1u32..65536,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(micros, block, count, is_write, eof)| Access {
            micros,
            offset: block * BLOCK,
            count,
            is_write,
            eof,
            file_size: 0,
        })
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..1_000_000_000,
        0usize..Op::ALL.len(),
        0u64..1000,
        0u64..(1 << 30),
        0u32..65536,
        proptest::option::of("[a-zA-Z0-9._#~ %=-]{1,32}"),
        any::<bool>(),
        proptest::option::of(0u64..(1 << 31)),
    )
        .prop_map(|(micros, op_idx, fh, offset, count, name, eof, post)| {
            let mut r = TraceRecord::new(micros, Op::ALL[op_idx], FileId(fh));
            r.offset = offset;
            r.count = count;
            r.ret_count = count / 2;
            r.name = name;
            r.eof = eof;
            r.post_size = post;
            r.uid = (fh % 97) as u32;
            r.xid = fh as u32;
            r
        })
}

proptest! {
    /// The reorder sort never loses or duplicates accesses.
    #[test]
    fn reorder_sort_is_a_permutation(
        mut accesses in proptest::collection::vec(arb_access(), 0..200),
        window_ms in 0u64..50,
    ) {
        accesses.sort_by_key(|a| a.micros);
        let mut sorted = accesses.clone();
        sort_within_window(&mut sorted, window_ms * 1000);
        // Same multiset of (offset, count) pairs.
        let key = |a: &Access| (a.offset, a.count, a.is_write);
        let mut a: Vec<_> = accesses.iter().map(key).collect();
        let mut b: Vec<_> = sorted.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Runs partition the access list: every access lands in exactly one
    /// run, in order.
    #[test]
    fn runs_partition_accesses(
        mut accesses in proptest::collection::vec(arb_access(), 0..200),
        small_jumps in any::<bool>(),
    ) {
        accesses.sort_by_key(|a| a.micros);
        let opts = if small_jumps { RunOptions::default() } else { RunOptions::raw() };
        let runs = split_runs(FileId(1), &accesses, opts);
        let total: usize = runs.iter().map(|r| r.accesses).sum();
        prop_assert_eq!(total, accesses.len());
        // Byte totals are conserved.
        let run_bytes: u64 = runs.iter().map(|r| r.bytes).sum();
        let access_bytes: u64 = accesses.iter().map(|a| u64::from(a.count)).sum();
        prop_assert_eq!(run_bytes, access_bytes);
        let rejoined: Vec<Access> = runs.iter().flat_map(|r| r.items.clone()).collect();
        prop_assert_eq!(rejoined, accesses);
    }

    /// A strictly consecutive synthetic run is never classified random,
    /// and its sequentiality metric is 1.
    #[test]
    fn consecutive_runs_are_sequential(
        start_block in 0u64..100,
        len in 1usize..50,
    ) {
        let accesses: Vec<Access> = (0..len)
            .map(|i| Access {
                micros: i as u64 * 1000,
                offset: (start_block + i as u64) * BLOCK,
                count: BLOCK as u32,
                is_write: false,
                eof: false,
                file_size: 0,
            })
            .collect();
        let runs = split_runs(FileId(1), &accesses, RunOptions::raw());
        prop_assert_eq!(runs.len(), 1);
        prop_assert_ne!(runs[0].pattern, RunPattern::Random);
        prop_assert_eq!(sequentiality_metric(&runs[0].items, 1), 1.0);
    }

    /// The sequentiality metric is always within [0, 1] and k=10 never
    /// scores below k=1.
    #[test]
    fn metric_bounds_and_monotonicity(
        accesses in proptest::collection::vec(arb_access(), 1..100),
    ) {
        let strict = sequentiality_metric(&accesses, 1);
        let loose = sequentiality_metric(&accesses, 10);
        prop_assert!((0.0..=1.0).contains(&strict));
        prop_assert!((0.0..=1.0).contains(&loose));
        prop_assert!(loose >= strict - 1e-12, "loose {loose} < strict {strict}");
    }

    /// The one-pass index is indistinguishable from the legacy
    /// slice-based pipeline: identical summaries, per-file access
    /// streams, and run tables for any record stream and window.
    #[test]
    fn index_matches_legacy_slice_path(
        mut records in proptest::collection::vec(arb_record(), 0..200),
        window_ms in 0u64..20,
        small_jumps in any::<bool>(),
    ) {
        use nfstrace_core::index::TraceIndex;
        use nfstrace_core::reorder::accesses_by_file;
        use nfstrace_core::runs::runs_for_trace;
        use nfstrace_core::summary::SummaryStats;

        records.sort_by_key(|r| r.micros);
        let idx = TraceIndex::new(records.clone());
        prop_assert_eq!(idx.summary(), &SummaryStats::from_records(records.iter()));

        let mut per_file = accesses_by_file(records.iter());
        for list in per_file.values_mut() {
            let list: &mut Vec<_> = std::sync::Arc::make_mut(list);
            sort_within_window(list, window_ms * 1000);
        }
        prop_assert_eq!(idx.accesses(window_ms).as_ref(), &per_file);

        let opts = if small_jumps { RunOptions::default() } else { RunOptions::raw() };
        let legacy = runs_for_trace(&per_file, opts);
        prop_assert_eq!(idx.runs(window_ms, opts).as_ref(), &legacy);
        // And the cache never sorted more than this one window.
        prop_assert!(idx.sort_passes() <= 1);
    }

    /// Every record the generator can produce survives the text format.
    #[test]
    fn text_format_roundtrip(record in arb_record()) {
        let line = text::format_record(&record);
        let parsed = text::parse_record(&line, 1).unwrap();
        prop_assert_eq!(parsed, record);
    }

    /// The text parser never panics on arbitrary input.
    #[test]
    fn text_parser_never_panics(line in "\\PC{0,200}") {
        let _ = text::parse_record(&line, 1);
    }
}
