//! The full loop over real sockets: generate → serve → replay →
//! capture → ingest, asserting the on-disk store reproduces the
//! original trace record for record — under concurrency, forced
//! retransmission, and trace-timestamp pacing.

use nfstrace_core::index::RecordStream;
use nfstrace_core::record::TraceRecord;
use nfstrace_core::time::HOUR;
use nfstrace_serve::{serve_roundtrip, Pacing, ReplayOptions, ReplayPlan};
use nfstrace_store::StoreIndex;
use nfstrace_telemetry::Registry;
use nfstrace_workload::{CampusConfig, CampusWorkload};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nfstrace-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn campus(users: usize, hours: u64) -> Vec<TraceRecord> {
    CampusWorkload::new(CampusConfig {
        users,
        duration_micros: hours * HOUR,
        seed: 42,
        ..CampusConfig::default()
    })
    .generate_with_threads(1)
}

fn expected(records: &[TraceRecord]) -> Vec<TraceRecord> {
    records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.vers = 3;
            r
        })
        .collect()
}

fn stored_records(dir: &std::path::Path) -> Vec<TraceRecord> {
    let index = StoreIndex::open_dir(dir).expect("open ingested store");
    let mut out = Vec::new();
    index.for_each_record(&mut |r| out.push(r.clone()));
    out
}

#[test]
fn served_and_captured_store_equals_the_trace() {
    let records = campus(4, 8);
    assert!(records.len() > 200);
    let plan = ReplayPlan::from_records(&records);
    let registry = Registry::new();
    let dir = tmpdir("e2e");

    let outcome =
        serve_roundtrip(&plan, &ReplayOptions::default(), &registry, &dir).expect("roundtrip");
    assert_eq!(outcome.unplanned_calls, 0, "every call was planned");
    assert_eq!(outcome.replay.retransmits, 0, "loopback needs no retries");
    assert_eq!(outcome.replay.calls_sent, records.len() as u64);
    assert_eq!(outcome.summary.total_records, records.len() as u64);
    assert_eq!(outcome.mirror.dropped, 0, "lossless mirror");
    let stats = outcome.sniffer.expect("sniffer stats after exhaustion");
    assert_eq!(stats.calls, records.len() as u64);
    assert_eq!(stats.orphan_replies, 0);

    assert_eq!(
        registry.counter("serve.calls").value(),
        records.len() as u64
    );
    assert_eq!(
        registry.counter("replay.calls_sent").value(),
        records.len() as u64
    );
    assert_eq!(registry.counter("replay.retransmits").value(), 0);

    assert_eq!(stored_records(&dir), expected(&records));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn forced_retransmissions_never_duplicate_records() {
    let records = campus(4, 6);
    assert!(records.len() > 100);
    let plan = ReplayPlan::from_records(&records);
    let registry = Registry::new();
    let dir = tmpdir("retrans");

    let options = ReplayOptions {
        connections: 3,
        forced_retransmit_every: Some(5),
        ..ReplayOptions::default()
    };
    let outcome = serve_roundtrip(&plan, &options, &registry, &dir).expect("roundtrip");
    assert!(
        outcome.replay.retransmits > 0,
        "the forcing hook must have fired"
    );
    assert_eq!(outcome.unplanned_calls, 0, "the DRC absorbed every dup");
    // Duplicate replies out of the DRC surface as sniffer orphans, not
    // as extra records.
    let stats = outcome.sniffer.expect("sniffer stats");
    assert!(stats.orphan_replies > 0, "DRC duplicates reach the tap");
    assert_eq!(stored_records(&dir), expected(&records));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timescale_pacing_preserves_the_trace() {
    let records = campus(4, 6);
    assert!(!records.is_empty());
    let plan = ReplayPlan::from_records(&records);
    let registry = Registry::new();
    let dir = tmpdir("paced");

    // Six trace-hours in well under a wall-second, but through the
    // pacing arm rather than the as-fast-as-possible one.
    let options = ReplayOptions {
        connections: 2,
        pacing: Pacing::Timescale {
            speedup: 50_000_000.0,
        },
        ..ReplayOptions::default()
    };
    let outcome = serve_roundtrip(&plan, &options, &registry, &dir).expect("roundtrip");
    assert_eq!(outcome.replay.retransmits, 0);
    assert_eq!(stored_records(&dir), expected(&records));
    std::fs::remove_dir_all(&dir).ok();
}
