//! Property: for an arbitrary generated trace, replayed at an
//! arbitrary pacing over an arbitrary number of connections — with or
//! without forced retransmissions — the captured-and-ingested store
//! holds byte-identical records to a store written directly from the
//! trace, and retransmissions never duplicate a record.

use nfstrace_core::index::RecordStream;
use nfstrace_core::record::TraceRecord;
use nfstrace_core::time::HOUR;
use nfstrace_serve::{serve_roundtrip, Pacing, ReplayOptions, ReplayPlan};
use nfstrace_store::{StoreConfig, StoreIndex, StoreWriter};
use nfstrace_telemetry::Registry;
use nfstrace_workload::{CampusConfig, CampusWorkload};
use proptest::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "nfstrace-serve-prop-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    // Each case runs a real server and a live ingest; the sampled
    // lattice covers connection counts, window sizes, both pacing
    // arms, and the forced-retransmission hook.
    #[test]
    fn replayed_store_equals_directly_written_store(
        users in 2usize..5,
        hours in 6u64..12,
        seed in 0u64..1_000,
        connections in 1usize..5,
        window_pick in 0usize..3,
        pacing_pick in 0usize..3,
        speedup in 10_000_000.0f64..100_000_000.0,
        forced_pick in 0usize..2,
    ) {
        let window = [1usize, 8, 64][window_pick];
        let pacing = if pacing_pick == 0 {
            Pacing::Afap
        } else {
            Pacing::Timescale { speedup }
        };
        let forced = [None, Some(7usize)][forced_pick];
        let records = CampusWorkload::new(CampusConfig {
            users,
            duration_micros: hours * HOUR,
            seed,
            ..CampusConfig::default()
        })
        .generate_with_threads(1);
        if records.is_empty() {
            // A quiet seed in the early hours; nothing to replay.
            return ::std::result::Result::Ok(());
        }
        // Wire replay re-tags everything v3 (see reverse module docs).
        let expected: Vec<TraceRecord> = records
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.vers = 3;
                r
            })
            .collect();

        // Oracle: the store the batch path writes for this trace.
        let oracle_dir = tmpdir("oracle");
        std::fs::create_dir_all(&oracle_dir).unwrap();
        let mut w =
            StoreWriter::create(oracle_dir.join("trace.nfstore"), StoreConfig::default()).unwrap();
        for r in &expected {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        let mut oracle = Vec::new();
        StoreIndex::open(oracle_dir.join("trace.nfstore"))
            .unwrap()
            .for_each_record(&mut |r| oracle.push(r.clone()));

        // The loop under test.
        let plan = ReplayPlan::from_records(&records);
        let options = ReplayOptions {
            connections,
            window,
            pacing,
            forced_retransmit_every: forced,
            ..ReplayOptions::default()
        };
        let dir = tmpdir("replay");
        let registry = Registry::new();
        let outcome = serve_roundtrip(&plan, &options, &registry, &dir).unwrap();

        let mut replayed = Vec::new();
        StoreIndex::open_dir(&dir)
            .unwrap()
            .for_each_record(&mut |r| replayed.push(r.clone()));

        prop_assert_eq!(outcome.unplanned_calls, 0);
        if forced.is_some() {
            prop_assert!(outcome.replay.retransmits > 0);
        } else {
            prop_assert_eq!(outcome.replay.retransmits, 0);
        }
        // Retransmissions must not duplicate records, and the captured
        // store must be byte-identical to the directly written one.
        prop_assert_eq!(replayed.len(), records.len());
        prop_assert_eq!(replayed, oracle);

        std::fs::remove_dir_all(&oracle_dir).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}
