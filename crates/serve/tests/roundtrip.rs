//! The reverse lemma, end to end but in memory: every generated trace
//! record, reconstructed into wire messages ([`nfstrace_serve::reverse`]),
//! framed by the tap ([`nfstrace_serve::tap_to_packets`]), and sniffed
//! back ([`nfstrace_sniffer::Sniffer`]), reproduces the original
//! record — for both workload models, v2-tagged clients included (the
//! one normalized field is `vers`; see the `reverse` module docs).

use nfstrace_core::record::TraceRecord;
use nfstrace_core::time::{DAY, HOUR};
use nfstrace_serve::{tap_to_packets, ReplayPlan, TapEvent};
use nfstrace_sniffer::Sniffer;
use nfstrace_workload::{CampusConfig, CampusWorkload, EecsConfig, EecsWorkload};

/// Expands a plan into the tap a loss-free, retransmission-free replay
/// would record: call then reply, per record, in trace order.
fn tap_of_plan(plan: &ReplayPlan) -> Vec<TapEvent> {
    let mut tap = Vec::new();
    for c in &plan.calls {
        tap.push(TapEvent {
            idx: c.idx,
            dir: 0,
            micros: c.micros,
            client_ip: c.client_ip,
            server_ip: c.server_ip,
            bytes: c.call_bytes.clone(),
        });
        if let Some(reply) = &c.reply_bytes {
            tap.push(TapEvent {
                idx: c.idx,
                dir: 1,
                micros: c.reply_micros,
                client_ip: c.client_ip,
                server_ip: c.server_ip,
                bytes: reply.clone(),
            });
        }
    }
    tap
}

/// Wire replay normalizes the protocol tag: every record goes out as
/// v3 (the canonical flattening *is* the v3 flattening), so v2-tagged
/// records come back tagged 3.
fn wire_normalized(records: &[TraceRecord]) -> Vec<TraceRecord> {
    records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.vers = 3;
            r
        })
        .collect()
}

fn assert_reverse_lemma(records: Vec<TraceRecord>) {
    let plan = ReplayPlan::from_records(&records);
    let packets = tap_to_packets(&tap_of_plan(&plan));
    let mut sniffer = Sniffer::new();
    for p in &packets {
        sniffer.observe(p);
    }
    let (sniffed, stats) = sniffer.finish();
    assert_eq!(stats.calls, records.len() as u64);
    assert_eq!(stats.orphan_replies, 0, "every reply has its call");
    assert_eq!(stats.decode_errors, 0, "reconstructed RPC must decode");
    assert_eq!(sniffed, wire_normalized(&records));
}

#[test]
fn campus_trace_survives_the_wire_roundtrip() {
    let records = CampusWorkload::new(CampusConfig {
        users: 4,
        duration_micros: DAY,
        seed: 42,
        ..CampusConfig::default()
    })
    .generate_with_threads(1);
    assert!(records.len() > 1_000, "campus day too small to be a test");
    assert_reverse_lemma(records);
}

#[test]
fn eecs_trace_with_v2_clients_survives_the_wire_roundtrip() {
    let records = EecsWorkload::new(EecsConfig {
        users: 4,
        duration_micros: 6 * HOUR,
        seed: 1789,
        ..EecsConfig::default()
    })
    .generate_with_threads(1);
    assert!(
        records.iter().any(|r| r.vers == 2),
        "the point of this test is the v2-tagged share"
    );
    assert_reverse_lemma(records);
}
