//! Trace records back to wire messages — the sniffer's inverse.
//!
//! The serving loop replays a *trace*, but the only thing on a TCP
//! connection is RPC. This module reconstructs, for every
//! [`TraceRecord`], an NFS call and reply whose wire encoding flattens
//! back to exactly that record under the sniffer's canonical
//! flattening (`nfstrace_sniffer::convert`). That is the identity the
//! whole loop rests on:
//!
//! ```text
//! flatten(decode(encode(call_of_record(r), reply_of_record(r)))) == r
//! ```
//!
//! The reconstruction is *not* a full inverse of the flattening — it
//! cannot be, since flattening drops payloads, cookies, and most
//! attributes. It only has to be a **section** of it: any wire pair
//! that flattens to `r` will do, and fields the flattener ignores are
//! filled with fixed defaults (zero payload bytes, empty directory
//! listings, zero verifiers). Data buffers are zero-filled at their
//! recorded lengths so wire *sizes* stay faithful even though content
//! is gone, exactly like the simulator's own encoder.
//!
//! Every record replays as **NFSv3 wire messages**, including records
//! tagged `vers == 2`. The canonical record is precisely the v3
//! flattening (the generators flatten v2-tagged clients through
//! `v3_to_record` too), while the genuine v2 wire narrowing is lossy —
//! it has no ACCESS or COMMIT, drops `pre_size`, and truncates 64-bit
//! sizes (`nfstrace_sniffer::wire::DowngradeCounters` exists to count
//! exactly that). A record round-tripped through the serving loop
//! therefore reproduces every analysis-bearing field; the one
//! discrepancy is that v2-tagged records re-capture as `vers == 3`, a
//! tag no analysis product consumes. Genuine v2 *callers* are still
//! served faithfully — by the live filesystem service's v2 dispatch,
//! not by replay.

use nfstrace_core::record::{Op, TraceRecord};
use nfstrace_nfs::fh::FileHandle;
use nfstrace_nfs::types::{Fattr3, Ftype3, NfsStat3, Sattr3, WccAttr, WccData};
use nfstrace_nfs::v3::{
    Access3Args, Call3, Commit3Args, Create3Args, Create3Res, CreateHow, DirOpArgs, FhArgs,
    Getattr3Res, Link3Args, Lookup3Res, Mkdir3Args, Mknod3Args, Read3Args, Read3Res, Readdir3Args,
    Readdir3Res, Readdirplus3Args, Readdirplus3Res, Rename3Args, Reply3, Reply3Body, Setattr3Args,
    Setattr3Res, Symlink3Args, Write3Args, Write3Res,
};
use nfstrace_rpc::auth::{AuthUnix, OpaqueAuth};
use nfstrace_rpc::{RpcMessage, PROG_NFS};

fn fh_of(id: u64) -> FileHandle {
    FileHandle::from_u64(id)
}

fn dirop(r: &TraceRecord) -> DirOpArgs {
    DirOpArgs {
        dir: fh_of(r.fh.0),
        name: r.name.clone().unwrap_or_default(),
    }
}

/// Reconstructs the call half of a record.
pub fn call_of_record(r: &TraceRecord) -> Call3 {
    match r.op {
        Op::Null => Call3::Null,
        Op::Getattr => Call3::Getattr(FhArgs {
            object: fh_of(r.fh.0),
        }),
        Op::Setattr => Call3::Setattr(Setattr3Args {
            object: fh_of(r.fh.0),
            new_attributes: Sattr3 {
                size: r.truncate_to,
                ..Sattr3::default()
            },
            guard_ctime: None,
        }),
        Op::Lookup => Call3::Lookup(dirop(r)),
        Op::Access => Call3::Access(Access3Args {
            object: fh_of(r.fh.0),
            access: 0x1f,
        }),
        Op::Readlink => Call3::Readlink(FhArgs {
            object: fh_of(r.fh.0),
        }),
        Op::Read => Call3::Read(Read3Args {
            file: fh_of(r.fh.0),
            offset: r.offset,
            count: r.count,
        }),
        Op::Write => Call3::Write(Write3Args {
            file: fh_of(r.fh.0),
            offset: r.offset,
            count: r.count,
            stable: Default::default(),
            data: vec![0; r.count as usize],
        }),
        Op::Create => Call3::Create(Create3Args {
            where_: dirop(r),
            how: CreateHow::Unchecked,
            attributes: Sattr3::default(),
        }),
        Op::Mkdir => Call3::Mkdir(Mkdir3Args {
            where_: dirop(r),
            attributes: Sattr3::default(),
        }),
        Op::Symlink => Call3::Symlink(Symlink3Args {
            where_: dirop(r),
            attributes: Sattr3::default(),
            target: String::new(),
        }),
        Op::Mknod => Call3::Mknod(Mknod3Args {
            where_: dirop(r),
            node_type: Ftype3::Fifo.as_u32(),
            attributes: Sattr3::default(),
        }),
        Op::Remove => Call3::Remove(dirop(r)),
        Op::Rmdir => Call3::Rmdir(dirop(r)),
        Op::Rename => Call3::Rename(Rename3Args {
            from: dirop(r),
            to: DirOpArgs {
                dir: fh_of(r.fh2.unwrap_or_default().0),
                name: r.name2.clone().unwrap_or_default(),
            },
        }),
        Op::Link => Call3::Link(Link3Args {
            file: fh_of(r.fh.0),
            link: DirOpArgs {
                dir: fh_of(r.fh2.unwrap_or_default().0),
                name: r.name.clone().unwrap_or_default(),
            },
        }),
        Op::Readdir => Call3::Readdir(Readdir3Args {
            dir: fh_of(r.fh.0),
            cookie: 0,
            cookieverf: [0; 8],
            count: 4096,
        }),
        Op::Readdirplus => Call3::Readdirplus(Readdirplus3Args {
            dir: fh_of(r.fh.0),
            cookie: 0,
            cookieverf: [0; 8],
            dircount: 4096,
            maxcount: 8192,
        }),
        // STATFS is the v2 name for the same flattened op; FSSTAT
        // flattens identically.
        Op::Fsstat | Op::Statfs => Call3::Fsstat(FhArgs {
            object: fh_of(r.fh.0),
        }),
        Op::Fsinfo => Call3::Fsinfo(FhArgs {
            object: fh_of(r.fh.0),
        }),
        Op::Pathconf => Call3::Pathconf(FhArgs {
            object: fh_of(r.fh.0),
        }),
        Op::Commit => Call3::Commit(Commit3Args {
            file: fh_of(r.fh.0),
            offset: r.offset,
            count: r.count,
        }),
    }
}

/// The reply-side attributes a record retained: size and type.
fn attrs_of(r: &TraceRecord) -> Option<Fattr3> {
    r.post_size.map(|size| Fattr3 {
        size,
        ftype: r
            .ftype
            .and_then(|t| Ftype3::from_u32(u32::from(t)).ok())
            .unwrap_or_default(),
        fileid: r.new_fh.unwrap_or(r.fh).0,
        nlink: 1,
        ..Fattr3::default()
    })
}

fn wcc_of(r: &TraceRecord) -> WccData {
    WccData {
        before: r.pre_size.map(|size| WccAttr {
            size,
            ..WccAttr::default()
        }),
        after: r.post_size.map(|size| Fattr3 {
            size,
            fileid: r.fh.0,
            nlink: 1,
            ..Fattr3::default()
        }),
    }
}

fn status_of(r: &TraceRecord) -> NfsStat3 {
    NfsStat3::from_u32(r.status).unwrap_or(NfsStat3::Io)
}

/// Reconstructs the reply half of a record, or `None` for a record
/// whose reply was never captured (`status == u32::MAX`).
pub fn reply_of_record(r: &TraceRecord) -> Option<Reply3> {
    if r.status == u32::MAX {
        return None;
    }
    let status = status_of(r);
    let body = match r.op {
        Op::Null => Reply3Body::Null,
        Op::Getattr => Reply3Body::Getattr(Getattr3Res {
            attributes: attrs_of(r),
        }),
        Op::Setattr => Reply3Body::Setattr(Setattr3Res { wcc: wcc_of(r) }),
        Op::Lookup => Reply3Body::Lookup(Lookup3Res {
            object: r.new_fh.map(|id| fh_of(id.0)),
            obj_attributes: attrs_of(r),
            dir_attributes: None,
        }),
        Op::Read => Reply3Body::Read(Read3Res {
            file_attributes: attrs_of(r),
            count: r.ret_count,
            eof: r.eof,
            data: vec![0; r.ret_count as usize],
        }),
        Op::Write => Reply3Body::Write(Write3Res {
            wcc: wcc_of(r),
            count: r.ret_count,
            committed: 2,
            verf: [0; 8],
        }),
        Op::Create | Op::Mkdir | Op::Symlink | Op::Mknod => {
            let res = Create3Res {
                obj: r.new_fh.map(|id| fh_of(id.0)),
                obj_attributes: attrs_of(r),
                dir_wcc: WccData::default(),
            };
            match r.op {
                Op::Create => Reply3Body::Create(res),
                Op::Mkdir => Reply3Body::Mkdir(res),
                Op::Symlink => Reply3Body::Symlink(res),
                _ => Reply3Body::Mknod(res),
            }
        }
        Op::Readdir => Reply3Body::Readdir(Readdir3Res {
            eof: true,
            ..Readdir3Res::default()
        }),
        Op::Readdirplus => Reply3Body::Readdirplus(Readdirplus3Res {
            eof: true,
            ..Readdirplus3Res::default()
        }),
        // Status-only under the flattening: defaults everywhere.
        _ => {
            let call = call_of_record(r);
            return Some(Reply3 {
                status,
                body: Reply3::error(call.proc(), status).body,
            });
        }
    };
    Some(Reply3 { status, body })
}

/// The AUTH_UNIX credential a record's client stamps on its calls:
/// the same shape the simulator's wire encoder uses, so the sniffer
/// recovers identical `uid`/`gid` and the server can recover the
/// client address from the machine name.
pub fn cred_of_record(r: &TraceRecord) -> OpaqueAuth {
    OpaqueAuth::unix(&AuthUnix::new(
        format!("client{:x}", r.client),
        r.uid,
        r.gid,
    ))
}

/// Reconstructs the full RPC messages for a record: the call, and the
/// reply if one was captured.
pub fn rpc_pair_of_record(r: &TraceRecord) -> (RpcMessage, Option<RpcMessage>) {
    let call = call_of_record(r);
    let call_msg = RpcMessage::call(
        r.xid,
        PROG_NFS,
        3,
        call.proc().as_u32(),
        cred_of_record(r),
        call.encode_args(),
    );
    let reply_msg =
        reply_of_record(r).map(|rep| RpcMessage::reply_success(r.xid, rep.encode_results()));
    (call_msg, reply_msg)
}

/// Parses the client address back out of an AUTH_UNIX machine name of
/// the form `client<hex>` — the inverse of [`cred_of_record`]'s
/// naming, used by the serving loop to key its replay plan.
pub fn client_ip_of_machine_name(name: &str) -> Option<u32> {
    u32::from_str_radix(name.strip_prefix("client")?, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_core::record::FileId;

    #[test]
    fn machine_name_roundtrips() {
        for ip in [0u32, 1, 0x0a00_0001, u32::MAX] {
            let r = TraceRecord {
                client: ip,
                ..TraceRecord::new(0, Op::Null, FileId(0))
            };
            let cred = cred_of_record(&r);
            let unix = cred.as_unix().unwrap().unwrap();
            assert_eq!(client_ip_of_machine_name(&unix.machine_name), Some(ip));
        }
        assert_eq!(client_ip_of_machine_name("host12"), None);
        assert_eq!(client_ip_of_machine_name("clientzz"), None);
    }

    #[test]
    fn lost_reply_reconstructs_as_none() {
        let mut r = TraceRecord::new(5, Op::Getattr, FileId(7));
        r.status = u32::MAX;
        r.reply_micros = 0;
        assert_eq!(reply_of_record(&r), None);
        let (_, reply) = rpc_pair_of_record(&r);
        assert!(reply.is_none());
    }
}
