//! The wire replay client: a trace played back as real RPC over TCP.
//!
//! Calls go out on per-client connections (every trace client's calls
//! stay on one connection, in trace order — the invariant the server's
//! per-`(client, xid)` reply schedule depends on), with a bounded
//! in-flight window, configurable pacing, and timeout-driven
//! retransmission. Everything the client actually writes to or reads
//! from a socket is also recorded in a **tap** ([`TapEvent`]) — the
//! message-level mirror of the server's byte stream that the capture
//! pipeline (`crate::pipeline`) later frames into packets for the
//! sniffer, retransmissions and duplicate replies included.
//!
//! Telemetry: `replay.calls_sent`, `replay.retransmits`,
//! `replay.rtt_micros`.

use crate::plan::{PlannedCall, ReplayPlan};
use nfstrace_rpc::record::{mark_record, RecordReader};
use nfstrace_telemetry::Registry;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// How fast to play the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// As fast as the window allows, ignoring trace timestamps.
    Afap,
    /// Honor trace inter-arrival times, compressed by `speedup`
    /// (e.g. `3600.0` plays an hour of trace per wall second).
    Timescale {
        /// Trace-seconds per wall-second.
        speedup: f64,
    },
}

/// Replay knobs.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Connection count; trace clients are spread across these
    /// round-robin (never split: one client, one connection).
    pub connections: usize,
    /// Per-connection in-flight call cap.
    pub window: usize,
    /// Retransmit a call not answered within this long. Generous by
    /// default: on loopback a retransmission means something is wrong,
    /// and the CI smoke asserts none happen.
    pub timeout: Duration,
    /// Pacing mode.
    pub pacing: Pacing,
    /// Test hook: immediately send every n-th call twice, forcing the
    /// retransmission path without waiting out a timeout.
    pub forced_retransmit_every: Option<usize>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            connections: 2,
            window: 32,
            timeout: Duration::from_secs(5),
            pacing: Pacing::Afap,
            forced_retransmit_every: None,
        }
    }
}

/// One message observed on a replay connection, tagged for the tap.
#[derive(Debug, Clone)]
pub struct TapEvent {
    /// Trace index of the call this message belongs to.
    pub idx: usize,
    /// 0 = client→server (call), 1 = server→client (reply).
    pub dir: u8,
    /// Trace-clock capture time: the record's call time for calls
    /// (retransmissions included — the trace has one timestamp), the
    /// record's reply time for replies.
    pub micros: u64,
    /// Client address.
    pub client_ip: u32,
    /// Server address.
    pub server_ip: u32,
    /// The raw RPC message bytes as written/read (unframed).
    pub bytes: Vec<u8>,
}

/// What a replay run produced.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Every message that crossed a connection, in per-connection
    /// observation order (sort by `(idx, dir)` to serialize; the
    /// pipeline does).
    pub tap: Vec<TapEvent>,
    /// Calls written, first transmissions only.
    pub calls_sent: u64,
    /// Retransmissions (timeout-driven plus forced).
    pub retransmits: u64,
}

/// One in-flight call awaiting its reply.
struct Pending {
    local: usize,
    sent_at: Instant,
}

/// Replays `plan` against the server at `addr`.
///
/// # Errors
///
/// Propagates connect/socket failures from any connection worker.
pub fn replay(
    plan: &ReplayPlan,
    addr: SocketAddr,
    options: &ReplayOptions,
    registry: &Registry,
) -> std::io::Result<ReplayOutcome> {
    let calls_sent = registry.counter("replay.calls_sent");
    let retransmits = registry.counter("replay.retransmits");
    let rtt_micros = registry.histogram("replay.rtt_micros");

    // Clients → connection groups, round-robin by first appearance.
    let ips = plan.client_ips();
    let groups = options.connections.clamp(1, ips.len().max(1));
    let group_of: HashMap<u32, usize> = ips
        .iter()
        .enumerate()
        .map(|(i, ip)| (*ip, i % groups))
        .collect();
    let mut per_group: Vec<Vec<&PlannedCall>> = vec![Vec::new(); groups];
    for call in &plan.calls {
        per_group[group_of[&call.client_ip]].push(call);
    }
    let first_micros = plan.calls.first().map_or(0, |c| c.micros);
    let start = Instant::now();

    let outcomes = std::thread::scope(|scope| {
        let workers: Vec<_> = per_group
            .iter()
            .map(|calls| {
                let calls_sent = calls_sent.clone();
                let retransmits = retransmits.clone();
                let rtt_micros = rtt_micros.clone();
                scope.spawn(move || {
                    run_connection(
                        calls,
                        addr,
                        options,
                        first_micros,
                        start,
                        &calls_sent,
                        &retransmits,
                        &rtt_micros,
                    )
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("replay connection thread"))
            .collect::<Vec<_>>()
    });

    let mut merged = ReplayOutcome::default();
    for outcome in outcomes {
        let outcome = outcome?;
        merged.tap.extend(outcome.tap);
        merged.calls_sent += outcome.calls_sent;
        merged.retransmits += outcome.retransmits;
    }
    Ok(merged)
}

/// The per-connection replay loop: window-bounded sends, reply
/// matching by `(xid → oldest in-flight)`, timeout retransmission.
#[allow(clippy::too_many_arguments)]
fn run_connection(
    calls: &[&PlannedCall],
    addr: SocketAddr,
    options: &ReplayOptions,
    first_micros: u64,
    start: Instant,
    calls_sent: &nfstrace_telemetry::Counter,
    retransmits: &nfstrace_telemetry::Counter,
    rtt_micros: &nfstrace_telemetry::Histogram,
) -> std::io::Result<ReplayOutcome> {
    let mut outcome = ReplayOutcome::default();
    if calls.is_empty() {
        return Ok(outcome);
    }
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(10)))?;

    let mut reader = RecordReader::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut cursor = 0usize;
    let mut in_flight: HashMap<u32, VecDeque<Pending>> = HashMap::new();
    let mut in_flight_count = 0usize;
    // Last completed call (index into `calls`) per xid: tags duplicate
    // replies (the DRC answering a retransmission) with the call they
    // duplicate.
    let mut last_done: HashMap<u32, usize> = HashMap::new();

    while cursor < calls.len() || in_flight_count > 0 {
        // Send while the window and the pacing clock allow.
        while cursor < calls.len() && in_flight_count < options.window {
            let call = calls[cursor];
            if let Pacing::Timescale { speedup } = options.pacing {
                let due_micros = (call.micros.saturating_sub(first_micros)) as f64
                    / speedup.max(f64::MIN_POSITIVE);
                if (start.elapsed().as_micros() as f64) < due_micros {
                    break;
                }
            }
            let framed = mark_record(&call.call_bytes);
            stream.write_all(&framed)?;
            calls_sent.inc();
            outcome.tap.push(TapEvent {
                idx: call.idx,
                dir: 0,
                micros: call.micros,
                client_ip: call.client_ip,
                server_ip: call.server_ip,
                bytes: call.call_bytes.clone(),
            });
            if call.reply_bytes.is_some() {
                in_flight.entry(call.xid).or_default().push_back(Pending {
                    local: cursor,
                    sent_at: Instant::now(),
                });
                in_flight_count += 1;
            }
            if let Some(every) = options.forced_retransmit_every {
                if every > 0 && (cursor + 1).is_multiple_of(every) {
                    stream.write_all(&framed)?;
                    retransmits.inc();
                    outcome.retransmits += 1;
                    outcome.tap.push(TapEvent {
                        idx: call.idx,
                        dir: 0,
                        micros: call.micros,
                        client_ip: call.client_ip,
                        server_ip: call.server_ip,
                        bytes: call.call_bytes.clone(),
                    });
                }
            }
            cursor += 1;
        }

        // Drain replies.
        let mut idle = false;
        match stream.read(&mut buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection mid-replay",
                ));
            }
            Ok(n) => {
                reader.push(&buf[..n]);
                while let Some(reply) = reader
                    .next_record()
                    .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?
                {
                    let xid = u32::from_be_bytes([reply[0], reply[1], reply[2], reply[3]]);
                    let completed = in_flight
                        .get_mut(&xid)
                        .and_then(|q| q.pop_front())
                        .map(|p| {
                            in_flight_count -= 1;
                            rtt_micros.record(p.sent_at.elapsed().as_micros() as u64);
                            p.local
                        })
                        .or_else(|| last_done.get(&xid).copied());
                    // Empty queues must go: a long trace sees mostly
                    // distinct xids, and the timeout sweep below walks
                    // this map.
                    if in_flight.get(&xid).is_some_and(VecDeque::is_empty) {
                        in_flight.remove(&xid);
                    }
                    // A reply we can't attribute (no such xid ever) is
                    // dropped from the tap: nothing to anchor it to.
                    if let Some(local) = completed {
                        let call = calls[local];
                        last_done.insert(xid, local);
                        outcome.tap.push(TapEvent {
                            idx: call.idx,
                            dir: 1,
                            micros: call.reply_micros,
                            client_ip: call.client_ip,
                            server_ip: call.server_ip,
                            bytes: reply.clone(),
                        });
                    }
                }
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                idle = true;
            }
            Err(e) => return Err(e),
        }

        // Timeout-driven retransmission — only worth sweeping when the
        // connection went quiet (while replies flow, nothing in a
        // seconds-deep window can have expired).
        if idle {
            for queue in in_flight.values_mut() {
                for pending in queue.iter_mut() {
                    if pending.sent_at.elapsed() >= options.timeout {
                        let call = calls[pending.local];
                        stream.write_all(&mark_record(&call.call_bytes))?;
                        pending.sent_at = Instant::now();
                        retransmits.inc();
                        outcome.retransmits += 1;
                        outcome.tap.push(TapEvent {
                            idx: call.idx,
                            dir: 0,
                            micros: call.micros,
                            client_ip: call.client_ip,
                            server_ip: call.server_ip,
                            bytes: call.call_bytes.clone(),
                        });
                    }
                }
            }
        }
    }
    outcome.calls_sent = outcome
        .tap
        .iter()
        .filter(|e| e.dir == 0)
        .count()
        .saturating_sub(outcome.retransmits as usize) as u64;
    Ok(outcome)
}
