//! What the serving loop answers with: plan-driven or filesystem-backed.
//!
//! A [`NfsService`] maps one inbound RPC record to at most one
//! outbound RPC record. Two implementations:
//!
//! - [`FsService`] is a genuine NFS server: it decodes the call and
//!   services it against a [`SharedNfsServer`] filesystem. This is the
//!   mode for stress, benchmarking, and interactive use — semantically
//!   honest, but it cannot reproduce a recorded trace bit-for-bit
//!   (the sorted trace is not a serializable history).
//! - [`ReplayService`] answers from a [`ReplayPlan`]: the exact reply
//!   bytes the trace recorded, per `(client, xid)` in call order, with
//!   a duplicate-request cache so retransmitted calls re-receive the
//!   *same* reply instead of perturbing the plan — the DRC every real
//!   NFS server keeps, doing here exactly what it did there. Calls the
//!   plan does not know (a client's NULL ping, a stray probe) fall
//!   through to an [`FsService`].

use crate::plan::ReplayPlan;
use crate::reverse::client_ip_of_machine_name;
use nfstrace_fssim::SharedNfsServer;
use nfstrace_nfs::v2::{Call2, Proc2};
use nfstrace_nfs::v3::{Call3, Proc3};
use nfstrace_rpc::msg::accept_stat;
use nfstrace_rpc::msg::CallBody;
use nfstrace_rpc::{MsgBodyView, RpcMessage, RpcMessageView, PROG_NFS};
use nfstrace_xdr::Pack;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maps one inbound RPC record to at most one outbound RPC record.
///
/// `None` means the server stays silent — undecodable garbage, a
/// reply-shaped message on the inbound side, or a planned lost reply.
pub trait NfsService: Send + Sync {
    /// Serve one call; returns the encoded RPC reply message.
    fn serve(&self, call_msg: &[u8]) -> Option<Vec<u8>>;
}

/// A real NFS server behind the socket: decode, dispatch, encode.
#[derive(Debug)]
pub struct FsService {
    server: SharedNfsServer,
    /// Logical microsecond clock for attribute timestamps: the wire
    /// carries no trace time, and wall time would make replies
    /// nondeterministic.
    clock: AtomicU64,
}

impl FsService {
    /// Wraps a shared filesystem server.
    pub fn new(server: SharedNfsServer) -> Self {
        FsService {
            server,
            clock: AtomicU64::new(0),
        }
    }

    /// The underlying shared server (setup, invariant checks).
    pub fn server(&self) -> &SharedNfsServer {
        &self.server
    }

    fn dispatch(&self, call: &CallBody, xid: u32) -> RpcMessage {
        if call.prog != PROG_NFS {
            return RpcMessage::reply_error(xid, accept_stat::PROG_UNAVAIL);
        }
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        match call.vers {
            3 => {
                let Ok(proc) = Proc3::from_u32(call.proc) else {
                    return RpcMessage::reply_error(xid, accept_stat::PROC_UNAVAIL);
                };
                let Ok(decoded) = Call3::decode(proc, &call.args) else {
                    return RpcMessage::reply_error(xid, accept_stat::GARBAGE_ARGS);
                };
                let reply = self.server.handle_v3(&decoded, now);
                RpcMessage::reply_success(xid, reply.encode_results())
            }
            2 => {
                let Ok(proc) = Proc2::from_u32(call.proc) else {
                    return RpcMessage::reply_error(xid, accept_stat::PROC_UNAVAIL);
                };
                let Ok(decoded) = Call2::decode(proc, &call.args) else {
                    return RpcMessage::reply_error(xid, accept_stat::GARBAGE_ARGS);
                };
                let reply = self.server.handle_v2(&decoded, now);
                RpcMessage::reply_success(xid, reply.encode_results())
            }
            _ => RpcMessage::reply_error(xid, accept_stat::PROG_MISMATCH),
        }
    }
}

impl NfsService for FsService {
    fn serve(&self, call_msg: &[u8]) -> Option<Vec<u8>> {
        let view = RpcMessageView::decode(call_msg).ok()?;
        let xid = view.xid;
        let call = (*view.as_call()?).to_owned();
        Some(self.dispatch(&call, xid).to_xdr_bytes())
    }
}

/// Replay state for one `(client, xid)` key.
#[derive(Debug, Default)]
struct XidState {
    /// Planned replies not yet served, in call order.
    pending: VecDeque<Option<Vec<u8>>>,
    /// The last reply served — what a retransmitted call gets.
    last: Option<Vec<u8>>,
}

/// A trace-faithful responder: planned reply bytes plus a DRC.
pub struct ReplayService {
    states: Mutex<HashMap<(u32, u32), XidState>>,
    fallback: FsService,
    unplanned: AtomicU64,
}

impl std::fmt::Debug for ReplayService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayService")
            .field("unplanned", &self.unplanned.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ReplayService {
    /// Compiles the plan's reply schedule; unplanned calls fall back
    /// to a fresh [`FsService`] at the given server address.
    pub fn new(plan: &ReplayPlan, server_ip: u32) -> Self {
        let states = plan
            .reply_schedule()
            .into_iter()
            .map(|(key, pending)| {
                (
                    key,
                    XidState {
                        pending,
                        last: None,
                    },
                )
            })
            .collect();
        ReplayService {
            states: Mutex::new(states),
            fallback: FsService::new(SharedNfsServer::new(server_ip)),
            unplanned: AtomicU64::new(0),
        }
    }

    /// Calls that missed the plan and were served by the fallback.
    pub fn unplanned_calls(&self) -> u64 {
        self.unplanned.load(Ordering::Relaxed)
    }

    fn lock_states(&self) -> std::sync::MutexGuard<'_, HashMap<(u32, u32), XidState>> {
        match self.states.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl NfsService for ReplayService {
    fn serve(&self, call_msg: &[u8]) -> Option<Vec<u8>> {
        let view = RpcMessageView::decode(call_msg).ok()?;
        let xid = view.xid;
        let MsgBodyView::Call(call) = &view.body else {
            return None;
        };
        let client_ip = call
            .cred
            .to_owned()
            .as_unix()
            .and_then(|u| u.ok())
            .and_then(|u| client_ip_of_machine_name(&u.machine_name));
        if let Some(client_ip) = client_ip {
            let mut states = self.lock_states();
            if let Some(state) = states.get_mut(&(client_ip, xid)) {
                if let Some(planned) = state.pending.pop_front() {
                    // The next planned call for this key: serve its
                    // reply (or planned silence) and remember it.
                    state.last.clone_from(&planned);
                    return planned;
                }
                if state.last.is_some() {
                    // Schedule exhausted: a retransmission. The DRC
                    // answers with the same bytes as last time.
                    return state.last.clone();
                }
            }
        }
        self.unplanned.fetch_add(1, Ordering::Relaxed);
        self.fallback.serve(call_msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::cred_of_record;
    use nfstrace_core::record::{FileId, Op, TraceRecord};

    fn rec(client: u32, xid: u32, size: u64) -> TraceRecord {
        let mut r = TraceRecord::new(xid as u64, Op::Getattr, FileId(2));
        r.client = client;
        r.xid = xid;
        r.post_size = Some(size);
        r.ftype = Some(1);
        r
    }

    #[test]
    fn replay_serves_planned_replies_and_drc_for_duplicates() {
        let records = vec![rec(9, 7, 100), rec(9, 7, 200)];
        let plan = ReplayPlan::from_records(&records);
        let service = ReplayService::new(&plan, 1);
        let call0 = plan.calls[0].call_bytes.clone();
        let call1 = plan.calls[1].call_bytes.clone();

        let r0 = service.serve(&call0).expect("first planned reply");
        assert_eq!(Some(&r0), plan.calls[0].reply_bytes.as_ref());
        let r1 = service.serve(&call1).expect("second planned reply");
        assert_eq!(Some(&r1), plan.calls[1].reply_bytes.as_ref());
        assert_ne!(r0, r1, "distinct planned replies");

        // Schedule exhausted: any further copy of the call is a
        // retransmission and must re-receive the *last* reply.
        let dup = service.serve(&call1).expect("DRC hit");
        assert_eq!(dup, r1);
        assert_eq!(service.unplanned_calls(), 0);
    }

    #[test]
    fn unplanned_calls_fall_back_to_the_filesystem() {
        let plan = ReplayPlan::from_records(std::iter::empty());
        let service = ReplayService::new(&plan, 1);
        // A NULL ping from a client the plan has never heard of.
        let mut r = TraceRecord::new(0, Op::Null, FileId(0));
        r.client = 77;
        r.xid = 1234;
        let call =
            nfstrace_rpc::RpcMessage::call(r.xid, PROG_NFS, 3, 0, cred_of_record(&r), Vec::new());
        let reply = service.serve(&call.to_xdr_bytes()).expect("NULL reply");
        let view = RpcMessageView::decode(&reply).unwrap();
        assert_eq!(view.xid, 1234);
        assert!(view.as_reply().is_some());
        assert_eq!(service.unplanned_calls(), 1);
    }

    #[test]
    fn bad_program_and_version_get_rpc_errors() {
        let service = FsService::new(SharedNfsServer::new(1));
        let cred = cred_of_record(&TraceRecord::new(0, Op::Null, FileId(0)));
        for (msg, want) in [
            (
                RpcMessage::call(1, 100_005, 3, 0, cred.clone(), Vec::new()),
                accept_stat::PROG_UNAVAIL,
            ),
            (
                RpcMessage::call(2, PROG_NFS, 4, 0, cred.clone(), Vec::new()),
                accept_stat::PROG_MISMATCH,
            ),
            (
                RpcMessage::call(3, PROG_NFS, 3, 99, cred.clone(), Vec::new()),
                accept_stat::PROC_UNAVAIL,
            ),
            (
                RpcMessage::call(4, PROG_NFS, 3, 6, cred, vec![1]),
                accept_stat::GARBAGE_ARGS,
            ),
        ] {
            let reply = service.serve(&msg.to_xdr_bytes()).expect("an error reply");
            let view = RpcMessageView::decode(&reply).unwrap();
            let body = view.as_reply().expect("a reply body");
            assert_eq!(body.accept_stat, want, "xid {}", view.xid);
        }
    }
}
