//! The replay plan: a trace precompiled into wire messages.
//!
//! A [`ReplayPlan`] holds, per trace record and in trace order, the
//! encoded RPC call the client will put on its connection and the
//! encoded RPC reply the server will answer with. Precompiling once up
//! front keeps both sides of the loop out of the XDR encoder on the
//! hot path, and gives the server the one thing a *trace-faithful*
//! responder needs that a live filesystem cannot provide: the exact
//! reply bytes the original server sent, in per-client FIFO order (a
//! sorted trace is not a serializable history — overlapping user
//! events interleave — so replaying calls against a fresh filesystem
//! would diverge; see `nfstrace_serve::service::ReplayService`).

use crate::reverse::rpc_pair_of_record;
use nfstrace_core::index::RecordStream;
use nfstrace_core::record::TraceRecord;
use nfstrace_xdr::Pack;
use std::collections::HashMap;
use std::collections::VecDeque;

/// One trace record, compiled to wire form.
#[derive(Debug, Clone)]
pub struct PlannedCall {
    /// Position in the trace (drives tap ordering).
    pub idx: usize,
    /// Client address.
    pub client_ip: u32,
    /// Server address.
    pub server_ip: u32,
    /// RPC transaction id.
    pub xid: u32,
    /// Trace-clock time of the call.
    pub micros: u64,
    /// Trace-clock time of the reply (0 if the trace lost it).
    pub reply_micros: u64,
    /// The full encoded RPC call message (unframed).
    pub call_bytes: Vec<u8>,
    /// The full encoded RPC reply message; `None` replays a lost
    /// reply (the server stays silent).
    pub reply_bytes: Option<Vec<u8>>,
}

/// A whole trace, compiled for replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayPlan {
    /// The calls, in trace order.
    pub calls: Vec<PlannedCall>,
}

impl ReplayPlan {
    /// Compiles an in-memory record slice.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> Self {
        let mut plan = ReplayPlan::default();
        for r in records {
            plan.push(r);
        }
        plan
    }

    /// Compiles any [`RecordStream`] — a store index, a live view, or
    /// a generated trace — without materializing it twice.
    pub fn from_stream(stream: &dyn RecordStream) -> Self {
        let mut plan = ReplayPlan::default();
        stream.for_each_record(&mut |r| plan.push(r));
        plan
    }

    fn push(&mut self, r: &TraceRecord) {
        let (call, reply) = rpc_pair_of_record(r);
        self.calls.push(PlannedCall {
            idx: self.calls.len(),
            client_ip: r.client,
            server_ip: r.server,
            xid: r.xid,
            micros: r.micros,
            reply_micros: r.reply_micros,
            call_bytes: call.to_xdr_bytes(),
            reply_bytes: reply.map(|m| m.to_xdr_bytes()),
        });
    }

    /// The server side of the plan: per `(client, xid)`, the planned
    /// replies in call order. A FIFO (not a map to one reply) because
    /// a long trace reuses XIDs; calls for one client arrive on one
    /// connection in plan order, so FIFO pop pairs them correctly.
    /// `None` entries (lost replies) are kept so a reused XID behind a
    /// lost reply still lines up.
    pub fn reply_schedule(&self) -> HashMap<(u32, u32), VecDeque<Option<Vec<u8>>>> {
        let mut map: HashMap<(u32, u32), VecDeque<Option<Vec<u8>>>> = HashMap::new();
        for c in &self.calls {
            map.entry((c.client_ip, c.xid))
                .or_default()
                .push_back(c.reply_bytes.clone());
        }
        map
    }

    /// The distinct client addresses in the plan, in first-appearance
    /// order — the unit of connection assignment.
    pub fn client_ips(&self) -> Vec<u32> {
        let mut seen = HashMap::new();
        let mut out = Vec::new();
        for c in &self.calls {
            if seen.insert(c.client_ip, ()).is_none() {
                out.push(c.client_ip);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_core::record::{FileId, Op};

    fn rec(micros: u64, client: u32, xid: u32) -> TraceRecord {
        let mut r = TraceRecord::new(micros, Op::Getattr, FileId(2));
        r.client = client;
        r.xid = xid;
        r.post_size = Some(10);
        r.ftype = Some(1);
        r
    }

    #[test]
    fn schedule_keeps_reused_xids_in_call_order() {
        let records = vec![rec(1, 9, 100), rec(2, 9, 100), rec(3, 8, 100)];
        let plan = ReplayPlan::from_records(&records);
        assert_eq!(plan.calls.len(), 3);
        let schedule = plan.reply_schedule();
        assert_eq!(schedule[&(9, 100)].len(), 2);
        assert_eq!(schedule[&(8, 100)].len(), 1);
        assert_eq!(plan.client_ips(), vec![9, 8]);
    }
}
