//! The closed loop: serve, replay, tap, frame, sniff, ingest.
//!
//! [`serve_roundtrip`] wires the whole chain together: a
//! [`ReplayService`] behind a real loopback [`NfsTcpServer`], the
//! replay client playing the trace into it, and the client-side tap
//! mirrored into the passive capture path — [`WireEncoder`] frame
//! synthesis, a lossless [`MirrorPort`], the streaming
//! [`SnifferSource`], and [`LiveIngest`] writing segments to disk. The
//! resulting store is byte-for-byte the one the batch pipeline writes
//! for the same trace, which is what the end-to-end tests and the CI
//! smoke assert.

use crate::client::{replay, ReplayOptions, ReplayOutcome, TapEvent};
use crate::plan::ReplayPlan;
use crate::server::NfsTcpServer;
use crate::service::{NfsService, ReplayService};
use nfstrace_live::{LiveConfig, LiveIngest, LiveSummary, SnifferSource};
use nfstrace_net::mirror::{MirrorConfig, MirrorPort, MirrorStats, MirrorVerdict};
use nfstrace_net::pcap::CapturedPacket;
use nfstrace_sniffer::{SnifferStats, WireEncoder};
use nfstrace_store::error::Result;
use nfstrace_telemetry::Registry;
use std::path::Path;
use std::sync::Arc;

/// The NFS port the synthesized frames carry (the real server binds an
/// ephemeral loopback port; the tap re-addresses to the canonical one
/// so captured flows look like production traffic).
const NFS_PORT: u16 = 2049;

/// Packets fed to the sniffer per streaming batch.
const PACKETS_PER_BATCH: usize = 512;

/// Turns the replay tap into captured frames, exactly as a span port
/// would have seen them: tap events serialized by `(trace idx, dir)`
/// — each call immediately followed by its reply, retransmissions and
/// duplicates in place — then record-marked, MSS-chunked, and
/// timestamped with the trace clock.
pub fn tap_to_packets(tap: &[TapEvent]) -> Vec<CapturedPacket> {
    let mut ordered: Vec<&TapEvent> = tap.iter().collect();
    ordered.sort_by_key(|e| (e.idx, e.dir));
    let mut enc = WireEncoder::tcp_jumbo();
    let mut out = Vec::new();
    for e in ordered {
        let cport = WireEncoder::client_port(e.client_ip);
        let pkts = if e.dir == 0 {
            enc.encode_message(
                e.micros,
                e.client_ip,
                e.server_ip,
                cport,
                NFS_PORT,
                &e.bytes,
            )
        } else {
            enc.encode_message(
                e.micros,
                e.server_ip,
                e.client_ip,
                NFS_PORT,
                cport,
                &e.bytes,
            )
        };
        out.extend(pkts);
    }
    out
}

/// What one full serve → capture → ingest pass produced.
#[derive(Debug)]
pub struct RoundtripOutcome {
    /// The replay client's side: tap, send and retransmit counts.
    pub replay: ReplayOutcome,
    /// The live ingest summary for the written store directory.
    pub summary: LiveSummary,
    /// Passive capture statistics (retransmits seen, orphans, ...).
    pub sniffer: Option<SnifferStats>,
    /// Mirror-port statistics for the tap feed.
    pub mirror: MirrorStats,
    /// Calls the replay plan did not cover (served by the filesystem
    /// fallback); zero in a faithful replay.
    pub unplanned_calls: u64,
}

/// Serves `plan` over loopback TCP, replays it with `options`, and
/// ingests the captured byte streams into a live store at `dir`.
///
/// Metrics for every stage land in `registry`.
///
/// # Errors
///
/// Socket failures from the serve/replay loop and store failures from
/// the ingest.
pub fn serve_roundtrip(
    plan: &ReplayPlan,
    options: &ReplayOptions,
    registry: &Registry,
    dir: &Path,
) -> Result<RoundtripOutcome> {
    let server_ip = plan.calls.first().map_or(1, |c| c.server_ip);
    let service = Arc::new(ReplayService::new(plan, server_ip));
    let mut server = NfsTcpServer::spawn(Arc::clone(&service) as Arc<dyn NfsService>, registry)?;
    let replay_outcome = replay(plan, server.addr(), options, registry)?;
    server.shutdown();

    // Mirror the tap into the capture path, then sniff + ingest.
    let mut mirror = MirrorPort::new(MirrorConfig::lossless());
    let packets: Vec<CapturedPacket> = tap_to_packets(&replay_outcome.tap)
        .into_iter()
        .filter(|p| mirror.offer(p.timestamp_micros, p.data.len()) == MirrorVerdict::Forwarded)
        .collect();
    let mut source = SnifferSource::new(packets.into_iter(), PACKETS_PER_BATCH);
    let mut ingest = LiveIngest::create(LiveConfig::new(dir).with_registry(registry))?;
    ingest.run(&mut source)?;
    let summary = ingest.finish()?;
    Ok(RoundtripOutcome {
        replay: replay_outcome,
        summary,
        sniffer: source.stats(),
        mirror: mirror.stats(),
        unplanned_calls: service.unplanned_calls(),
    })
}
