//! `nfstrace-serve` — the serving loop that closes the project's
//! generate → serve → capture → analyze circle over real sockets.
//!
//! Everything upstream of this crate treats the trace as data: the
//! workload models synthesize records, the wire encoder frames them,
//! the sniffer recovers them, the store persists them. This crate
//! treats the trace as *traffic*. Three layers:
//!
//! 1. **The serving loop** ([`server`]) — a concurrent RFC 1813-shaped
//!    NFS/RPC server on loopback TCP: record-marked framing
//!    ([`nfstrace_rpc::record`]), one thread per connection, XID-correct
//!    replies, v3 and v2 dispatch. What it answers comes from an
//!    [`NfsService`]: either a genuine shared filesystem
//!    ([`service::FsService`] over [`nfstrace_fssim::SharedNfsServer`])
//!    or a trace-faithful replay plan with a duplicate-request cache
//!    ([`service::ReplayService`]).
//! 2. **The replay client** ([`client`]) — turns a generated or
//!    store-loaded trace into timed RPC calls: per-client connections,
//!    a bounded in-flight window, as-fast-as-possible or
//!    trace-timestamp pacing, and timeout-driven retransmission.
//! 3. **The capture tap** ([`pipeline`]) — mirrors the replayed byte
//!    streams back into the passive capture path (frame synthesis →
//!    mirror port → sniffer → live ingest), so a store captured off
//!    the serving loop is byte-for-byte the store the batch pipeline
//!    writes for the same trace.
//!
//! The [`reverse`] module holds the inverse of the sniffer's record
//! flattening — trace record back to wire call/reply messages — and
//! [`plan`] precompiles a whole trace into a [`ReplayPlan`] both sides
//! of the loop share.

pub mod client;
pub mod pipeline;
pub mod plan;
pub mod reverse;
pub mod server;
pub mod service;

pub use client::{replay, Pacing, ReplayOptions, ReplayOutcome, TapEvent};
pub use pipeline::{serve_roundtrip, tap_to_packets, RoundtripOutcome};
pub use plan::{PlannedCall, ReplayPlan};
pub use server::NfsTcpServer;
pub use service::{FsService, NfsService, ReplayService};
