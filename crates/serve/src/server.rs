//! The serving loop proper: a concurrent NFS/RPC server on loopback TCP.
//!
//! RFC 1813-shaped dispatch over the stream transport real NFSv3
//! deployments used: record-marked RPC ([`nfstrace_rpc::record`]), one
//! OS thread per client connection, replies written back on the
//! connection the call arrived on with the call's XID. What to answer
//! is delegated to an [`NfsService`] — a live filesystem or a trace
//! replay plan — so the transport loop is identical in both modes.
//!
//! Telemetry (all in the shared registry): `serve.calls`,
//! `serve.bytes_in`, `serve.bytes_out`, `serve.active_conns`,
//! `serve.dispatch_micros`.

use crate::service::NfsService;
use nfstrace_rpc::record::{mark_record_into, RecordReader};
use nfstrace_telemetry::{Counter, Gauge, Histogram, Registry};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection thread blocks in `read` before re-checking
/// the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

#[derive(Clone)]
struct ServeMetrics {
    calls: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    active_conns: Gauge,
    dispatch_micros: Histogram,
    /// Gauges are set, not added; track the live count separately.
    conns: Arc<AtomicI64>,
}

impl ServeMetrics {
    fn register(registry: &Registry) -> Self {
        ServeMetrics {
            calls: registry.counter("serve.calls"),
            bytes_in: registry.counter("serve.bytes_in"),
            bytes_out: registry.counter("serve.bytes_out"),
            active_conns: registry.gauge("serve.active_conns"),
            dispatch_micros: registry.histogram("serve.dispatch_micros"),
            conns: Arc::new(AtomicI64::new(0)),
        }
    }

    fn conn_opened(&self) {
        let now = self.conns.fetch_add(1, Ordering::Relaxed) + 1;
        self.active_conns.set(now as f64);
    }

    fn conn_closed(&self) {
        let now = self.conns.fetch_sub(1, Ordering::Relaxed) - 1;
        self.active_conns.set(now as f64);
    }
}

/// A running serving loop; dropping it (or calling
/// [`NfsTcpServer::shutdown`]) stops the listener and joins every
/// connection thread.
#[derive(Debug)]
pub struct NfsTcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    listener_thread: Option<JoinHandle<()>>,
}

impl NfsTcpServer {
    /// Binds `127.0.0.1:0` and starts accepting. Every connection gets
    /// its own thread running the record-marked dispatch loop against
    /// `service`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(service: Arc<dyn NfsService>, registry: &Registry) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = ServeMetrics::register(registry);
        let accept_stop = Arc::clone(&stop);
        let listener_thread = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let service = Arc::clone(&service);
                        let stop = Arc::clone(&accept_stop);
                        let metrics = metrics.clone();
                        conns.push(std::thread::spawn(move || {
                            serve_connection(stream, &*service, &stop, &metrics);
                        }));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(NfsTcpServer {
            addr,
            stop,
            listener_thread: Some(listener_thread),
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the connection threads, and returns.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NfsTcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection: split records out of the byte stream, serve each,
/// write the record-marked reply back.
fn serve_connection(
    stream: TcpStream,
    service: &dyn NfsService,
    stop: &AtomicBool,
    metrics: &ServeMetrics,
) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(READ_POLL)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    metrics.conn_opened();
    let mut reader = RecordReader::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut out = Vec::new();
    'conn: while !stop.load(Ordering::Relaxed) {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        metrics.bytes_in.add(n as u64);
        reader.push(&buf[..n]);
        loop {
            let record = match reader.next_record() {
                Ok(Some(r)) => r,
                Ok(None) => break,
                // A framing error is unrecoverable on a byte stream:
                // drop the connection, as a real server would.
                Err(_) => break 'conn,
            };
            metrics.calls.inc();
            let started = Instant::now();
            let reply = service.serve(&record);
            metrics
                .dispatch_micros
                .record(started.elapsed().as_micros() as u64);
            if let Some(reply) = reply {
                out.clear();
                mark_record_into(&reply, &mut out);
                if stream.write_all(&out).is_err() {
                    break 'conn;
                }
                metrics.bytes_out.add(out.len() as u64);
            }
        }
    }
    metrics.conn_closed();
}
