//! Property tests on the anonymizer's §2 guarantees.

use nfstrace_anonymize::{Anonymizer, AnonymizerConfig, NameAnonymizer};
use nfstrace_core::record::{FileId, Op, TraceRecord};
use proptest::prelude::*;

proptest! {
    /// Consistency: the same name always maps to the same token within
    /// one anonymizer instance, and distinct names stay distinct.
    #[test]
    fn names_consistent_and_injective(
        names in proptest::collection::hash_set("[a-zA-Z0-9._#~,-]{1,24}", 1..40),
        seed in any::<u64>(),
    ) {
        let mut anon = NameAnonymizer::new(seed);
        let names: Vec<String> = names.into_iter().collect();
        let first: Vec<String> = names.iter().map(|n| anon.map(n)).collect();
        let second: Vec<String> = names.iter().map(|n| anon.map(n)).collect();
        prop_assert_eq!(&first, &second);
        let distinct: std::collections::HashSet<&String> = first.iter().collect();
        prop_assert_eq!(distinct.len(), first.len());
    }

    /// Suffix equivalence classes survive: names with the same suffix
    /// map to names with the same (anonymized) suffix.
    #[test]
    fn suffix_classes_survive(
        stems in proptest::collection::hash_set("[a-z]{3,12}", 2..10),
        suffix in "[a-z]{2,5}",
        seed in any::<u64>(),
    ) {
        let mut anon = NameAnonymizer::new(seed);
        let mapped: Vec<String> = stems
            .iter()
            .map(|stem| anon.map(&format!("{stem}.{suffix}")))
            .collect();
        let suffixes: std::collections::HashSet<&str> = mapped
            .iter()
            .map(|m| m.rsplit('.').next().unwrap())
            .collect();
        prop_assert_eq!(suffixes.len(), 1, "{:?}", mapped);
    }

    /// Special forms wrap the inner mapping: #x#, x~, x,v.
    #[test]
    fn special_forms_wrap(inner in "[a-z]{2,12}\\.[a-z]{1,4}", seed in any::<u64>()) {
        let mut anon = NameAnonymizer::new(seed);
        let plain = anon.map(&inner);
        prop_assert_eq!(anon.map(&format!("#{inner}#")), format!("#{plain}#"));
        prop_assert_eq!(anon.map(&format!("{inner}~")), format!("{plain}~"));
        prop_assert_eq!(anon.map(&format!("{inner},v")), format!("{plain},v"));
    }

    /// Record anonymization preserves every analysis-relevant field and
    /// the identity structure (equal inputs ↦ equal outputs).
    #[test]
    fn record_structure_preserved(
        uids in proptest::collection::vec(1000u32..2000, 2..30),
        fhs in proptest::collection::vec(1u64..50, 2..30),
    ) {
        let mut anon = Anonymizer::new(AnonymizerConfig::default());
        let records: Vec<TraceRecord> = uids
            .iter()
            .zip(&fhs)
            .enumerate()
            .map(|(i, (&uid, &fh))| {
                let mut r = TraceRecord::new(i as u64, Op::Read, FileId(fh))
                    .with_range(i as u64 * 8192, 8192);
                r.uid = uid;
                r
            })
            .collect();
        let out = anon.anonymize_trace(&records);
        for (a, b) in records.iter().zip(&out) {
            prop_assert_eq!(a.micros, b.micros);
            prop_assert_eq!(a.op, b.op);
            prop_assert_eq!(a.offset, b.offset);
            prop_assert_eq!(a.count, b.count);
        }
        // Identity structure: equal uids/fhs map equal, distinct map
        // distinct.
        for i in 0..records.len() {
            for j in 0..records.len() {
                prop_assert_eq!(
                    records[i].uid == records[j].uid,
                    out[i].uid == out[j].uid
                );
                prop_assert_eq!(
                    records[i].fh == records[j].fh,
                    out[i].fh == out[j].fh
                );
            }
        }
    }
}
