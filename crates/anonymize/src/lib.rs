//! Trace anonymization (paper §2).
//!
//! "The anonymization process replaces all UIDs, GIDs, and IP addresses
//! in the traces with arbitrary but consistent values. ... filename
//! suffixes are anonymized separately from the rest of the filename, so
//! all files that share the same suffix will have anonymized names that
//! end in the anonymized form of that suffix. ... We do not use hashing
//! or any other deterministic method to do the anonymization", because
//! deterministic maps enable offline known-text attacks and cross-site
//! joins.
//!
//! Key properties, each covered by tests:
//!
//! - **consistency**: the same value maps to the same token within one
//!   anonymizer;
//! - **non-determinism**: two anonymizers built with different secrets
//!   produce different mappings;
//! - **suffix sharing**: `a.c` and `b.c` both end in the same
//!   anonymized suffix;
//! - **special prefixes/suffixes** (`#x#`, `x~`, `x,v`, `.lock`):
//!   structure is preserved so `#foo#` anonymizes to the wrapped
//!   anonymization of `foo`;
//! - **passthrough**: configured well-known names (`CVS`, `.pinerc`,
//!   `inbox`, `lock`, uid 0, ...) survive verbatim;
//! - **omission mode**: names/identities can be dropped entirely.

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod anonymizer;
pub mod names;
pub mod tables;

pub use anonymizer::{Anonymizer, AnonymizerConfig};
pub use names::NameAnonymizer;
pub use tables::IdTable;
