//! Consistent random-assignment tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Maps 32-bit identities (UIDs, GIDs, IPs) to arbitrary-but-consistent
/// replacement values.
///
/// Assignments are random draws (never hashes), collision-free, and
/// remembered for the table's lifetime. The whole table serializes so a
/// site can keep its mapping under access control.
///
/// # Examples
///
/// ```
/// use nfstrace_anonymize::IdTable;
///
/// let mut t = IdTable::new(7, &[0]);
/// let a = t.map(1001);
/// assert_eq!(t.map(1001), a);   // consistent
/// assert_eq!(t.map(0), 0);      // passthrough
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct IdTable {
    seed: u64,
    assigned: HashMap<u32, u32>,
    used: HashSet<u32>,
    passthrough: HashSet<u32>,
    #[serde(skip, default = "default_rng")]
    rng: Option<StdRng>,
}

fn default_rng() -> Option<StdRng> {
    None
}

impl IdTable {
    /// Creates a table with a secret `seed` and identities that must
    /// never be rewritten (e.g. uid 0 and 1, per the paper's treatment
    /// of root and daemon).
    pub fn new(seed: u64, passthrough: &[u32]) -> Self {
        let passthrough: HashSet<u32> = passthrough.iter().copied().collect();
        IdTable {
            seed,
            assigned: HashMap::new(),
            used: passthrough.clone(),
            passthrough,
            rng: Some(StdRng::seed_from_u64(seed)),
        }
    }

    /// Maps an identity, assigning a fresh random token on first sight.
    pub fn map(&mut self, id: u32) -> u32 {
        if self.passthrough.contains(&id) {
            return id;
        }
        if let Some(&v) = self.assigned.get(&id) {
            return v;
        }
        let rng = self.rng.get_or_insert_with(|| {
            // After deserialization the RNG resumes from a state salted
            // by how many assignments already exist.
            StdRng::seed_from_u64(self.seed ^ (self.assigned.len() as u64) << 13)
        });
        let mut candidate = rng.gen::<u32>();
        while self.used.contains(&candidate) {
            candidate = rng.gen::<u32>();
        }
        self.assigned.insert(id, candidate);
        self.used.insert(candidate);
        candidate
    }

    /// Number of assignments made.
    pub fn len(&self) -> usize {
        self.assigned.len()
    }

    /// Whether no assignment has been made.
    pub fn is_empty(&self) -> bool {
        self.assigned.is_empty()
    }
}

/// Maps strings (name stems, suffixes) to consistent random tokens.
#[derive(Debug, Serialize, Deserialize)]
pub struct StringTable {
    seed: u64,
    prefix: String,
    assigned: HashMap<String, String>,
    used: HashSet<String>,
    #[serde(skip, default = "default_rng")]
    rng: Option<StdRng>,
}

impl StringTable {
    /// Creates a table whose tokens start with `prefix` (e.g. `"n"` for
    /// name stems, `"s"` for suffixes).
    pub fn new(seed: u64, prefix: &str) -> Self {
        StringTable {
            seed,
            prefix: prefix.to_string(),
            assigned: HashMap::new(),
            used: HashSet::new(),
            rng: Some(StdRng::seed_from_u64(seed)),
        }
    }

    /// Maps a string, assigning a fresh random token on first sight.
    pub fn map(&mut self, s: &str) -> String {
        if let Some(v) = self.assigned.get(s) {
            return v.clone();
        }
        let prefix = self.prefix.clone();
        let rng = self.rng.get_or_insert_with(|| {
            StdRng::seed_from_u64(self.seed ^ (self.assigned.len() as u64) << 17)
        });
        let mut token = format!("{prefix}{:06x}", rng.gen::<u32>() & 0xff_ffff);
        while self.used.contains(&token) {
            token = format!("{prefix}{:06x}", rng.gen::<u32>() & 0xff_ffff);
        }
        self.assigned.insert(s.to_string(), token.clone());
        self.used.insert(token.clone());
        token
    }

    /// Number of assignments made.
    pub fn len(&self) -> usize {
        self.assigned.len()
    }

    /// Whether no assignment has been made.
    pub fn is_empty(&self) -> bool {
        self.assigned.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_table_consistent_and_collision_free() {
        let mut t = IdTable::new(1, &[]);
        let vals: Vec<u32> = (0..500).map(|i| t.map(i)).collect();
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(t.map(i as u32), v);
        }
        let distinct: HashSet<u32> = vals.iter().copied().collect();
        assert_eq!(distinct.len(), vals.len());
    }

    #[test]
    fn id_table_seeds_differ() {
        let mut a = IdTable::new(1, &[]);
        let mut b = IdTable::new(2, &[]);
        let same = (0..100).filter(|&i| a.map(i) == b.map(i)).count();
        assert!(same < 5, "seeds should give different mappings ({same})");
    }

    #[test]
    fn id_table_passthrough() {
        let mut t = IdTable::new(3, &[0, 1]);
        assert_eq!(t.map(0), 0);
        assert_eq!(t.map(1), 1);
        assert_ne!(t.map(2), 2); // overwhelmingly likely
    }

    #[test]
    fn id_table_serde_roundtrip_keeps_assignments() {
        let mut t = IdTable::new(4, &[]);
        let a = t.map(77);
        let json = serde_json::to_string(&t).unwrap();
        let mut t2: IdTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t2.map(77), a);
        // New assignments still work after deserialization.
        let b = t2.map(88);
        assert_ne!(a, b);
    }

    #[test]
    fn string_table_consistent() {
        let mut t = StringTable::new(5, "n");
        let a = t.map("inbox-stem");
        assert_eq!(t.map("inbox-stem"), a);
        assert!(a.starts_with('n'));
        assert_ne!(t.map("other"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn string_table_no_collisions_small_space() {
        let mut t = StringTable::new(6, "s");
        let tokens: HashSet<String> = (0..2000).map(|i| t.map(&format!("k{i}"))).collect();
        assert_eq!(tokens.len(), 2000);
    }
}
