//! Filename anonymization with suffix and special-form preservation.
//!
//! The paper's rules (§2):
//!
//! - suffixes are anonymized separately from stems, so files sharing a
//!   suffix share the anonymized suffix;
//! - special prefixes/suffixes (`#…#`, `…~`, `…,v`) are preserved
//!   structurally, keeping the relationship between `#foo#` and `foo`;
//! - configured common names (`CVS`, `.pinerc`, `inbox`, …) and
//!   components (`lock`) pass through unchanged;
//! - a leading dot is structural (a dot file stays a dot file).

use crate::tables::StringTable;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Anonymizes last-path-components.
#[derive(Debug, Serialize, Deserialize)]
pub struct NameAnonymizer {
    stems: StringTable,
    suffixes: StringTable,
    passthrough_names: HashSet<String>,
    passthrough_suffixes: HashSet<String>,
}

impl NameAnonymizer {
    /// Creates a name anonymizer with the paper-inspired default
    /// passthrough sets.
    pub fn new(seed: u64) -> Self {
        let passthrough_names: HashSet<String> = [
            "CVS",
            ".inbox",
            ".pinerc",
            ".cshrc",
            ".login",
            ".profile",
            "inbox",
            "mbox",
            "core",
            "lock",
            "received",
            "sent-mail",
            "saved-messages",
        ]
        .into_iter()
        .map(str::to_string)
        .collect();
        let passthrough_suffixes: HashSet<String> = ["lock", "log", "o", "c", "h", "tmp"]
            .into_iter()
            .map(str::to_string)
            .collect();
        NameAnonymizer {
            stems: StringTable::new(seed ^ 0x5335_0001, "f"),
            suffixes: StringTable::new(seed ^ 0x5335_0002, "x"),
            passthrough_names,
            passthrough_suffixes,
        }
    }

    /// Adds a name that must pass through unchanged.
    pub fn add_passthrough_name(&mut self, name: &str) {
        self.passthrough_names.insert(name.to_string());
    }

    /// Adds a suffix (without the dot) that must pass through unchanged.
    pub fn add_passthrough_suffix(&mut self, suffix: &str) {
        self.passthrough_suffixes.insert(suffix.to_string());
    }

    /// Anonymizes one last-path-component.
    pub fn map(&mut self, name: &str) -> String {
        if name.is_empty() || self.passthrough_names.contains(name) {
            return name.to_string();
        }
        // Special editor form: #inner# → #map(inner)#.
        if name.len() > 2 && name.starts_with('#') && name.ends_with('#') {
            let inner = &name[1..name.len() - 1];
            return format!("#{}#", self.map(inner));
        }
        // Backup form: inner~ → map(inner)~.
        if name.len() > 1 && name.ends_with('~') {
            let inner = &name[..name.len() - 1];
            return format!("{}~", self.map(inner));
        }
        // RCS form: inner,v → map(inner),v.
        if name.len() > 2 && name.ends_with(",v") {
            let inner = &name[..name.len() - 2];
            return format!("{},v", self.map(inner));
        }
        // Leading dot is structural.
        if let Some(rest) = name.strip_prefix('.') {
            if !rest.is_empty() && !rest.starts_with('.') {
                return format!(".{}", self.map(rest));
            }
        }
        // Split the suffix at the last dot; anonymize the parts
        // independently so suffix equivalence classes survive.
        if let Some(idx) = name.rfind('.') {
            if idx > 0 && idx + 1 < name.len() {
                let stem = &name[..idx];
                let suffix = &name[idx + 1..];
                let anon_suffix = if self.passthrough_suffixes.contains(suffix) {
                    suffix.to_string()
                } else {
                    self.suffixes.map(suffix)
                };
                return format!("{}.{}", self.map_stem(stem), anon_suffix);
            }
        }
        self.map_stem(name)
    }

    fn map_stem(&mut self, stem: &str) -> String {
        if self.passthrough_names.contains(stem) {
            stem.to_string()
        } else {
            self.stems.map(stem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon() -> NameAnonymizer {
        NameAnonymizer::new(99)
    }

    #[test]
    fn consistent_mapping() {
        let mut a = anon();
        assert_eq!(a.map("thesis-draft"), a.map("thesis-draft"));
        assert_ne!(a.map("thesis-draft"), a.map("other-file"));
    }

    #[test]
    fn suffix_classes_preserved() {
        let mut a = anon();
        let x = a.map("alpha.dat");
        let y = a.map("beta.dat");
        let sx = x.rsplit('.').next().unwrap().to_string();
        let sy = y.rsplit('.').next().unwrap().to_string();
        assert_eq!(sx, sy, "{x} vs {y}");
        // Different stems anonymize differently.
        assert_ne!(x.split('.').next(), y.split('.').next());
    }

    #[test]
    fn passthrough_suffixes_stay_readable() {
        let mut a = anon();
        let m = a.map("secretuser.lock");
        assert!(m.ends_with(".lock"), "{m}");
        assert!(!m.starts_with("secretuser"));
        let m = a.map("module77.c");
        assert!(m.ends_with(".c"), "{m}");
    }

    #[test]
    fn special_forms_wrap_inner_mapping() {
        let mut a = anon();
        let plain = a.map("notes.txt");
        assert_eq!(a.map("#notes.txt#"), format!("#{plain}#"));
        assert_eq!(a.map("notes.txt~"), format!("{plain}~"));
        assert_eq!(a.map("notes.txt,v"), format!("{plain},v"));
    }

    #[test]
    fn dot_files_stay_dot_files() {
        let mut a = anon();
        let m = a.map(".secretrc");
        assert!(m.starts_with('.'), "{m}");
        assert_ne!(m, ".secretrc");
    }

    #[test]
    fn common_names_pass_through() {
        let mut a = anon();
        for n in ["CVS", ".pinerc", "inbox", "mbox", "core"] {
            assert_eq!(a.map(n), n);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NameAnonymizer::new(1);
        let mut b = NameAnonymizer::new(2);
        assert_ne!(a.map("projectplan"), b.map("projectplan"));
    }

    #[test]
    fn category_classification_survives() {
        use nfstrace_core::names::{classify, FileCategory};
        let mut a = anon();
        assert_eq!(classify(&a.map("userxyz.lock")), FileCategory::Lock);
        assert_eq!(classify(&a.map(".secretrc")), FileCategory::Dot);
        assert_eq!(classify(&a.map("inbox")), FileCategory::Mailbox);
        assert_eq!(classify(&a.map("private.c,v")), FileCategory::Rcs);
        assert_eq!(classify(&a.map("#draft.txt#")), FileCategory::EditorTmp);
    }

    #[test]
    fn empty_and_degenerate_names() {
        let mut a = anon();
        assert_eq!(a.map(""), "");
        // Bare "#" and "~" and "." are not special forms.
        assert_ne!(a.map("#"), "#");
        let t = a.map("~");
        assert!(!t.is_empty());
    }

    #[test]
    fn serde_roundtrip_preserves_mapping() {
        let mut a = anon();
        let before = a.map("keepsake.doc");
        let json = serde_json::to_string(&a).unwrap();
        let mut b: NameAnonymizer = serde_json::from_str(&json).unwrap();
        assert_eq!(b.map("keepsake.doc"), before);
    }
}
