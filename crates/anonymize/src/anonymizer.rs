//! The record-level anonymizer.

use crate::names::NameAnonymizer;
use crate::tables::IdTable;
use nfstrace_core::record::{FileId, TraceRecord};
use serde::{Deserialize, Serialize};

/// What to anonymize and what to omit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnonymizerConfig {
    /// Secret seed; keep it out of published traces.
    pub seed: u64,
    /// UIDs that pass through (root, daemon by default).
    pub passthrough_uids: Vec<u32>,
    /// GIDs that pass through.
    pub passthrough_gids: Vec<u32>,
    /// "It is also possible to configure the anonymizer to omit all
    /// filename, UID, GID, and IP information entirely."
    pub omit_names: bool,
    /// Omit identities (uid/gid/client) instead of mapping them.
    pub omit_identities: bool,
}

impl Default for AnonymizerConfig {
    fn default() -> Self {
        AnonymizerConfig {
            seed: 0x6e66_7374,
            passthrough_uids: vec![0, 1],
            passthrough_gids: vec![0, 1],
            omit_names: false,
            omit_identities: false,
        }
    }
}

/// Anonymizes trace records with arbitrary-but-consistent mappings.
///
/// # Examples
///
/// ```
/// use nfstrace_anonymize::{Anonymizer, AnonymizerConfig};
/// use nfstrace_core::record::{FileId, Op, TraceRecord};
///
/// let mut anon = Anonymizer::new(AnonymizerConfig::default());
/// let rec = TraceRecord::new(0, Op::Lookup, FileId(7)).with_name("secret.txt");
/// let out = anon.anonymize(&rec);
/// assert_ne!(out.name.as_deref(), Some("secret.txt"));
/// // Consistency: anonymizing again gives the same output.
/// assert_eq!(anon.anonymize(&rec), out);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Anonymizer {
    config: AnonymizerConfig,
    uids: IdTable,
    gids: IdTable,
    ips: IdTable,
    fhs: IdTable,
    names: NameAnonymizer,
    /// Direct whole-handle map shadowing `fhs`. File handles are the
    /// hottest identities (up to three per record), and the half-based
    /// `IdTable` scheme costs two lookups each; this cache answers
    /// repeat handles with one. Rebuilt lazily after deserialization —
    /// the `IdTable` mappings it mirrors are stable.
    #[serde(skip, default = "default_fh_cache")]
    fh_cache: std::collections::HashMap<u64, u64>,
}

fn default_fh_cache() -> std::collections::HashMap<u64, u64> {
    std::collections::HashMap::new()
}

impl Anonymizer {
    /// Creates an anonymizer from a configuration.
    pub fn new(config: AnonymizerConfig) -> Self {
        Anonymizer {
            uids: IdTable::new(config.seed ^ 0x1, &config.passthrough_uids),
            gids: IdTable::new(config.seed ^ 0x2, &config.passthrough_gids),
            ips: IdTable::new(config.seed ^ 0x3, &[]),
            fhs: IdTable::new(config.seed ^ 0x4, &[]),
            names: NameAnonymizer::new(config.seed ^ 0x5),
            fh_cache: default_fh_cache(),
            config,
        }
    }

    /// Access to the name anonymizer, to extend passthrough sets.
    pub fn names_mut(&mut self) -> &mut NameAnonymizer {
        &mut self.names
    }

    /// Anonymizes one record.
    pub fn anonymize(&mut self, r: &TraceRecord) -> TraceRecord {
        let mut out = r.clone();
        if self.config.omit_identities {
            out.uid = 0;
            out.gid = 0;
            out.client = 0;
            out.server = 0;
        } else {
            out.uid = self.uids.map(r.uid);
            out.gid = self.gids.map(r.gid);
            out.client = self.ips.map(r.client);
            out.server = self.ips.map(r.server);
        }
        // File handles are opaque server tokens but can still leak
        // inode numbers; remap them consistently.
        out.fh = self.map_fh(r.fh);
        out.fh2 = r.fh2.map(|f| self.map_fh(f));
        out.new_fh = r.new_fh.map(|f| self.map_fh(f));
        if self.config.omit_names {
            out.name = None;
            out.name2 = None;
        } else {
            out.name = r.name.as_deref().map(|n| self.names.map(n));
            out.name2 = r.name2.as_deref().map(|n| self.names.map(n));
        }
        out
    }

    fn map_fh(&mut self, fh: FileId) -> FileId {
        if let Some(&mapped) = self.fh_cache.get(&fh.0) {
            return FileId(mapped);
        }
        let lo = self.fhs.map(fh.0 as u32);
        let hi = self.fhs.map((fh.0 >> 32) as u32);
        let mapped = (u64::from(hi) << 32) | u64::from(lo);
        self.fh_cache.insert(fh.0, mapped);
        FileId(mapped)
    }

    /// Anonymizes a whole trace.
    pub fn anonymize_trace(&mut self, records: &[TraceRecord]) -> Vec<TraceRecord> {
        records.iter().map(|r| self.anonymize(r)).collect()
    }

    /// Serializes the mapping state to JSON (to be stored under access
    /// control at the traced site).
    ///
    /// # Errors
    ///
    /// Any `serde_json` serialization error.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Restores an anonymizer (with its mappings) from JSON.
    ///
    /// # Errors
    ///
    /// Any `serde_json` deserialization error.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_core::record::Op;

    fn rec(uid: u32, name: &str) -> TraceRecord {
        let mut r = TraceRecord::new(5, Op::Lookup, FileId(1234)).with_name(name);
        r.uid = uid;
        r.gid = 100;
        r.client = 0x0a000001;
        r.new_fh = Some(FileId(5678));
        r
    }

    #[test]
    fn identities_mapped_consistently() {
        let mut a = Anonymizer::new(AnonymizerConfig::default());
        let o1 = a.anonymize(&rec(1001, "x.c"));
        let o2 = a.anonymize(&rec(1001, "y.c"));
        assert_eq!(o1.uid, o2.uid);
        assert_ne!(o1.uid, 1001);
        assert_eq!(o1.client, o2.client);
        assert_ne!(o1.client, 0x0a000001);
    }

    #[test]
    fn root_uid_passes_through() {
        let mut a = Anonymizer::new(AnonymizerConfig::default());
        assert_eq!(a.anonymize(&rec(0, "f")).uid, 0);
    }

    #[test]
    fn fh_identity_preserved_across_fields() {
        let mut a = Anonymizer::new(AnonymizerConfig::default());
        let mut r1 = rec(5, "f");
        r1.fh = FileId(42);
        let mut r2 = rec(5, "g");
        r2.fh = FileId(9);
        r2.new_fh = Some(FileId(42)); // same file seen as a lookup result
        let o1 = a.anonymize(&r1);
        let o2 = a.anonymize(&r2);
        assert_eq!(Some(o1.fh), o2.new_fh);
        assert_ne!(o1.fh, FileId(42));
    }

    #[test]
    fn timing_and_op_fields_untouched() {
        let mut a = Anonymizer::new(AnonymizerConfig::default());
        let mut r = rec(5, "f");
        r.offset = 8192;
        r.count = 4096;
        r.eof = true;
        let o = a.anonymize(&r);
        assert_eq!(o.micros, r.micros);
        assert_eq!(o.op, r.op);
        assert_eq!(o.offset, 8192);
        assert_eq!(o.count, 4096);
        assert!(o.eof);
    }

    #[test]
    fn omit_modes() {
        let mut a = Anonymizer::new(AnonymizerConfig {
            omit_names: true,
            omit_identities: true,
            ..AnonymizerConfig::default()
        });
        let o = a.anonymize(&rec(1001, "secret"));
        assert_eq!(o.name, None);
        assert_eq!(o.uid, 0);
        assert_eq!(o.client, 0);
    }

    #[test]
    fn two_sites_cannot_be_joined() {
        // Different seeds: the same filename maps differently, so traces
        // from different sites cannot be compared name-by-name (§2).
        let mut site_a = Anonymizer::new(AnonymizerConfig {
            seed: 111,
            ..AnonymizerConfig::default()
        });
        let mut site_b = Anonymizer::new(AnonymizerConfig {
            seed: 222,
            ..AnonymizerConfig::default()
        });
        let r = rec(1001, "grant-proposal.tex");
        assert_ne!(site_a.anonymize(&r).name, site_b.anonymize(&r).name);
    }

    #[test]
    fn state_roundtrips_through_json() {
        let mut a = Anonymizer::new(AnonymizerConfig::default());
        let before = a.anonymize(&rec(1001, "keep.dat"));
        let json = a.to_json().unwrap();
        let mut b = Anonymizer::from_json(&json).unwrap();
        let after = b.anonymize(&rec(1001, "keep.dat"));
        assert_eq!(before, after);
    }

    #[test]
    fn fh_fast_path_matches_table_path() {
        // The whole-handle cache must be invisible: hitting it, missing
        // it, and rebuilding it after deserialization all yield the
        // mapping the underlying IdTable halves define.
        let mut a = Anonymizer::new(AnonymizerConfig::default());
        let fh = FileId(0xdead_beef_0042);
        let first = a.map_fh(fh);
        assert_eq!(a.map_fh(fh), first, "cache hit differs from miss");
        let json = a.to_json().unwrap();
        let mut b = Anonymizer::from_json(&json).unwrap();
        assert_eq!(b.map_fh(fh), first, "rebuilt cache diverged");
        // A handle sharing one 32-bit half still shares that half.
        let sibling = FileId(0xdead_beef_0042 ^ (1 << 40));
        assert_eq!(
            a.map_fh(sibling).0 as u32,
            first.0 as u32,
            "low half must be mapped identically"
        );
    }

    #[test]
    fn analyses_agree_on_raw_and_anonymized_traces() {
        // The paper's promise: anonymization preserves "the information
        // necessary for almost any analysis".
        use nfstrace_core::summary::SummaryStats;
        let mut records = Vec::new();
        for i in 0..50u64 {
            let mut r =
                TraceRecord::new(i * 1000, Op::Read, FileId(i % 5)).with_range(i * 8192, 8192);
            r.uid = 1000 + (i % 3) as u32;
            records.push(r);
        }
        let mut a = Anonymizer::new(AnonymizerConfig::default());
        let anon = a.anonymize_trace(&records);
        let s1 = SummaryStats::from_records(records.iter());
        let s2 = SummaryStats::from_records(anon.iter());
        assert_eq!(s1.total_ops, s2.total_ops);
        assert_eq!(s1.bytes_read, s2.bytes_read);
        assert_eq!(s1.rw_bytes_ratio(), s2.rw_bytes_ratio());
    }
}
