//! Doc lint: every metric name registered anywhere in the pipeline
//! must appear in the README's Observability table. A metric that
//! exports without documentation is invisible to an operator; this
//! test fails the build the moment code registers a name the table
//! doesn't carry.
//!
//! The scan covers string literals passed to `.counter("...")`,
//! `.gauge("...")`, `.histogram("...")`, and the two-argument
//! `span!(registry, "...")` form, across every `crates/*/src` tree
//! except `crates/telemetry` itself (whose unit tests and doc
//! examples use deliberately fake names like `a.hits`).

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The string literal opening at `text[start..]` (which must begin
/// with `"`), if it closes on the same expression.
fn string_literal(text: &str, start: usize) -> Option<&str> {
    let body = &text[start + 1..];
    body.find('"').map(|end| &body[..end])
}

/// Metric names registered in `text` via method calls or `span!`.
fn registered_names(text: &str) -> Vec<String> {
    let mut names = Vec::new();
    for method in [".counter(", ".gauge(", ".histogram(", "span!("] {
        for (at, _) in text.match_indices(method) {
            let after = at + method.len();
            let rest = &text[after..];
            // Method forms register iff the first argument is a string
            // literal; `span!` registers iff its *second* argument is
            // one (the one-argument form reuses a resolved handle).
            let candidate = if method == "span!(" {
                let close = rest.find(')').unwrap_or(rest.len());
                rest[..close].find('"').map(|q| after + q)
            } else {
                let trimmed = rest.trim_start();
                trimmed
                    .starts_with('"')
                    .then(|| after + (rest.len() - trimmed.len()))
            };
            if let Some(q) = candidate {
                let name = string_literal(text, q).expect("unterminated metric name literal");
                names.push(name.to_string());
            }
        }
    }
    names
}

#[test]
fn every_registered_metric_is_documented_in_the_readme() {
    let root = workspace_root();
    let readme = std::fs::read_to_string(root.join("README.md")).expect("read README.md");

    let crates_dir = root.join("crates");
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(&crates_dir).expect("read crates/") {
        let path = entry.expect("dir entry").path();
        if path.file_name().is_some_and(|n| n == "telemetry") {
            continue;
        }
        let src = path.join("src");
        if src.is_dir() {
            rust_sources(&src, &mut sources);
        }
    }
    assert!(sources.len() > 10, "source scan found almost nothing");

    let mut undocumented = Vec::new();
    let mut checked = 0usize;
    for path in sources {
        let text = std::fs::read_to_string(&path).expect("read source file");
        for name in registered_names(&text) {
            checked += 1;
            if !readme.contains(&format!("`{name}`")) {
                undocumented.push(format!("{} registers {name:?}", path.display()));
            }
        }
    }
    assert!(
        checked >= 40,
        "only {checked} metric registrations found; the scan is likely broken"
    );
    assert!(
        undocumented.is_empty(),
        "metrics missing from the README Observability table:\n  {}",
        undocumented.join("\n  ")
    );
}
