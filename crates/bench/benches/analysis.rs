//! Benchmarks of the analysis suite over a synthetic day.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nfstrace_bench::tables;
use nfstrace_core::lifetime::{analyze, LifetimeConfig};
use nfstrace_core::reorder;
use nfstrace_core::runs::{runs_for_trace, RunOptions};
use nfstrace_core::summary::SummaryStats;
use nfstrace_workload::{CampusConfig, CampusWorkload};

fn day_trace() -> Vec<nfstrace_core::record::TraceRecord> {
    CampusWorkload::new(CampusConfig {
        users: 10,
        duration_micros: nfstrace_core::time::DAY,
        seed: 5,
        ..CampusConfig::default()
    })
    .generate()
}

fn bench_analyses(c: &mut Criterion) {
    let records = day_trace();
    let n = records.len() as u64;
    let mut g = c.benchmark_group("analysis");
    g.throughput(Throughput::Elements(n));
    g.bench_function("summary", |b| {
        b.iter(|| SummaryStats::from_records(records.iter()))
    });
    g.bench_function("runs_processed_cold", |b| {
        // The legacy shape: bucket + sort + split from scratch.
        b.iter(|| {
            let mut per_file = reorder::accesses_by_file(records.iter());
            for list in per_file.values_mut() {
                let list: &mut Vec<_> = std::sync::Arc::make_mut(list);
                reorder::sort_within_window(list, 10 * 1000);
            }
            runs_for_trace(&per_file, RunOptions::default())
        })
    });
    g.bench_function("runs_processed_indexed", |b| {
        // The indexed shape: the sort pass happened once at build time.
        let idx = nfstrace_core::TraceIndex::new(records.clone());
        idx.runs(10, RunOptions::default());
        b.iter(|| tables::trace_runs(&idx, 10, RunOptions::default()))
    });
    g.bench_function("reorder_sweep", |b| {
        b.iter(|| {
            let per_file = reorder::accesses_by_file(records.iter());
            reorder::swap_fraction_sweep(&per_file, &[0, 5, 10, 20, 50])
        })
    });
    g.bench_function("block_lifetime", |b| {
        b.iter(|| {
            analyze(
                records.iter(),
                LifetimeConfig {
                    phase1_start: 0,
                    phase1_len: nfstrace_core::time::DAY / 2,
                    phase2_len: nfstrace_core::time::DAY / 2,
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_analyses);
criterion_main!(benches);
