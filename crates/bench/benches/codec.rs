//! Microbenchmarks of the wire codecs: XDR, RPC, NFS, and full frames.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nfstrace_nfs::fh::FileHandle;
use nfstrace_nfs::v3::{Call3, Proc3, Read3Args, Write3Args};
use nfstrace_rpc::auth::{AuthUnix, OpaqueAuth};
use nfstrace_rpc::RpcMessage;
use nfstrace_xdr::{Pack, Unpack};

fn bench_xdr(c: &mut Criterion) {
    let mut g = c.benchmark_group("xdr");
    let payload = vec![0u8; 8192];
    g.throughput(Throughput::Bytes(8192));
    g.bench_function("opaque_roundtrip_8k", |b| {
        b.iter(|| {
            let bytes = payload.to_xdr_bytes();
            Vec::<u8>::from_xdr_bytes(&bytes).unwrap()
        })
    });
    g.finish();
}

fn bench_nfs_calls(c: &mut Criterion) {
    let mut g = c.benchmark_group("nfs");
    let read = Call3::Read(Read3Args {
        file: FileHandle::from_u64(42),
        offset: 1 << 20,
        count: 8192,
    });
    g.bench_function("encode_decode_read_call", |b| {
        b.iter(|| {
            let bytes = read.encode_args();
            Call3::decode(Proc3::Read, &bytes).unwrap()
        })
    });
    let write = Call3::Write(Write3Args {
        file: FileHandle::from_u64(42),
        offset: 0,
        count: 8192,
        stable: Default::default(),
        data: vec![0; 8192],
    });
    g.throughput(Throughput::Bytes(8192));
    g.bench_function("encode_decode_write_call_8k", |b| {
        b.iter(|| {
            let bytes = write.encode_args();
            Call3::decode(Proc3::Write, &bytes).unwrap()
        })
    });
    g.finish();
}

fn bench_rpc(c: &mut Criterion) {
    let cred = OpaqueAuth::unix(&AuthUnix::new("bench-client", 1000, 100));
    let msg = RpcMessage::call(7, nfstrace_rpc::PROG_NFS, 3, 6, cred, vec![0u8; 128]);
    c.bench_function("rpc/message_roundtrip", |b| {
        b.iter(|| {
            let bytes = msg.to_xdr_bytes();
            RpcMessage::from_xdr_bytes(&bytes).unwrap()
        })
    });
}

criterion_group!(benches, bench_xdr, bench_nfs_calls, bench_rpc);
criterion_main!(benches);
