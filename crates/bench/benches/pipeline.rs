//! End-to-end pipeline benchmarks: workload generation, wire encoding,
//! sniffing, anonymization throughput, and the indexed-vs-legacy
//! analysis comparison.
//!
//! Besides the usual stdout report, this bench emits
//! `BENCH_pipeline.json` at the repository root so indexed-vs-legacy
//! wall-clock is tracked across PRs (the CI smoke job runs
//! `cargo bench --bench pipeline`). The JSON also carries the
//! hand-recorded `repro` wall-clock measurements around the TraceIndex
//! refactor, which the ≥2x acceptance bar refers to.

use criterion::{criterion_group, Criterion, Throughput};
use nfstrace_anonymize::{Anonymizer, AnonymizerConfig};
use nfstrace_bench::tables;
use nfstrace_core::index::{TraceIndex, TraceView};
use nfstrace_core::record::TraceRecord;
use nfstrace_live::{LiveConfig, LiveIngest, ShardedLiveIngest, SlicedWorkloadSource};
use nfstrace_serve::{serve_roundtrip, ReplayOptions, ReplayPlan};
use nfstrace_sniffer::{Sniffer, WireEncoder};
use nfstrace_store::{StoreConfig, StoreIndex, StoreWriter};
use nfstrace_workload::{CampusConfig, CampusWorkload, EecsConfig, EecsWorkload, SlicedWorkload};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate");
    g.sample_size(10);
    g.bench_function("campus_hour_10users", |b| {
        b.iter(|| {
            CampusWorkload::new(CampusConfig {
                users: 10,
                duration_micros: nfstrace_core::time::HOUR * 12,
                seed: 5,
                ..CampusConfig::default()
            })
            .generate()
        })
    });
    g.bench_function("eecs_hour_10users", |b| {
        b.iter(|| {
            EecsWorkload::new(EecsConfig {
                users: 10,
                duration_micros: nfstrace_core::time::HOUR * 12,
                seed: 5,
                ..EecsConfig::default()
            })
            .generate()
        })
    });
    g.finish();
}

fn bench_sniffer(c: &mut Criterion) {
    // Pre-encode a packet batch from a small trace.
    use nfstrace_client::{ClientConfig, ClientMachine};
    use nfstrace_fssim::NfsServer;
    let mut server = NfsServer::new(2);
    let root = server.root_fh();
    let mut client = ClientMachine::new(ClientConfig {
        nfsiods: 1,
        ..ClientConfig::default()
    });
    let (fh, t) = client.create(&mut server, 0, &root, "f");
    let fh = fh.unwrap();
    server
        .fs_mut()
        .write(fh.as_u64().unwrap(), 0, 8 << 20, t)
        .unwrap();
    client.read_file(&mut server, t + 40_000_000, &fh);
    let events = client.take_events();
    let mut enc = WireEncoder::tcp_jumbo();
    let packets: Vec<_> = events.iter().flat_map(|e| enc.encode_event(e)).collect();
    let bytes: u64 = packets.iter().map(|p| p.data.len() as u64).sum();

    let mut g = c.benchmark_group("sniffer");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("tcp_decode_8mb_read", |b| {
        b.iter(|| {
            let mut s = Sniffer::new();
            for p in &packets {
                s.observe(p);
            }
            s.finish()
        })
    });
    g.finish();
}

/// The synthetic multi-client capture behind both the criterion group
/// and the JSON capture numbers: 8 clients against one server, each
/// creating a file, writing 4 MiB, reading it back, and removing it —
/// metadata and data traffic mixed over standard-MSS TCP, so the
/// sniffer's reassembly, record-marking, and zero-copy decode paths
/// are all on the measured path.
fn capture_corpus() -> Vec<nfstrace_net::pcap::CapturedPacket> {
    use nfstrace_client::{ClientConfig, ClientMachine};
    use nfstrace_fssim::NfsServer;
    let mut server = NfsServer::new(9);
    let root = server.root_fh();
    let mut events = Vec::new();
    for c in 0..8u32 {
        let mut client = ClientMachine::new(ClientConfig {
            ip: 0x0a00_0010 + c,
            uid: 100 + c,
            gid: 100,
            nfsiods: 1,
            seed: u64::from(c),
            ..ClientConfig::default()
        });
        let name = format!("f{c}");
        let (fh, t) = client.create(&mut server, u64::from(c) * 1_000, &root, &name);
        let fh = fh.unwrap();
        let t = client.write(&mut server, t, &fh, 0, 4 << 20);
        let t = client.read_file(&mut server, t + 1_000, &fh);
        client.remove(&mut server, t, &root, &name);
        events.extend(client.take_events());
    }
    events.sort_by_key(|e| e.wire_micros);
    let mut enc = WireEncoder::tcp_standard();
    events.iter().flat_map(|e| enc.encode_event(e)).collect()
}

fn bench_capture(c: &mut Criterion) {
    let packets = capture_corpus();
    let records = {
        let mut s = Sniffer::new();
        for p in &packets {
            s.observe(p);
        }
        s.finish().0.len() as u64
    };
    let mut g = c.benchmark_group("capture");
    g.throughput(Throughput::Elements(records));
    g.bench_function("tcp_multi_client_zero_copy", |b| {
        b.iter(|| {
            let mut s = Sniffer::new();
            s.observe_batch(&packets);
            s.finish()
        })
    });
    g.finish();
}

fn bench_anonymize(c: &mut Criterion) {
    let records = CampusWorkload::new(CampusConfig {
        users: 6,
        duration_micros: nfstrace_core::time::HOUR * 6,
        seed: 5,
        ..CampusConfig::default()
    })
    .generate();
    let mut g = c.benchmark_group("anonymize");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("trace", |b| {
        b.iter(|| {
            let mut a = Anonymizer::new(AnonymizerConfig::default());
            a.anonymize_trace(&records)
        })
    });
    g.finish();
}

/// The artifact set every analysis path drives (the lifetime-window
/// artifacts need 8-day traces and are exercised by `repro` itself).
/// One source of truth: the legacy, indexed, and store measurements
/// all instantiate this list, so the tracked speedup ratios always
/// compare identical work.
fn artifacts<V: TraceView>() -> [fn(&V, &V) -> usize; 9] {
    [
        |c, e| tables::table1(c, e).text.len(),
        |c, e| tables::table2(c, e).text.len(),
        |c, e| tables::table3(c, e).text.len(),
        |c, e| tables::table5(c, e).text.len(),
        |c, e| tables::fig1(c, e).text.len(),
        |c, e| tables::fig2(c, e).text.len(),
        |c, e| tables::fig4(c, e).text.len(),
        |c, e| tables::fig5(c, e).text.len(),
        |c, _| tables::names_report(c).len(),
    ]
}

/// Runs every artifact against one shared index pair — generic, so the
/// in-memory and store-backed measurements drive identical code.
fn run_artifacts<V: TraceView>(campus: &V, eecs: &V) -> usize {
    artifacts::<V>().iter().map(|f| f(campus, eecs)).sum()
}

/// The day-long comparison workloads. Criterion and the JSON tracker
/// must measure the *same* scenario, so both get it from here.
fn analysis_campus() -> CampusWorkload {
    CampusWorkload::new(CampusConfig {
        users: 6,
        duration_micros: nfstrace_core::time::DAY,
        seed: 42,
        ..CampusConfig::default()
    })
}

/// See [`analysis_campus`].
fn analysis_eecs() -> EecsWorkload {
    EecsWorkload::new(EecsConfig {
        users: 4,
        duration_micros: nfstrace_core::time::DAY,
        seed: 1789,
        ..EecsConfig::default()
    })
}

/// Number of full artifact sweeps both analysis paths perform.
const ANALYSIS_SWEEPS: usize = 3;

/// Legacy shape: every artifact of every sweep rebuilds its own view
/// of the trace, as the pre-TraceIndex code did — no cross-artifact
/// cache sharing at all.
fn legacy_analysis(campus: &[TraceRecord], eecs: &[TraceRecord]) -> usize {
    let mut chars = 0;
    for _ in 0..ANALYSIS_SWEEPS {
        for artifact in artifacts::<TraceIndex>() {
            let ci = TraceIndex::new(campus.to_vec());
            let ei = TraceIndex::new(eecs.to_vec());
            chars += artifact(&ci, &ei);
        }
    }
    chars
}

/// Indexed shape: one build, every further sweep a cache hit.
fn indexed_analysis(campus: &[TraceRecord], eecs: &[TraceRecord]) -> usize {
    let ci = TraceIndex::new(campus.to_vec());
    let ei = TraceIndex::new(eecs.to_vec());
    let mut chars = 0;
    for _ in 0..ANALYSIS_SWEEPS {
        chars += run_artifacts(&ci, &ei);
    }
    chars
}

fn bench_analysis_paths(c: &mut Criterion) {
    let campus = analysis_campus().generate();
    let eecs = analysis_eecs().generate();
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("legacy_fresh_index_per_artifact", |b| {
        b.iter(|| legacy_analysis(&campus, &eecs))
    });
    g.bench_function("indexed_shared", |b| {
        b.iter(|| indexed_analysis(&campus, &eecs))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_sniffer,
    bench_capture,
    bench_anonymize,
    bench_analysis_paths
);

/// What the out-of-core measurement reports.
struct StoreNumbers {
    /// Seconds to generate both traces into stores and index them.
    build_s: f64,
    /// Seconds for the artifact sweeps against the store indices.
    analysis_s: f64,
    /// Total chunks across both stores.
    chunks: usize,
    /// Total on-disk bytes of both (compressed) stores.
    lz_bytes: u64,
    /// The same records re-serialized without compression.
    raw_bytes: u64,
}

/// The out-of-core shape: generate both day-long traces straight into
/// chunked, per-chunk-compressed store files, open chunk-parallel
/// store indices, run the same artifact sweeps — and re-serialize both
/// stores raw to track what compression buys on disk.
fn store_analysis(dir: &std::path::Path) -> StoreNumbers {
    use std::time::Instant;
    std::fs::create_dir_all(dir).expect("store dir");
    let threads = nfstrace_core::parallel::threads();
    let cfg = StoreConfig {
        // Day-long bench traces are small; keep several chunks in play
        // so the chunk-parallel path is actually exercised.
        target_chunk_bytes: 256 << 10,
        ..StoreConfig::default()
    };
    let t = Instant::now();
    let campus_path = dir.join("campus.nfstore");
    let mut w = StoreWriter::create(&campus_path, cfg).expect("create store");
    analysis_campus()
        .generate_into(threads, &mut w)
        .expect("stream campus");
    let mut lz_bytes = w.finish().expect("finish store").file_bytes;
    let eecs_path = dir.join("eecs.nfstore");
    let mut w = StoreWriter::create(&eecs_path, cfg).expect("create store");
    analysis_eecs()
        .generate_into(threads, &mut w)
        .expect("stream eecs");
    lz_bytes += w.finish().expect("finish store").file_bytes;
    let ci = StoreIndex::open(&campus_path).expect("open campus store");
    let ei = StoreIndex::open(&eecs_path).expect("open eecs store");
    let build_s = t.elapsed().as_secs_f64();
    let chunks = ci.reader().chunk_count() + ei.reader().chunk_count();

    let t = Instant::now();
    let mut chars = 0;
    for _ in 0..ANALYSIS_SWEEPS {
        chars += run_artifacts(&ci, &ei);
    }
    assert!(chars > 0);
    let analysis_s = t.elapsed().as_secs_f64();

    // Compression effectiveness: stream the same records back out into
    // raw (uncompressed) v2 stores and compare file sizes.
    let raw_cfg = StoreConfig {
        compression: nfstrace_store::Compression::None,
        ..cfg
    };
    let mut raw_bytes = 0;
    for (idx, name) in [(&ci, "campus-raw.nfstore"), (&ei, "eecs-raw.nfstore")] {
        let mut w = StoreWriter::create(dir.join(name), raw_cfg).expect("create raw store");
        idx.reader()
            .for_each(|r| w.push(r).expect("push raw"))
            .expect("stream records");
        raw_bytes += w.finish().expect("finish raw store").file_bytes;
    }

    StoreNumbers {
        build_s,
        analysis_s,
        chunks,
        lz_bytes,
        raw_bytes,
    }
}

/// What the live-ingest measurement reports.
struct LiveNumbers {
    /// Seconds to live-ingest the day-long CAMPUS trace (sliced
    /// generation → rotating segment ingest) and reopen the merged
    /// segment index.
    ingest_s: f64,
    /// Sealed segments produced.
    segments: usize,
    /// Peak hot-tail records (bounded by the rotation threshold).
    peak_hot_records: usize,
    /// Peak records in one generation slice's merged batch.
    peak_batch_records: usize,
    /// Peak generated-but-unsunk records inside the sliced generator.
    gen_peak_resident_records: usize,
    /// Records ingested.
    total_records: u64,
}

/// The live shape over the same day-long CAMPUS scenario the other
/// analysis paths measure: bounded slices in, rotated segments out,
/// peaks recorded.
fn live_ingest_numbers(dir: &std::path::Path) -> LiveNumbers {
    use std::time::Instant;
    std::fs::remove_dir_all(dir).ok();
    let threads = nfstrace_core::parallel::threads();
    let t = Instant::now();
    let mut ingest = LiveIngest::create(LiveConfig {
        dir: dir.to_path_buf(),
        store: StoreConfig {
            target_chunk_bytes: 256 << 10,
            ..StoreConfig::default()
        },
        rotate_records: 50_000,
        rotate_micros: nfstrace_core::time::HOUR * 4,
        ..LiveConfig::new(dir)
    })
    .expect("create live ingest");
    let mut source = SlicedWorkloadSource::new(SlicedWorkload::campus(
        analysis_campus().config,
        nfstrace_core::time::HOUR * 2,
        threads,
    ));
    ingest.run(&mut source).expect("live ingest");
    let gen_peak = source.generator().peak_resident_records();
    let summary = ingest.finish().expect("finish live ingest");
    let merged = StoreIndex::open_dir(dir).expect("open segment dir");
    let ingest_s = t.elapsed().as_secs_f64();
    assert_eq!(TraceView::len(&merged) as u64, summary.total_records);
    LiveNumbers {
        ingest_s,
        segments: summary.segments,
        peak_hot_records: summary.peak_hot_records,
        peak_batch_records: summary.peak_batch_records,
        gen_peak_resident_records: gen_peak,
        total_records: summary.total_records,
    }
}

/// What the offline compaction + pruning-planner measurement reports.
struct CompactionNumbers {
    /// Catalog segments before / after the fan-in-3 cascade.
    segments_before: usize,
    segments_after: usize,
    /// Merge passes the cascade performed (`store.compactions`).
    compactions: u64,
    /// Seconds for the whole offline `compact_all` cascade (k-way
    /// streaming merge + filter/footer recompute + atomic swap).
    compact_s: f64,
    /// Chunk decodes for a full scan vs a 4-hour window over the
    /// compacted catalog — the planner must make the window strictly
    /// cheaper.
    full_chunks_decoded: u64,
    window_chunks_decoded: u64,
    /// Whole segments the planner dismissed by footer time range on
    /// that window (`store.segments_pruned`), and the fraction of the
    /// compacted catalog that is.
    window_segments_pruned: u64,
    window_pruned_fraction: f64,
}

/// The lifecycle shape over the same day-long CAMPUS scenario: rotate
/// segments as [`live_ingest_numbers`] does, then compact the sealed
/// catalog offline at fan-in 3 and price a 4-hour windowed query
/// against a full scan over the generation-tagged result.
fn compaction_numbers(dir: &std::path::Path) -> CompactionNumbers {
    use nfstrace_store::compact::FaultInjector;
    use nfstrace_store::{CompactionPolicy, Compactor, SegmentCatalog};
    use std::time::Instant;
    std::fs::remove_dir_all(dir).ok();
    let threads = nfstrace_core::parallel::threads();
    let cfg = StoreConfig {
        target_chunk_bytes: 256 << 10,
        ..StoreConfig::default()
    };
    let mut ingest = LiveIngest::create(LiveConfig {
        store: cfg,
        rotate_records: 50_000,
        rotate_micros: nfstrace_core::time::HOUR * 4,
        ..LiveConfig::new(dir)
    })
    .expect("create live ingest");
    let mut source = SlicedWorkloadSource::new(SlicedWorkload::campus(
        analysis_campus().config,
        nfstrace_core::time::HOUR * 2,
        threads,
    ));
    ingest.run(&mut source).expect("live ingest");
    let total = ingest.finish().expect("finish live ingest").total_records;

    let registry = nfstrace_telemetry::Registry::new();
    let mut catalog = SegmentCatalog::open_and_sweep(dir).expect("open catalog");
    let segments_before = catalog.len();
    let compactor = Compactor::new(CompactionPolicy { fan_in: 3 }, cfg, &registry);
    let t = Instant::now();
    compactor
        .compact_all(&mut catalog, &mut FaultInjector::none())
        .expect("compact catalog");
    let compact_s = t.elapsed().as_secs_f64();
    let segments_after = catalog.len();
    let compactions = registry.counter("store.compactions").value();

    let merged = StoreIndex::open_dir_with_registry(dir, &registry).expect("open compacted dir");
    assert_eq!(TraceView::len(&merged) as u64, total);
    let decoded = registry.counter("store.chunks_decoded");
    let pruned = registry.counter("store.segments_pruned");
    let d0 = decoded.value();
    let full = merged.time_window(0, u64::MAX);
    let full_chunks_decoded = decoded.value() - d0;
    let p0 = pruned.value();
    let d1 = decoded.value();
    let window = merged.time_window(nfstrace_core::time::HOUR * 2, nfstrace_core::time::HOUR * 6);
    let window_chunks_decoded = decoded.value() - d1;
    let window_segments_pruned = pruned.value() - p0;
    assert!(TraceView::len(&window) <= TraceView::len(&full));
    CompactionNumbers {
        segments_before,
        segments_after,
        compactions,
        compact_s,
        full_chunks_decoded,
        window_chunks_decoded,
        window_segments_pruned,
        window_pruned_fraction: window_segments_pruned as f64 / segments_after.max(1) as f64,
    }
}

/// What the sharded live-ingest measurement reports.
struct ShardedLiveNumbers {
    /// Seconds to ingest the day-long CAMPUS trace through the
    /// multi-writer daemon (slice generation + batch fan-out +
    /// per-slice snapshots).
    ingest_s: f64,
    /// Shard count measured.
    shards: usize,
    /// Each shard's peak hot-tail records, in shard order — the
    /// sharded daemon's resident-record bound is their sum.
    per_shard_peak_hot: Vec<usize>,
    /// Mid-ingest snapshots taken (one per generation slice).
    snapshots: usize,
    /// Total seconds across those snapshots. With the copy-on-write
    /// running partial this is O(shards · hot-map clone) per call, not
    /// O(distinct files + accesses) — the number regression-tracked
    /// here.
    snapshot_s: f64,
    total_records: u64,
}

/// The sharded shape over the same day-long CAMPUS scenario: batch
/// fan-out across shards, with a merged `LiveView` snapshot taken after
/// *every* slice to price mid-ingest querying.
fn sharded_live_numbers(dir: &std::path::Path, shards: usize) -> ShardedLiveNumbers {
    use std::time::Instant;
    std::fs::remove_dir_all(dir).ok();
    let threads = nfstrace_core::parallel::threads();
    let t = Instant::now();
    let mut ingest = ShardedLiveIngest::create(
        LiveConfig {
            store: StoreConfig {
                target_chunk_bytes: 256 << 10,
                ..StoreConfig::default()
            },
            rotate_records: 50_000,
            rotate_micros: nfstrace_core::time::HOUR * 4,
            ..LiveConfig::new(dir)
        },
        shards,
    )
    .expect("create sharded ingest");
    let mut sliced = SlicedWorkload::campus(
        analysis_campus().config,
        nfstrace_core::time::HOUR * 2,
        threads,
    );
    let mut batch: Vec<TraceRecord> = Vec::new();
    let mut snapshot_s = 0.0;
    let mut snapshots = 0usize;
    loop {
        batch.clear();
        if !sliced.next_slice_into(&mut batch).expect("slice") {
            break;
        }
        ingest.ingest_batch(&batch).expect("sharded ingest");
        let ts = Instant::now();
        let view = ingest.view();
        assert_eq!(view.len() as u64, ingest.total_records());
        snapshot_s += ts.elapsed().as_secs_f64();
        snapshots += 1;
    }
    let per_shard_peak_hot: Vec<usize> = ingest
        .shards()
        .iter()
        .map(|s| s.peak_hot_records())
        .collect();
    let total_records = ingest.total_records();
    ingest.finish().expect("finish sharded ingest");
    ShardedLiveNumbers {
        ingest_s: t.elapsed().as_secs_f64(),
        shards,
        per_shard_peak_hot,
        snapshots,
        snapshot_s,
        total_records,
    }
}

/// What the serving-loop measurement reports.
struct ServeNumbers {
    /// Calls served (== the plan's call count; asserted).
    calls: u64,
    /// Seconds for the whole closed loop: serve over loopback TCP,
    /// replay, tap, frame, sniff, live-ingest.
    roundtrip_s: f64,
    /// `calls / roundtrip_s`.
    calls_per_s: f64,
    /// Replay client RTT percentiles (histogram bucket upper bounds).
    rtt_p50_us: u64,
    rtt_p99_us: u64,
    /// Server-side dispatch mean (decode + plan lookup + encode).
    dispatch_mean_us: f64,
    /// Replay connections used.
    connections: usize,
}

/// The serving-loop shape over the same day-long CAMPUS scenario: the
/// trace compiled to wire RPC, served by the record-marked loopback
/// TCP server, replayed with a bounded window, and the tap captured
/// back into a segment store — the full generate → serve → capture →
/// analyze cycle priced as one number.
fn serve_numbers(dir: &std::path::Path) -> ServeNumbers {
    use std::time::Instant;
    std::fs::remove_dir_all(dir).ok();
    let records = analysis_campus().generate();
    let plan = ReplayPlan::from_records(&records);
    let options = ReplayOptions {
        connections: 2,
        ..ReplayOptions::default()
    };
    let registry = nfstrace_telemetry::Registry::new();
    let t = Instant::now();
    let outcome = serve_roundtrip(&plan, &options, &registry, dir).expect("serve roundtrip");
    let roundtrip_s = t.elapsed().as_secs_f64();
    assert_eq!(outcome.unplanned_calls, 0, "unplanned calls");
    assert_eq!(outcome.replay.retransmits, 0, "loopback retransmits");
    assert_eq!(outcome.summary.total_records, plan.calls.len() as u64);
    let calls = registry.counter("serve.calls").value();
    assert_eq!(calls, plan.calls.len() as u64, "served calls");
    let rtt = registry.histogram("replay.rtt_micros").snapshot();
    ServeNumbers {
        calls,
        roundtrip_s,
        calls_per_s: calls as f64 / roundtrip_s.max(1e-9),
        rtt_p50_us: rtt.percentile(0.5),
        rtt_p99_us: rtt.percentile(0.99),
        dispatch_mean_us: registry
            .histogram("serve.dispatch_micros")
            .snapshot()
            .mean(),
        connections: options.connections,
    }
}

/// What the telemetry-overhead measurement reports.
struct TelemetryNumbers {
    /// Best capture wall-clock with default private registries nobody
    /// reads (the shape every earlier PR measured).
    plain_best_s: f64,
    /// Best capture wall-clock counting into a shared registry while a
    /// background [`nfstrace_telemetry::Exporter`] samples it.
    exported_best_s: f64,
    /// `(exported - plain) / plain`, percent. The budget is < 2%.
    overhead_pct: f64,
}

/// Prices telemetry on the hottest instrumented path: the capture
/// corpus through the zero-copy sniffer. Each timed pass replays the
/// corpus several times (a single replay is ~10 ms — too short to
/// resolve a sub-2% effect under scheduler jitter on small runners),
/// both sides take the best of several passes, and the sides
/// interleave so cache and frequency drift hit them evenly.
/// The exported side shares one registry across runs with a live
/// exporter sampling at 1 s — a daemon's cadence. What's being priced
/// is the per-record cost (the striped atomics on the decode path);
/// exporter ticks are amortized per interval, not per record, so the
/// interval is chosen so a best-of pass exists without a tick in it.
fn telemetry_overhead(packets: &[nfstrace_net::pcap::CapturedPacket]) -> TelemetryNumbers {
    use nfstrace_telemetry::{Exporter, ExporterConfig, Registry};
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!("nfstrace-bench-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("telemetry bench dir");
    let registry = Registry::new();
    let exporter = Exporter::spawn(
        registry.clone(),
        ExporterConfig {
            interval: Duration::from_secs(1),
            jsonl_path: Some(dir.join("overhead.jsonl")),
            prometheus_path: Some(dir.join("overhead.prom")),
            stderr: false,
        },
    )
    .expect("spawn exporter");

    const REPLAYS_PER_PASS: usize = 5;
    const PASSES: usize = 7;
    let mut plain_best_s = f64::INFINITY;
    let mut exported_best_s = f64::INFINITY;
    for _ in 0..PASSES {
        let mut plain_records = 0usize;
        let t = Instant::now();
        for _ in 0..REPLAYS_PER_PASS {
            let mut s = Sniffer::new();
            s.observe_batch(packets);
            plain_records = s.finish().0.len();
        }
        plain_best_s = plain_best_s.min(t.elapsed().as_secs_f64() / REPLAYS_PER_PASS as f64);

        let mut exported_records = 0usize;
        let t = Instant::now();
        for _ in 0..REPLAYS_PER_PASS {
            let mut s = Sniffer::with_registry(&registry);
            s.observe_batch(packets);
            exported_records = s.finish().0.len();
        }
        exported_best_s = exported_best_s.min(t.elapsed().as_secs_f64() / REPLAYS_PER_PASS as f64);
        assert_eq!(exported_records, plain_records);
    }
    exporter.stop().expect("stop exporter");
    std::fs::remove_dir_all(&dir).ok();

    TelemetryNumbers {
        plain_best_s,
        exported_best_s,
        overhead_pct: (exported_best_s - plain_best_s) / plain_best_s.max(1e-9) * 100.0,
    }
}

/// One-shot wall-clock numbers for `BENCH_pipeline.json` (measured with
/// plain `Instant`, independent of the criterion stub's windowing).
fn write_pipeline_json() {
    use std::time::Instant;
    let t = Instant::now();
    let campus = analysis_campus().generate_with_threads(1);
    let gen_serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _sharded =
        analysis_campus().generate_with_threads(nfstrace_core::parallel::threads().max(2));
    let gen_sharded_s = t.elapsed().as_secs_f64();
    let eecs = analysis_eecs().generate();

    let t = Instant::now();
    legacy_analysis(&campus, &eecs);
    let legacy_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    indexed_analysis(&campus, &eecs);
    let indexed_s = t.elapsed().as_secs_f64();

    // Per-process dir: concurrent bench runs must not truncate each
    // other's store files mid-write.
    let store_dir =
        std::env::temp_dir().join(format!("nfstrace-bench-store-{}", std::process::id()));
    let store = store_analysis(&store_dir);
    std::fs::remove_dir_all(&store_dir).ok();

    let live_dir = std::env::temp_dir().join(format!("nfstrace-bench-live-{}", std::process::id()));
    let live = live_ingest_numbers(&live_dir);
    std::fs::remove_dir_all(&live_dir).ok();

    let sharded_dir =
        std::env::temp_dir().join(format!("nfstrace-bench-sharded-{}", std::process::id()));
    let sharded = sharded_live_numbers(&sharded_dir, 4);
    std::fs::remove_dir_all(&sharded_dir).ok();

    let compact_dir =
        std::env::temp_dir().join(format!("nfstrace-bench-compact-{}", std::process::id()));
    let compaction = compaction_numbers(&compact_dir);
    std::fs::remove_dir_all(&compact_dir).ok();

    let serve_dir =
        std::env::temp_dir().join(format!("nfstrace-bench-serve-{}", std::process::id()));
    let serve = serve_numbers(&serve_dir);
    std::fs::remove_dir_all(&serve_dir).ok();

    // Capture throughput: the multi-client TCP corpus through the
    // zero-copy sniffer, best-of-3 (the corpus uses standard-MSS
    // segments, so TCP reassembly and record re-marking are on the
    // measured path, not just the borrowed decode).
    let capture_packets = capture_corpus();
    let capture_wire_bytes: u64 = capture_packets.iter().map(|p| p.data.len() as u64).sum();
    let mut capture_best_s = f64::INFINITY;
    let mut capture_records = 0usize;
    for _ in 0..3 {
        let t = Instant::now();
        let mut s = Sniffer::new();
        s.observe_batch(&capture_packets);
        let (recs, _stats) = s.finish();
        capture_records = recs.len();
        capture_best_s = capture_best_s.min(t.elapsed().as_secs_f64());
    }

    let telemetry = telemetry_overhead(&capture_packets);

    let json = format!(
        r#"{{
  "bench": "pipeline",
  "history": {{
    "note": "frozen hand-timed records of ./target/release/repro at NFSTRACE_SCALE=1.0; NOT remeasured by this bench — the regression-tracked signal is `measured` below",
    "pre_refactor_samples": [36.57, 23.19],
    "post_refactor_samples": [17.72, 15.25, 9.18],
    "pr3_multi_worker": {{
      "note": "hand-timed on the PR 3 runner (1 CPU: thread counts above 1 are determinism coverage, not speedup) — in-memory vs --store out-of-core, best-of-3 each",
      "cpus": 1,
      "in_memory": {{"threads_1_s": 6.87, "threads_2_s": 7.11}},
      "store": {{"threads_1_s": 10.81, "threads_2_s": 12.07}}
    }},
    "pr4_fused_store": {{
      "note": "hand-timed on the PR 4 runner (again 1 CPU) after the fused replay (7 decode passes -> construction + 1) and v2 per-chunk compression landed; store-over-memory overhead fell from +57% (PR 3) to +36% best-of-3, with stores ~2.4x smaller on disk",
      "cpus": 1,
      "in_memory": {{"threads_1_s": 7.02, "threads_2_s": 6.11}},
      "store": {{"threads_1_s": 9.55, "threads_2_s": 9.89}},
      "store_bytes_scale_1": {{"campus": 29574062, "eecs": 23508542}}
    }},
    "pr7_zero_copy_capture": {{
      "note": "hand-measured on the PR 7 runner with crates/sniffer/examples/capture_throughput.rs (8-client create/write-4MiB/read-back/remove TCP capture; best of 5 passes per run, median of 3 interleaved before/after runs) around the borrowed zero-alloc decode path landing; the acceptance bar was >=2x records/s",
      "mss1448_records_per_s": {{"before": 69470, "after": 162632, "speedup": 2.34}},
      "jumbo_records_per_s": {{"before": 105735, "after": 310158, "speedup": 2.93}}
    }},
    "pr8_telemetry": {{
      "note": "frozen from the PR 8 runner (1 CPU) when the unified metrics registry landed; the `telemetry_*` fields below remeasure this shape every run (interleaved best-of-7 passes of 5 corpus replays each: private unread registries vs one shared registry under a live 1 s exporter) — repeated runs centered on zero (-0.9, -0.4, +0.2, +0.6 pct across four), within noise of the plain side and inside the < 2% acceptance budget",
      "capture_plain_best_s": 0.0098,
      "capture_exported_best_s": 0.0097,
      "overhead_pct": -0.42
    }},
    "pr10_serve_loop": {{
      "note": "frozen from the PR 10 runner (1 CPU) when the nfstrace-serve crate landed: the record-marked NFSv3-over-loopback-TCP server, the windowed replay client, and the tap that mirrors every exchanged byte into the sniffer + live ingest; the `serve_*` fields below remeasure the day-long CAMPUS shape every run; at scale 0.1 the `serve` bin closed the loop over both 8-day traces (290287 calls, zero retransmissions, suite output byte-identical to `repro --store`) with CAMPUS at ~6k calls/s (900 MiB of wire bytes through one core) and EECS at ~88k calls/s, replay rtt p50 511 us / p99 8191 us, dispatch mean ~24 us over 2 connections per system",
      "scale_0_1_calls": 290287,
      "scale_0_1_campus_calls_per_s": 6000,
      "scale_0_1_eecs_calls_per_s": 88000,
      "scale_0_1_rtt_p50_us": 511,
      "scale_0_1_rtt_p99_us": 8191,
      "connections": 2
    }},
    "pr9_compaction": {{
      "note": "frozen from the PR 9 runner (1 CPU) when generation-tagged segment compaction, size/age retention, and the footer-pruning query planner landed; the `compact_*` fields below remeasure this shape every run — the day-long CAMPUS segment catalog compacts offline at fan-in 3 (streaming k-way merge, filters and footers recomputed, crash-safe swap) and a 4-hour windowed query over the compacted catalog must decode strictly fewer chunks than a full scan; the 8-day CI compaction-smoke additionally pins suite byte-identity over the compacted + retained catalog and `store.segments_pruned > 0`",
      "segments_before": 6,
      "segments_after": 2,
      "compactions": 2,
      "compact_s": 0.013,
      "window_pruned_fraction": 0.50,
      "window_chunks_decoded": 1,
      "full_chunks_decoded": 3
    }}
  }},
  "measured": {{
    "note": "measured fresh by every run of `cargo bench --bench pipeline` on small day-long traces; `legacy` rebuilds its view per artifact (the pre-refactor shape), `indexed` shares one TraceIndex across all sweeps, `store` streams generation into chunked per-chunk-compressed store files and analyzes them out-of-core; the byte counts compare those files against a raw re-serialization; `live_*` streams the same CAMPUS day through the time-sliced generator into a rotating segment ingest (peaks show the bounded-memory contract: hot tail + one slice, never the trace); `live_sharded_*` runs that day through the multi-writer daemon at a fixed shard count with a merged-view snapshot after every slice — per-shard hot peaks bound sharded residency and the snapshot mean prices copy-on-write mid-ingest querying; `capture_*` replays the synthetic 8-client standard-MSS TCP capture through the zero-copy sniffer (reassembly + borrowed decode + single materialization), best-of-3; `telemetry_*` interleaves best-of-7 passes of 5 capture replays each, private unread registries against one shared registry sampled by a live 1 s exporter (budget: < 2% overhead, expect noise of a few pct either side of zero on shared runners); `compact_*` rotates that CAMPUS day into a segment catalog, compacts it offline at fan-in 3 (generation-tagged streaming merges), and prices a 4-hour windowed query against a full scan — footer-pruned segments never decode a chunk; `serve_*` compiles that CAMPUS day to wire RPC, serves it from the loopback TCP server, replays it over 2 windowed connections, and live-ingests the tapped byte streams back into a segment store — the closed serve/capture loop priced end to end (asserting zero unplanned calls and zero retransmissions); peak_rss_kb is this process's VmHWM and cpus the runner's available parallelism",
    "generate_campus_day_serial_s": {gen_serial_s:.3},
    "generate_campus_day_sharded_s": {gen_sharded_s:.3},
    "threads": {threads},
    "analysis_sweeps": {sweeps},
    "analysis_legacy_fresh_index_per_artifact_s": {legacy_s:.3},
    "analysis_indexed_shared_s": {indexed_s:.3},
    "analysis_speedup": {aspeed:.2},
    "store_generate_and_index_s": {store_build_s:.3},
    "analysis_store_shared_s": {store_analysis_s:.3},
    "store_chunks": {store_chunks},
    "store_vs_indexed_analysis_ratio": {sratio:.2},
    "store_file_bytes_compressed": {lz_bytes},
    "store_file_bytes_raw": {raw_bytes},
    "store_compression_ratio": {cratio:.2},
    "cpus": {cpus},
    "peak_rss_kb": {peak_rss},
    "live_ingest_s": {live_s:.3},
    "live_segments": {live_segments},
    "live_total_records": {live_total},
    "live_peak_hot_records": {live_hot},
    "live_peak_slice_records": {live_slice},
    "live_gen_peak_resident_records": {live_gen},
    "live_sharded_shards": {sh_shards},
    "live_sharded_ingest_s": {sh_ingest_s:.3},
    "live_sharded_total_records": {sh_total},
    "live_sharded_per_shard_peak_hot_records": {sh_peaks:?},
    "live_sharded_snapshots": {sh_snaps},
    "live_sharded_snapshot_total_s": {sh_snap_s:.4},
    "live_sharded_snapshot_mean_ms": {sh_snap_ms:.3},
    "capture_packets": {cap_packets},
    "capture_wire_bytes": {cap_bytes},
    "capture_records": {cap_records},
    "capture_best_s": {cap_s:.4},
    "capture_records_per_s": {cap_rps:.0},
    "capture_mib_per_s": {cap_mibps:.0},
    "telemetry_capture_plain_best_s": {tel_plain_s:.4},
    "telemetry_capture_exported_best_s": {tel_exp_s:.4},
    "telemetry_overhead_pct": {tel_pct:.2},
    "compact_fan_in": 3,
    "compact_segments_before": {c_before},
    "compact_segments_after": {c_after},
    "compact_compactions": {c_n},
    "compact_s": {c_s:.4},
    "compact_full_chunks_decoded": {c_full},
    "compact_window_chunks_decoded": {c_win},
    "compact_window_segments_pruned": {c_pruned},
    "compact_window_pruned_fraction": {c_frac:.2},
    "serve_calls": {srv_calls},
    "serve_roundtrip_s": {srv_s:.3},
    "serve_calls_per_s": {srv_cps:.0},
    "serve_rtt_p50_us": {srv_p50},
    "serve_rtt_p99_us": {srv_p99},
    "serve_dispatch_mean_us": {srv_disp:.1},
    "serve_connections": {srv_conns}
  }}
}}
"#,
        threads = nfstrace_core::parallel::threads(),
        sweeps = ANALYSIS_SWEEPS,
        aspeed = legacy_s / indexed_s.max(1e-9),
        sratio = store.analysis_s / indexed_s.max(1e-9),
        store_build_s = store.build_s,
        store_analysis_s = store.analysis_s,
        store_chunks = store.chunks,
        lz_bytes = store.lz_bytes,
        raw_bytes = store.raw_bytes,
        cratio = store.raw_bytes as f64 / store.lz_bytes.max(1) as f64,
        cpus = std::thread::available_parallelism().map_or(1, |n| n.get()),
        peak_rss = nfstrace_bench::suite::peak_rss_kb().unwrap_or(0),
        live_s = live.ingest_s,
        live_segments = live.segments,
        live_total = live.total_records,
        live_hot = live.peak_hot_records,
        live_slice = live.peak_batch_records,
        live_gen = live.gen_peak_resident_records,
        sh_shards = sharded.shards,
        sh_ingest_s = sharded.ingest_s,
        sh_total = sharded.total_records,
        sh_peaks = sharded.per_shard_peak_hot,
        sh_snaps = sharded.snapshots,
        sh_snap_s = sharded.snapshot_s,
        sh_snap_ms = sharded.snapshot_s * 1000.0 / sharded.snapshots.max(1) as f64,
        cap_packets = capture_packets.len(),
        cap_bytes = capture_wire_bytes,
        cap_records = capture_records,
        cap_s = capture_best_s,
        cap_rps = capture_records as f64 / capture_best_s.max(1e-9),
        cap_mibps = capture_wire_bytes as f64 / capture_best_s.max(1e-9) / (1 << 20) as f64,
        tel_plain_s = telemetry.plain_best_s,
        tel_exp_s = telemetry.exported_best_s,
        tel_pct = telemetry.overhead_pct,
        c_before = compaction.segments_before,
        c_after = compaction.segments_after,
        c_n = compaction.compactions,
        c_s = compaction.compact_s,
        c_full = compaction.full_chunks_decoded,
        c_win = compaction.window_chunks_decoded,
        c_pruned = compaction.window_segments_pruned,
        c_frac = compaction.window_pruned_fraction,
        srv_calls = serve.calls,
        srv_s = serve.roundtrip_s,
        srv_cps = serve.calls_per_s,
        srv_p50 = serve.rtt_p50_us,
        srv_p99 = serve.rtt_p99_us,
        srv_disp = serve.dispatch_mean_us,
        srv_conns = serve.connections,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    print!("{json}");
}

fn main() {
    benches();
    write_pipeline_json();
}
