//! End-to-end pipeline benchmarks: workload generation, wire encoding,
//! sniffing, and anonymization throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nfstrace_anonymize::{Anonymizer, AnonymizerConfig};
use nfstrace_sniffer::{Sniffer, WireEncoder};
use nfstrace_workload::{CampusConfig, CampusWorkload, EecsConfig, EecsWorkload};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate");
    g.sample_size(10);
    g.bench_function("campus_hour_10users", |b| {
        b.iter(|| {
            CampusWorkload::new(CampusConfig {
                users: 10,
                duration_micros: nfstrace_core::time::HOUR * 12,
                seed: 5,
                ..CampusConfig::default()
            })
            .generate()
        })
    });
    g.bench_function("eecs_hour_10users", |b| {
        b.iter(|| {
            EecsWorkload::new(EecsConfig {
                users: 10,
                duration_micros: nfstrace_core::time::HOUR * 12,
                seed: 5,
                ..EecsConfig::default()
            })
            .generate()
        })
    });
    g.finish();
}

fn bench_sniffer(c: &mut Criterion) {
    // Pre-encode a packet batch from a small trace.
    use nfstrace_client::{ClientConfig, ClientMachine};
    use nfstrace_fssim::NfsServer;
    let mut server = NfsServer::new(2);
    let root = server.root_fh();
    let mut client = ClientMachine::new(ClientConfig {
        nfsiods: 1,
        ..ClientConfig::default()
    });
    let (fh, t) = client.create(&mut server, 0, &root, "f");
    let fh = fh.unwrap();
    server
        .fs_mut()
        .write(fh.as_u64().unwrap(), 0, 8 << 20, t)
        .unwrap();
    client.read_file(&mut server, t + 40_000_000, &fh);
    let events = client.take_events();
    let mut enc = WireEncoder::tcp_jumbo();
    let packets: Vec<_> = events.iter().flat_map(|e| enc.encode_event(e)).collect();
    let bytes: u64 = packets.iter().map(|p| p.data.len() as u64).sum();

    let mut g = c.benchmark_group("sniffer");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("tcp_decode_8mb_read", |b| {
        b.iter(|| {
            let mut s = Sniffer::new();
            for p in &packets {
                s.observe(p);
            }
            s.finish()
        })
    });
    g.finish();
}

fn bench_anonymize(c: &mut Criterion) {
    let records = CampusWorkload::new(CampusConfig {
        users: 6,
        duration_micros: nfstrace_core::time::HOUR * 6,
        seed: 5,
        ..CampusConfig::default()
    })
    .generate();
    let mut g = c.benchmark_group("anonymize");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("trace", |b| {
        b.iter(|| {
            let mut a = Anonymizer::new(AnonymizerConfig::default());
            a.anonymize_trace(&records)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_generation, bench_sniffer, bench_anonymize);
criterion_main!(benches);
