//! Standard simulated scenarios used by every table/figure binary.

use nfstrace_core::index::TraceIndex;
use nfstrace_core::record::TraceRecord;
use nfstrace_core::time::DAY;
use nfstrace_store::{StoreConfig, StoreIndex, StoreWriter};
use nfstrace_workload::{CampusConfig, CampusWorkload, EecsConfig, EecsWorkload};
use std::path::Path;

/// Base CAMPUS population at scale 1.0.
pub const CAMPUS_BASE_USERS: usize = 40;
/// Base EECS population at scale 1.0.
pub const EECS_BASE_USERS: usize = 24;

/// The canonical analysis week: Sunday through Saturday (the paper used
/// 10/21–10/27/2001), expressed in simulation days.
pub const WEEK_DAYS: u64 = 7;

/// Generates a CAMPUS trace of `days` days at the given scale.
pub fn campus(days: u64, scale: f64, seed: u64) -> Vec<TraceRecord> {
    CampusWorkload::new(campus_config(days, scale, seed)).generate()
}

/// Generates an EECS trace of `days` days at the given scale.
pub fn eecs(days: u64, scale: f64, seed: u64) -> Vec<TraceRecord> {
    EecsWorkload::new(eecs_config(days, scale, seed)).generate()
}

/// A full analysis week for both systems.
pub fn week_pair(scale: f64) -> (Vec<TraceRecord>, Vec<TraceRecord>) {
    (campus(WEEK_DAYS, scale, 42), eecs(WEEK_DAYS, scale, 1789))
}

/// Week-long traces for both systems, indexed for analysis.
pub fn week_index_pair(scale: f64) -> (TraceIndex, TraceIndex) {
    let (c, e) = week_pair(scale);
    (TraceIndex::new(c), TraceIndex::new(e))
}

/// Eight-day traces (the lifetime analyses need a full end margin after
/// the Friday window), indexed. The canonical analysis week is the
/// first seven days of these same traces — `idx.time_window(0, 7 * DAY)`
/// — so `repro` generates each system exactly once.
pub fn eight_day_index_pair(scale: f64) -> (TraceIndex, TraceIndex) {
    (
        TraceIndex::new(campus(8, scale, 42)),
        TraceIndex::new(eecs(8, scale, 1789)),
    )
}

/// The canonical CAMPUS configuration at a given length/scale/seed —
/// what every batch, store, and live path of the suite generates from,
/// so their record streams are bit-identical.
pub fn campus_config(days: u64, scale: f64, seed: u64) -> CampusConfig {
    CampusConfig {
        users: ((CAMPUS_BASE_USERS as f64 * scale) as usize).max(4),
        duration_micros: days * DAY,
        seed,
        ..CampusConfig::default()
    }
}

/// See [`campus_config`].
pub fn eecs_config(days: u64, scale: f64, seed: u64) -> EecsConfig {
    EecsConfig {
        users: ((EECS_BASE_USERS as f64 * scale) as usize).max(3),
        duration_micros: days * DAY,
        seed,
        ..EecsConfig::default()
    }
}

/// The canonical seeds of the suite's two systems (CAMPUS, EECS).
pub const CAMPUS_SEED: u64 = 42;
/// See [`CAMPUS_SEED`].
pub const EECS_SEED: u64 = 1789;

/// The out-of-core twin of [`eight_day_index_pair`]: generates the same
/// eight-day traces (same seeds, bit-identical record streams) directly
/// into chunked store files under `dir` — the merged record vectors are
/// never materialized — then opens chunk-parallel [`StoreIndex`]es over
/// them.
///
/// # Errors
///
/// Propagates store write/read failures.
pub fn eight_day_store_pair(
    scale: f64,
    dir: &Path,
    config: StoreConfig,
) -> nfstrace_store::Result<(StoreIndex, StoreIndex)> {
    std::fs::create_dir_all(dir).map_err(nfstrace_store::StoreError::Io)?;
    let threads = nfstrace_core::parallel::threads();

    let campus_path = dir.join("campus.nfstore");
    let mut w = StoreWriter::create(&campus_path, config)?;
    CampusWorkload::new(campus_config(8, scale, 42)).generate_into(threads, &mut w)?;
    w.finish()?;

    let eecs_path = dir.join("eecs.nfstore");
    let mut w = StoreWriter::create(&eecs_path, config)?;
    EecsWorkload::new(eecs_config(8, scale, 1789)).generate_into(threads, &mut w)?;
    w.finish()?;

    Ok((
        StoreIndex::open(&campus_path)?,
        StoreIndex::open(&eecs_path)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_still_generates() {
        let c = campus(1, 0.1, 1);
        let e = eecs(1, 0.1, 1);
        assert!(c.len() > 100);
        assert!(e.len() > 100);
    }
}
