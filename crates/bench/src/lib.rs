//! The benchmark harness: regenerates every table and figure of the
//! FAST 2003 paper from simulated CAMPUS and EECS workloads.
//!
//! Each `src/bin/` binary regenerates one artifact (`table1`…`table5`,
//! `fig1`…`fig5`, `expt_nfsiod`, `expt_readahead`, `expt_loss`), and
//! `repro` runs the full suite. Scale is controlled by the
//! `NFSTRACE_SCALE` environment variable (default 1.0): user counts and
//! thus run time grow linearly with it. Absolute numbers scale with the
//! simulated population; the *shapes* — who wins, by what factor, where
//! the knees fall — are what reproduce the paper.
//!
//! Every artifact is generic over [`nfstrace_core::index::TraceView`],
//! built once per trace, so the suite buckets and sorts each trace
//! exactly once per reorder window; `NFSTRACE_THREADS` shards trace
//! generation, chunk indexing, and the Figure 1 sweep across worker
//! threads without changing any output bit. `repro --store <dir>` runs
//! the identical suite out-of-core through the `nfstrace_store` chunked
//! trace store — byte-identical stdout, record memory bounded by chunk
//! size.

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod scenarios;
pub mod suite;
pub mod tables;

/// Reads the scale factor from `NFSTRACE_SCALE` (default 1.0, clamped
/// to a sane range).
pub fn scale() -> f64 {
    std::env::var("NFSTRACE_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 50.0)
}

/// Formats a row of right-aligned cells under a fixed width.
pub fn row(cells: &[String], width: usize) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>width$}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_defaults_to_one() {
        // The env var is unset in the test environment.
        if std::env::var("NFSTRACE_SCALE").is_err() {
            assert_eq!(super::scale(), 1.0);
        }
    }

    #[test]
    fn row_aligns() {
        let r = super::row(&["a".into(), "bb".into()], 4);
        assert_eq!(r, "   a   bb");
    }
}
