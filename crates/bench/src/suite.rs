//! The full reproduction suite as a reusable, view-generic function.
//!
//! `repro` (in-memory and `--store` out-of-core) and `live` (segment
//! directories written by a rotating ingest) all print **the same
//! bytes** for the same records; keeping the suite in one place is
//! what makes "byte-identical stdout" a meaningful cross-binary
//! assertion (CI `cmp`s the outputs).

use crate::{scenarios, tables};
use nfstrace_core::index::{ReplayRequest, TraceView};
use nfstrace_core::time::DAY;

/// Renders every table and figure over the 8-day pair and its
/// analysis-week windows, asserting the one-pass contracts (sorts
/// *and* replays) on the way. Returns exactly the bytes `repro`
/// historically printed to stdout. Progress goes to stderr.
pub fn suite_text<V: TraceView>(campus8: &V, eecs8: &V) -> String {
    eprintln!(
        "  CAMPUS: {} records, EECS: {} records",
        campus8.len(),
        eecs8.len()
    );
    eprintln!("indexing the analysis week ...");
    let campus_week = campus8.time_window(0, scenarios::WEEK_DAYS * DAY);
    let eecs_week = eecs8.time_window(0, scenarios::WEEK_DAYS * DAY);

    // Register every record-replaying analysis the suite is about to
    // run, so each view replays (for the store: decodes) its records
    // exactly once. The 8-day views serve only the five weekday
    // lifetime windows (Table 4 / Figure 3); the week views serve
    // Table 1's names + whole-span lifetime, plus — CAMPUS only —
    // the name-prediction report and hierarchy coverage.
    eprintln!("fusing replay analyses ...");
    campus8.prepare(&[ReplayRequest::WeekdayLifetime]);
    eecs8.prepare(&[ReplayRequest::WeekdayLifetime]);
    campus_week.prepare(&[
        ReplayRequest::Names,
        ReplayRequest::Lifetime(tables::table1_lifetime_config(&campus_week)),
        ReplayRequest::Coverage(tables::COVERAGE_BUCKET_MICROS),
    ]);
    eecs_week.prepare(&[
        ReplayRequest::Names,
        ReplayRequest::Lifetime(tables::table1_lifetime_config(&eecs_week)),
    ]);

    let mut out = String::new();
    let mut push = |text: String| {
        out.push_str(&text);
        out.push('\n');
    };
    push(tables::table1(&campus_week, &eecs_week).text);
    push(tables::table2(&campus_week, &eecs_week).text);
    push(tables::table3(&campus_week, &eecs_week).text);
    push(tables::table4(campus8, eecs8).text);
    push(tables::table5(&campus_week, &eecs_week).text);
    push(tables::fig1(&campus_week, &eecs_week).text);
    push(tables::fig2(&campus_week, &eecs_week).text);
    push(tables::fig3(campus8, eecs8).text);
    push(tables::fig4(&campus_week, &eecs_week).text);
    push(tables::fig5(&campus_week, &eecs_week).text);
    push(tables::names_report(&campus_week));
    push(tables::hierarchy_coverage(&campus_week));

    // The one-pass contracts: each index sorted its trace exactly once
    // per reorder window (CAMPUS 10 ms, EECS 5 ms), and each view
    // replayed (decoded) its records exactly once — the fused pass.
    for (name, passes, expect) in [
        ("campus week", campus_week.sort_passes(), 1),
        ("eecs week", eecs_week.sort_passes(), 1),
        ("campus 8-day", campus8.sort_passes(), 0),
        ("eecs 8-day", eecs8.sort_passes(), 0),
    ] {
        assert_eq!(passes, expect, "{name} sort passes");
    }
    for (name, view) in [
        ("campus week", &campus_week),
        ("eecs week", &eecs_week),
        ("campus 8-day", campus8),
        ("eecs 8-day", eecs8),
    ] {
        assert_eq!(view.decode_passes(), 1, "{name} decode passes");
    }
    out
}

/// Peak resident set size of this process so far, in kilobytes
/// (`VmHWM` on Linux; `None` elsewhere). What the pipeline bench and
/// the `live` bin record alongside wall-clock in
/// `BENCH_pipeline.json`.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
