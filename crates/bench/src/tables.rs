//! One function per paper artifact, producing printable text plus the
//! structured numbers the integration tests assert on.
//!
//! Every artifact is generic over [`TraceView`] — the analysis surface
//! both the in-memory `TraceIndex` and the out-of-core
//! `nfstrace_store::StoreIndex` implement — so the same code serves
//! traces held in RAM and traces streamed from a chunked store. The
//! index is built once per trace (one bucketing pass) and every table
//! and figure below pulls its reorder-corrected access streams, run
//! tables, lifetime reports, and hourly buckets from the index's
//! caches. Running the whole suite sorts each trace exactly once per
//! reorder window.

use nfstrace_core::historical;
use nfstrace_core::hourly::HourlySeries;
use nfstrace_core::index::{AccessMap, TraceView};
use nfstrace_core::lifetime::{LifetimeConfig, LifetimeReport};
use nfstrace_core::names::FileCategory;
use nfstrace_core::record::{Op, TraceRecord};
use nfstrace_core::runs::{PatternTable, Run, RunOptions, SizeProfile};
use nfstrace_core::seqmetric::{cumulative_runs_by_size, metric_by_run_size, MetricPoint};
use nfstrace_core::time::{DAY, HOUR};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// The paper's reorder windows: 5 ms for EECS, 10 ms for CAMPUS (§4.2).
pub const WINDOW_CAMPUS_MS: u64 = 10;
/// See [`WINDOW_CAMPUS_MS`].
pub const WINDOW_EECS_MS: u64 = 5;

/// The measurement interval [`hierarchy_coverage`] buckets by
/// (30 minutes) — public so replay-fusing callers can pre-register the
/// coverage request (`repro` does, via [`TraceView::prepare`]).
pub const COVERAGE_BUCKET_MICROS: u64 = 30 * 60 * 1_000_000;

/// The Wednesday 9am–12pm sub-window [`fig1`] sweeps, as
/// `(start, end)` in microseconds — public so the out-of-core decode
/// accounting in `repro --store` can count the chunks its construction
/// touches.
pub const FIG1_WINDOW_MICROS: (u64, u64) = (3 * DAY + 9 * HOUR, 3 * DAY + 12 * HOUR);

/// The whole-span lifetime window [`table1`] derives its median block
/// lifetime from — public so replay-fusing callers can pre-register it
/// and keep Table 1 from costing a replay pass of its own.
pub fn table1_lifetime_config<V: TraceView>(idx: &V) -> LifetimeConfig {
    let s = idx.summary();
    let span_days = ((s.last_micros - s.first_micros) / DAY).max(1);
    LifetimeConfig {
        phase1_start: 0,
        phase1_len: span_days / 2 * DAY + DAY / 2,
        phase2_len: span_days / 2 * DAY + DAY / 2,
    }
}

/// Sorted per-file accesses after the reorder-window correction,
/// served from the index's per-window cache.
pub fn sorted_accesses<V: TraceView>(idx: &V, window_ms: u64) -> Arc<AccessMap> {
    idx.accesses(window_ms)
}

/// Table 1: qualitative characterization, computed.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Fraction of calls that move data, CAMPUS then EECS.
    pub data_fraction: [f64; 2],
    /// Read/write byte ratios.
    pub rw_bytes: [f64; 2],
    /// Fraction of created+deleted files that are locks.
    pub lock_churn_fraction: [f64; 2],
    /// Median block lifetimes in seconds (None when no deaths).
    pub median_block_life_s: [Option<f64>; 2],
    /// Fraction of block deaths due to overwriting.
    pub overwrite_death_fraction: [f64; 2],
    /// Rendered text.
    pub text: String,
}

/// Computes Table 1 from one day of each system.
pub fn table1<V: TraceView>(campus: &V, eecs: &V) -> Table1 {
    let mut data_fraction = [0.0; 2];
    let mut rw_bytes = [0.0; 2];
    let mut lock_churn = [0.0; 2];
    let mut median_life = [None, None];
    let mut ow_frac = [0.0; 2];
    for (i, idx) in [campus, eecs].into_iter().enumerate() {
        let s = idx.summary();
        data_fraction[i] = s.data_fraction();
        rw_bytes[i] = s.rw_bytes_ratio();
        lock_churn[i] = idx.names().lock_fraction_of_churn();
        let rep = idx.lifetime(table1_lifetime_config(idx));
        median_life[i] = rep.median_lifespan().map(|m| m as f64 / 1e6);
        let deaths = rep.deaths_total().max(1);
        ow_frac[i] = rep.deaths_overwrite as f64 / deaths as f64;
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Table 1: Characteristics of CAMPUS and EECS (measured)"
    );
    let _ = writeln!(text, "{:<46} {:>10} {:>10}", "", "CAMPUS", "EECS");
    let _ = writeln!(
        text,
        "{:<46} {:>9.0}% {:>9.0}%",
        "NFS calls that move data",
        100.0 * data_fraction[0],
        100.0 * data_fraction[1]
    );
    let _ = writeln!(
        text,
        "{:<46} {:>10.2} {:>10.2}",
        "Read/write ratio (bytes)", rw_bytes[0], rw_bytes[1]
    );
    let _ = writeln!(
        text,
        "{:<46} {:>9.0}% {:>9.0}%",
        "Created+deleted files that are locks",
        100.0 * lock_churn[0],
        100.0 * lock_churn[1]
    );
    let _ = writeln!(
        text,
        "{:<46} {:>10} {:>10}",
        "Median block lifetime",
        median_life[0].map_or("-".into(), |m| format!("{m:.0} s")),
        median_life[1].map_or("-".into(), |m| format!("{m:.2} s")),
    );
    let _ = writeln!(
        text,
        "{:<46} {:>9.0}% {:>9.0}%",
        "Block deaths due to overwriting",
        100.0 * ow_frac[0],
        100.0 * ow_frac[1]
    );
    Table1 {
        data_fraction,
        rw_bytes,
        lock_churn_fraction: lock_churn,
        median_block_life_s: median_life,
        overwrite_death_fraction: ow_frac,
        text,
    }
}

/// Table 2: average daily activity, with the historical columns.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Measured CAMPUS daily activity.
    pub campus: nfstrace_core::summary::DailyActivity,
    /// Measured EECS daily activity.
    pub eecs: nfstrace_core::summary::DailyActivity,
    /// Rendered text.
    pub text: String,
}

/// Computes Table 2 from week-long traces.
pub fn table2<V: TraceView>(campus: &V, eecs: &V) -> Table2 {
    let sc = campus.summary().daily();
    let se = eecs.summary().daily();
    let mut text = String::new();
    let _ = writeln!(text, "Table 2: summary of average daily activity");
    let _ = writeln!(
        text,
        "{:<24} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "", "CAMPUS", "EECS", "INS", "RES", "NT", "Sprite"
    );
    let hist = &historical::TABLE2_HISTORICAL;
    let line = |label: &str, c: f64, e: f64, h: [f64; 4], prec: usize| {
        format!(
            "{label:<24} {c:>10.prec$} {e:>10.prec$} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            h[0], h[1], h[2], h[3]
        )
    };
    let hcol = |f: fn(&historical::DailyActivityRow) -> f64| {
        [f(&hist[0]), f(&hist[1]), f(&hist[2]), f(&hist[3])]
    };
    let _ = writeln!(
        text,
        "{}",
        line(
            "Total ops (millions)",
            sc.total_ops_millions,
            se.total_ops_millions,
            hcol(|h| h.total_ops_millions),
            3,
        )
    );
    let _ = writeln!(
        text,
        "{}",
        line(
            "Data read (GB)",
            sc.data_read_gb,
            se.data_read_gb,
            hcol(|h| h.data_read_gb),
            3
        )
    );
    let _ = writeln!(
        text,
        "{}",
        line(
            "Read ops (millions)",
            sc.read_ops_millions,
            se.read_ops_millions,
            hcol(|h| h.read_ops_millions),
            4,
        )
    );
    let _ = writeln!(
        text,
        "{}",
        line(
            "Data written (GB)",
            sc.data_written_gb,
            se.data_written_gb,
            hcol(|h| h.data_written_gb),
            3,
        )
    );
    let _ = writeln!(
        text,
        "{}",
        line(
            "Write ops (millions)",
            sc.write_ops_millions,
            se.write_ops_millions,
            hcol(|h| h.write_ops_millions),
            4,
        )
    );
    let _ = writeln!(
        text,
        "{}",
        line(
            "R/W bytes ratio",
            sc.rw_bytes_ratio,
            se.rw_bytes_ratio,
            hcol(|h| h.rw_bytes_ratio),
            2
        )
    );
    let _ = writeln!(
        text,
        "{}",
        line(
            "R/W ops ratio",
            sc.rw_ops_ratio,
            se.rw_ops_ratio,
            hcol(|h| h.rw_ops_ratio),
            2
        )
    );
    let _ = writeln!(
        text,
        "(paper: CAMPUS R/W bytes {:.2}, EECS {:.2})",
        historical::TABLE2_PAPER[0].rw_bytes_ratio,
        historical::TABLE2_PAPER[1].rw_bytes_ratio
    );
    Table2 {
        campus: sc,
        eecs: se,
        text,
    }
}

/// Table 3: run patterns, raw and processed.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Raw (unsorted, no jump forgiveness) CAMPUS and EECS columns.
    pub raw: [PatternTable; 2],
    /// Processed (reorder window + small jumps) columns.
    pub processed: [PatternTable; 2],
    /// Rendered text.
    pub text: String,
}

/// Computes the runs of a trace under raw or processed methodology,
/// served from the index's run-table cache.
pub fn trace_runs<V: TraceView>(idx: &V, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>> {
    idx.runs(window_ms, opts)
}

/// Computes Table 3 from week-long traces.
pub fn table3<V: TraceView>(campus: &V, eecs: &V) -> Table3 {
    let raw = [
        PatternTable::from_runs(&trace_runs(campus, WINDOW_CAMPUS_MS, RunOptions::raw())),
        PatternTable::from_runs(&trace_runs(eecs, WINDOW_EECS_MS, RunOptions::raw())),
    ];
    let processed = [
        PatternTable::from_runs(&trace_runs(campus, WINDOW_CAMPUS_MS, RunOptions::default())),
        PatternTable::from_runs(&trace_runs(eecs, WINDOW_EECS_MS, RunOptions::default())),
    ];
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Table 3: file access patterns (entire/sequential/random)"
    );
    let _ = writeln!(
        text,
        "{:<22} {:>8} {:>8} | {:>8} {:>8} | {:>7} {:>7} {:>7}",
        "", "CAMPUS", "EECS", "CAMPUS", "EECS", "NT", "Sprite", "BSD"
    );
    let _ = writeln!(
        text,
        "{:<22} {:>8} {:>8} | {:>8} {:>8} |",
        "", "raw", "raw", "proc", "proc"
    );
    let hist = &historical::TABLE3_HISTORICAL;
    let mut push = |label: &str, get: &dyn Fn(&PatternTable) -> f64, h: [f64; 3]| {
        let _ = writeln!(
            text,
            "{label:<22} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} | {:>7.1} {:>7.1} {:>7.1}",
            get(&raw[0]),
            get(&raw[1]),
            get(&processed[0]),
            get(&processed[1]),
            h[0],
            h[1],
            h[2]
        );
    };
    push(
        "Reads (% total)",
        &|t| t.reads_pct,
        [hist[0].reads[0], hist[1].reads[0], hist[2].reads[0]],
    );
    push(
        "  Entire (% read)",
        &|t| t.read_entire_pct,
        [hist[0].reads[1], hist[1].reads[1], hist[2].reads[1]],
    );
    push(
        "  Sequential (% read)",
        &|t| t.read_sequential_pct,
        [hist[0].reads[2], hist[1].reads[2], hist[2].reads[2]],
    );
    push(
        "  Random (% read)",
        &|t| t.read_random_pct,
        [hist[0].reads[3], hist[1].reads[3], hist[2].reads[3]],
    );
    push(
        "Writes (% total)",
        &|t| t.writes_pct,
        [hist[0].writes[0], hist[1].writes[0], hist[2].writes[0]],
    );
    push(
        "  Entire (% write)",
        &|t| t.write_entire_pct,
        [hist[0].writes[1], hist[1].writes[1], hist[2].writes[1]],
    );
    push(
        "  Sequential (% write)",
        &|t| t.write_sequential_pct,
        [hist[0].writes[2], hist[1].writes[2], hist[2].writes[2]],
    );
    push(
        "  Random (% write)",
        &|t| t.write_random_pct,
        [hist[0].writes[3], hist[1].writes[3], hist[2].writes[3]],
    );
    push(
        "Read-Write (% total)",
        &|t| t.rw_pct,
        [
            hist[0].read_writes[0],
            hist[1].read_writes[0],
            hist[2].read_writes[0],
        ],
    );
    push(
        "  Random (% r-w)",
        &|t| t.rw_random_pct,
        [
            hist[0].read_writes[3],
            hist[1].read_writes[3],
            hist[2].read_writes[3],
        ],
    );
    Table3 {
        raw,
        processed,
        text,
    }
}

/// Table 4: block births and deaths over the five weekday windows.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Merged CAMPUS report.
    pub campus: Arc<LifetimeReport>,
    /// Merged EECS report.
    pub eecs: Arc<LifetimeReport>,
    /// Rendered text.
    pub text: String,
}

/// Runs the paper's five weekday 9am-start daily analyses and merges,
/// served from the index's lifetime cache (Table 4 and Figure 3 share
/// one computation).
pub fn weekday_lifetime<V: TraceView>(idx: &V) -> Arc<LifetimeReport> {
    idx.weekday_lifetime()
}

/// Computes Table 4 (requires ≥ 8 days of trace for full margins).
pub fn table4<V: TraceView>(campus: &V, eecs: &V) -> Table4 {
    let rc = weekday_lifetime(campus);
    let re = weekday_lifetime(eecs);
    let pct = |n: u64, d: u64| {
        if d == 0 {
            0.0
        } else {
            100.0 * n as f64 / d as f64
        }
    };
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Table 4: daily block life statistics (five weekday windows)"
    );
    let _ = writeln!(text, "{:<28} {:>12} {:>12}", "", "CAMPUS", "EECS");
    let _ = writeln!(
        text,
        "{:<28} {:>12} {:>12}",
        "Total births",
        rc.births_total(),
        re.births_total()
    );
    let _ = writeln!(
        text,
        "{:<28} {:>11.1}% {:>11.1}%",
        "  due to writes",
        pct(rc.births_write, rc.births_total()),
        pct(re.births_write, re.births_total())
    );
    let _ = writeln!(
        text,
        "{:<28} {:>11.1}% {:>11.1}%",
        "  due to extension",
        pct(rc.births_extension, rc.births_total()),
        pct(re.births_extension, re.births_total())
    );
    let _ = writeln!(
        text,
        "{:<28} {:>12} {:>12}",
        "Total deaths",
        rc.deaths_total(),
        re.deaths_total()
    );
    let _ = writeln!(
        text,
        "{:<28} {:>11.1}% {:>11.1}%",
        "  due to overwrites",
        pct(rc.deaths_overwrite, rc.deaths_total()),
        pct(re.deaths_overwrite, re.deaths_total())
    );
    let _ = writeln!(
        text,
        "{:<28} {:>11.1}% {:>11.1}%",
        "  due to truncates",
        pct(rc.deaths_truncate, rc.deaths_total()),
        pct(re.deaths_truncate, re.deaths_total())
    );
    let _ = writeln!(
        text,
        "{:<28} {:>11.1}% {:>11.1}%",
        "  due to file deletion",
        pct(rc.deaths_delete, rc.deaths_total()),
        pct(re.deaths_delete, re.deaths_total())
    );
    let _ = writeln!(
        text,
        "{:<28} {:>11.1}% {:>11.1}%",
        "End surplus / births",
        100.0 * rc.end_surplus_fraction(),
        100.0 * re.end_surplus_fraction()
    );
    let _ = writeln!(text, "(paper: CAMPUS overwrites 99.1%, EECS deletes 51.8%)");
    Table4 {
        campus: rc,
        eecs: re,
        text,
    }
}

/// Table 5: hourly averages, all hours vs peak hours.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// All-hours rows (CAMPUS, EECS).
    pub all: [nfstrace_core::hourly::Table5Row; 2],
    /// Peak-hours rows.
    pub peak: [nfstrace_core::hourly::Table5Row; 2],
    /// Rendered text.
    pub text: String,
}

/// Computes Table 5 from week-long traces.
pub fn table5<V: TraceView>(campus: &V, eecs: &V) -> Table5 {
    let sc = campus.hourly();
    let se = eecs.hourly();
    let all = [sc.table5(false), se.table5(false)];
    let peak = [sc.table5(true), se.table5(true)];
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Table 5: average hourly activity (std dev as % of mean)"
    );
    for (label, rows) in [("All hours", &all), ("Peak hours (9am-6pm M-F)", &peak)] {
        let _ = writeln!(text, "-- {label}");
        let _ = writeln!(text, "{:<24} {:>18} {:>18}", "", "CAMPUS", "EECS");
        let mut push = |name: &str,
                        f: &dyn Fn(
            &nfstrace_core::hourly::Table5Row,
        ) -> nfstrace_core::hourly::MeanStd| {
            let c = f(&rows[0]);
            let e = f(&rows[1]);
            let _ = writeln!(
                text,
                "{name:<24} {:>9.1} ({:>4.0}%) {:>9.1} ({:>4.0}%)",
                c.mean,
                c.std_pct(),
                e.mean,
                e.std_pct()
            );
        };
        push("Total ops (1000s)", &|r| scale_row(r.total_ops, 1e3));
        push("Data read (MB)", &|r| r.data_read_mb);
        push("Read ops (1000s)", &|r| scale_row(r.read_ops, 1e3));
        push("Data written (MB)", &|r| r.data_written_mb);
        push("Write ops (1000s)", &|r| scale_row(r.write_ops, 1e3));
        push("R/W op ratio", &|r| r.rw_op_ratio);
    }
    Table5 { all, peak, text }
}

fn scale_row(ms: nfstrace_core::hourly::MeanStd, div: f64) -> nfstrace_core::hourly::MeanStd {
    nfstrace_core::hourly::MeanStd {
        mean: ms.mean / div,
        std: ms.std / div,
    }
}

/// Figure 1: swapped-access fraction vs reorder window.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// (window ms, swapped %) for CAMPUS.
    pub campus: Vec<(u64, f64)>,
    /// (window ms, swapped %) for EECS.
    pub eecs: Vec<(u64, f64)>,
    /// Rendered text.
    pub text: String,
}

/// Computes Figure 1 from the Wednesday 9am–12pm subset, as the paper
/// does. The subset is a zero-copy time window of the index; the sweep
/// itself is sharded across files.
pub fn fig1<V: TraceView>(campus: &V, eecs: &V) -> Fig1 {
    let windows: Vec<u64> = (0..=50).step_by(2).collect();
    let sweep = |idx: &V| -> Vec<(u64, f64)> {
        idx.time_window(FIG1_WINDOW_MICROS.0, FIG1_WINDOW_MICROS.1)
            .swap_sweep(&windows)
            .into_iter()
            .map(|p| (p.window_ms, 100.0 * p.swapped_fraction))
            .collect()
    };
    let c = sweep(campus);
    let e = sweep(eecs);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 1: percent of accesses swapped vs reorder window (Wed 9am-12pm)"
    );
    let _ = writeln!(
        text,
        "{:>10} {:>10} {:>10}",
        "window ms", "CAMPUS %", "EECS %"
    );
    for (i, &(w, cv)) in c.iter().enumerate() {
        let _ = writeln!(text, "{w:>10} {cv:>10.2} {:>10.2}", e[i].1);
    }
    Fig1 {
        campus: c,
        eecs: e,
        text,
    }
}

/// Figure 2: cumulative % of bytes by file size, per pattern.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// CAMPUS profile.
    pub campus: SizeProfile,
    /// EECS profile.
    pub eecs: SizeProfile,
    /// Rendered text.
    pub text: String,
}

/// Computes Figure 2.
pub fn fig2<V: TraceView>(campus: &V, eecs: &V) -> Fig2 {
    let rc = trace_runs(campus, WINDOW_CAMPUS_MS, RunOptions::default());
    let re = trace_runs(eecs, WINDOW_EECS_MS, RunOptions::default());
    let pc = SizeProfile::from_runs(&rc);
    let pe = SizeProfile::from_runs(&re);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 2: cumulative % of bytes accessed vs file size"
    );
    for (label, p) in [("CAMPUS", &pc), ("EECS", &pe)] {
        let total = p.grand_total();
        let _ = writeln!(text, "-- {label}");
        let _ = writeln!(
            text,
            "{:>10} {:>8} {:>8} {:>8} {:>8}",
            "file size", "total%", "entire%", "seq%", "random%"
        );
        let cum_t = SizeProfile::cumulative_pct(&p.total, total);
        let cum_e = SizeProfile::cumulative_pct(&p.entire, total);
        let cum_s = SizeProfile::cumulative_pct(&p.sequential, total);
        let cum_r = SizeProfile::cumulative_pct(&p.random, total);
        for i in 0..cum_t.len() {
            if cum_t[i].1 == 0.0 && i + 1 < cum_t.len() && cum_t[i + 1].1 == 0.0 {
                continue; // skip empty leading buckets
            }
            let _ = writeln!(
                text,
                "{:>10} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
                human(cum_t[i].0),
                cum_t[i].1,
                cum_e[i].1,
                cum_s[i].1,
                cum_r[i].1
            );
        }
    }
    Fig2 {
        campus: pc,
        eecs: pe,
        text,
    }
}

fn human(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{}G", bytes >> 30)
    } else if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else {
        format!("{}k", bytes >> 10)
    }
}

/// Figure 3: block lifetime CDFs.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// (probe µs, cumulative fraction) for CAMPUS.
    pub campus: Vec<(u64, f64)>,
    /// For EECS.
    pub eecs: Vec<(u64, f64)>,
    /// Rendered text.
    pub text: String,
}

/// Computes Figure 3 from the weekday lifetime windows (shared with
/// Table 4 through the index cache).
pub fn fig3<V: TraceView>(campus: &V, eecs: &V) -> Fig3 {
    let probes = nfstrace_core::lifetime::figure3_probes();
    let rc = weekday_lifetime(campus);
    let re = weekday_lifetime(eecs);
    let c = rc.cdf(&probes);
    let e = re.cdf(&probes);
    let mut text = String::new();
    let _ = writeln!(text, "Figure 3: cumulative distribution of block lifetimes");
    let _ = writeln!(text, "{:>10} {:>10} {:>10}", "lifetime", "CAMPUS", "EECS");
    for (i, &(p, cv)) in c.iter().enumerate() {
        let label = if p >= DAY {
            "1 day".to_string()
        } else if p >= HOUR {
            format!("{} hr", p / HOUR)
        } else if p >= 60_000_000 {
            format!("{} min", p / 60_000_000)
        } else {
            format!("{} sec", p / 1_000_000)
        };
        let _ = writeln!(
            text,
            "{label:>10} {:>9.1}% {:>9.1}%",
            100.0 * cv,
            100.0 * e[i].1
        );
    }
    Fig3 {
        campus: c,
        eecs: e,
        text,
    }
}

/// Figure 4: hourly ops and R/W ratios across the week.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// CAMPUS hourly series.
    pub campus: HourlySeries,
    /// EECS hourly series.
    pub eecs: HourlySeries,
    /// Rendered text (compact: one line per 3 hours).
    pub text: String,
}

/// Computes Figure 4.
pub fn fig4<V: TraceView>(campus: &V, eecs: &V) -> Fig4 {
    // Hourly series are bounded by trace hours, not records: cloning
    // them is a few KB, unlike the lifetime reports above.
    let sc = campus.hourly().clone();
    let se = eecs.hourly().clone();
    let mut text = String::new();
    let _ = writeln!(text, "Figure 4: hourly operation counts and R/W ratios");
    let _ = writeln!(
        text,
        "{:>14} {:>10} {:>10} {:>8} {:>8}",
        "hour", "CAMPUS ops", "EECS ops", "C r/w", "E r/w"
    );
    let ce: HashMap<u64, _> = se.iter().map(|(t, b)| (t, *b)).collect();
    for (t, b) in sc.iter() {
        if !(t / HOUR).is_multiple_of(3) {
            continue;
        }
        let e = ce.get(&t).copied().unwrap_or_default();
        let _ = writeln!(
            text,
            "{:>14} {:>10} {:>10} {:>8} {:>8}",
            nfstrace_core::time::format_micros(t),
            b.ops,
            e.ops,
            b.rw_ratio().map_or("-".into(), |r| format!("{r:.1}")),
            e.rw_ratio().map_or("-".into(), |r| format!("{r:.1}")),
        );
    }
    Fig4 {
        campus: sc,
        eecs: se,
        text,
    }
}

/// Figure 5: sequentiality metric vs run size.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// CAMPUS reads: (k=10 allowed, k=1 not allowed).
    pub campus_reads: (Vec<MetricPoint>, Vec<MetricPoint>),
    /// CAMPUS writes.
    pub campus_writes: (Vec<MetricPoint>, Vec<MetricPoint>),
    /// EECS reads.
    pub eecs_reads: (Vec<MetricPoint>, Vec<MetricPoint>),
    /// EECS writes.
    pub eecs_writes: (Vec<MetricPoint>, Vec<MetricPoint>),
    /// Rendered text.
    pub text: String,
}

/// Computes Figure 5 (its run tables are cache hits after Figure 2).
pub fn fig5<V: TraceView>(campus: &V, eecs: &V) -> Fig5 {
    use nfstrace_core::runs::RunKind;
    let rc = trace_runs(campus, WINDOW_CAMPUS_MS, RunOptions::default());
    let re = trace_runs(eecs, WINDOW_EECS_MS, RunOptions::default());
    let f = |runs: &[Run], kind: RunKind| {
        (
            metric_by_run_size(runs, kind, 10),
            metric_by_run_size(runs, kind, 1),
        )
    };
    let campus_reads = f(&rc, RunKind::Read);
    let campus_writes = f(&rc, RunKind::Write);
    let eecs_reads = f(&re, RunKind::Read);
    let eecs_writes = f(&re, RunKind::Write);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 5: mean sequentiality metric vs bytes accessed in run"
    );
    for (label, (k10, k1)) in [
        ("CAMPUS reads", &campus_reads),
        ("CAMPUS writes", &campus_writes),
        ("EECS reads", &eecs_reads),
        ("EECS writes", &eecs_writes),
    ] {
        let _ = writeln!(text, "-- {label}");
        let _ = writeln!(
            text,
            "{:>10} {:>8} {:>14} {:>18}",
            "run bytes", "runs", "jumps allowed", "jumps not allowed"
        );
        for (a, b) in k10.iter().zip(k1) {
            if a.runs == 0 {
                continue;
            }
            let _ = writeln!(
                text,
                "{:>10} {:>8} {:>14.2} {:>18.2}",
                human(a.bucket),
                a.runs,
                a.mean_metric,
                b.mean_metric
            );
        }
    }
    let _ = writeln!(text, "-- cumulative % of runs by size (CAMPUS)");
    for (b, t, r, w) in cumulative_runs_by_size(&rc) {
        let _ = writeln!(
            text,
            "{:>10} total {t:>6.1}% read {r:>6.1}% write {w:>6.1}%",
            human(b)
        );
    }
    Fig5 {
        campus_reads,
        campus_writes,
        eecs_reads,
        eecs_writes,
        text,
    }
}

/// §4.1.1: hierarchy-reconstruction coverage over time.
pub fn hierarchy_coverage<V: TraceView>(idx: &V) -> String {
    let pts = idx.hierarchy_coverage(COVERAGE_BUCKET_MICROS);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Hierarchy reconstruction coverage (30-minute buckets)"
    );
    for p in pts.iter().take(16) {
        let _ = writeln!(
            text,
            "{:>14} {:>6.1}%",
            nfstrace_core::time::format_micros(p.micros),
            100.0 * p.known_fraction
        );
    }
    text
}

/// §6.3: name-based prediction summary.
pub fn names_report<V: TraceView>(idx: &V) -> String {
    let rep = idx.names();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Name prediction: {} files created, {} created+deleted, {:.1}% of churn is locks, {} renames",
        rep.total_created,
        rep.total_created_and_deleted,
        100.0 * rep.lock_fraction_of_churn(),
        rep.renames
    );
    let _ = writeln!(
        text,
        "{:<14} {:>7} {:>9} {:>9} {:>10} {:>10}",
        "category", "files", "size-acc", "life-acc", "p50 life", "p99 life"
    );
    let mut cats: Vec<(&FileCategory, &nfstrace_core::names::CategoryStats)> =
        rep.by_category.iter().collect();
    cats.sort_by_key(|(_, s)| std::cmp::Reverse(s.files));
    for (cat, s) in cats {
        let fmt_life =
            |p: Option<u64>| p.map_or("-".to_string(), |v| format!("{:.2}s", v as f64 / 1e6));
        let _ = writeln!(
            text,
            "{:<14} {:>7} {:>8.0}% {:>8.0}% {:>10} {:>10}",
            cat.label(),
            s.files,
            100.0 * s.size_accuracy(),
            100.0 * s.lifetime_accuracy(),
            fmt_life(s.lifetime_percentile(50.0)),
            fmt_life(s.lifetime_percentile(99.0)),
        );
    }
    text
}

/// Marks records as read or write ops for quick tests.
pub fn op_mix(records: &[TraceRecord]) -> (u64, u64, u64) {
    let mut r = 0;
    let mut w = 0;
    let mut m = 0;
    for rec in records {
        match rec.op {
            Op::Read => r += 1,
            Op::Write => w += 1,
            _ => m += 1,
        }
    }
    (r, w, m)
}
