//! Regenerates Figure 2: bytes accessed vs file size, per pattern.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let (campus, eecs) = scenarios::week_index_pair(scale());
    print!("{}", tables::fig2(&campus, &eecs).text);
}
