//! Serving-loop reproduction: the suite's 8-day traces replayed over
//! **real loopback TCP** against the record-marked NFSv3 RPC server,
//! with every byte the clients and server exchange tapped into the
//! sniffer and live-ingested into segment stores — then the full
//! table/figure suite printed over those captured stores.
//!
//! Stdout is **byte-identical** to `repro --store` at the same
//! `NFSTRACE_SCALE` — the CI `serve-smoke` job `cmp`s exactly that —
//! because the serving loop is a section of the sniffer's canonical
//! flattening (`nfstrace_serve::reverse`): every record that goes out
//! as wire RPC comes back as the same record (the one normalized field
//! is the `vers` tag, which no suite product reads). Internally this
//! bin additionally asserts, per system:
//!
//! - every call the server saw was planned (`unplanned_calls == 0`)
//!   and every planned call was sent exactly once (no retransmissions
//!   on loopback);
//! - the tap's mirror dropped nothing and the sniffer matched every
//!   reply (`orphan_replies == 0`);
//! - the ingested record count equals the batch oracle's.
//!
//! Throughput and latency go to **stderr** (machine-greppable
//! `serve-loop:` lines) in the same shape `BENCH_pipeline.json`
//! tracks: served calls/sec over the whole roundtrip, replay RTT
//! p50/p99, and server-side dispatch mean.
//!
//! With `--metrics <path>` the loop — server, replay clients, sniffer
//! source, and ingest daemons — reports into one shared telemetry
//! [`Registry`], exported as JSON lines to `<path>` (plus Prometheus
//! text to `<path>.prom`) and dumped once to stderr at exit; stdout is
//! untouched either way.
//!
//! Usage: `serve [--dir <dir>] [--connections <n>] [--metrics <path>]
//! [--metrics-interval <secs>]` (default: a per-process temp dir,
//! removed on success; 2 connections per system; no metrics export).

use nfstrace_bench::suite::suite_text;
use nfstrace_bench::{scale, scenarios};
use nfstrace_core::index::TraceView;
use nfstrace_serve::{serve_roundtrip, ReplayOptions, ReplayPlan};
use nfstrace_store::{StoreConfig, StoreIndex};
use nfstrace_telemetry::{Exporter, ExporterConfig, Registry, Snapshot};
use std::path::Path;
use std::time::{Duration, Instant};

/// Serves one system's plan and asserts the loop's internal contracts.
/// Returns the roundtrip wall-clock seconds.
fn serve_system(
    name: &str,
    plan: &ReplayPlan,
    options: &ReplayOptions,
    registry: &Registry,
    dir: &Path,
) -> f64 {
    let total = plan.calls.len() as u64;
    let call_bytes: usize = plan.calls.iter().map(|c| c.call_bytes.len()).sum();
    let reply_bytes: usize = plan
        .calls
        .iter()
        .filter_map(|c| c.reply_bytes.as_ref().map(Vec::len))
        .sum();
    eprintln!(
        "  {name}: plan {total} calls ({:.1} MiB calls, {:.1} MiB replies)",
        call_bytes as f64 / (1 << 20) as f64,
        reply_bytes as f64 / (1 << 20) as f64,
    );
    let t = Instant::now();
    let outcome = serve_roundtrip(plan, options, registry, dir).unwrap_or_else(|e| {
        eprintln!("{name}: serve roundtrip failed: {e}");
        std::process::exit(1);
    });
    let roundtrip_s = t.elapsed().as_secs_f64();
    assert_eq!(outcome.unplanned_calls, 0, "{name}: unplanned calls");
    assert_eq!(
        outcome.replay.retransmits, 0,
        "{name}: loopback replay must not retransmit"
    );
    assert_eq!(outcome.replay.calls_sent, total, "{name}: calls sent");
    assert_eq!(
        outcome.summary.total_records, total,
        "{name}: ingested records"
    );
    assert_eq!(outcome.mirror.dropped, 0, "{name}: mirror drops");
    let stats = outcome.sniffer.expect("sniffer stats after exhaustion");
    assert_eq!(stats.calls, total, "{name}: sniffed calls");
    assert_eq!(stats.orphan_replies, 0, "{name}: orphan replies");
    assert_eq!(stats.decode_errors, 0, "{name}: decode errors");
    eprintln!(
        "  {name}: {total} calls served and captured in {roundtrip_s:.2}s \
         ({:.0} calls/s roundtrip), {} segments",
        total as f64 / roundtrip_s.max(1e-9),
        outcome.summary.segments,
    );
    roundtrip_s
}

/// The exit-time dump (stderr only), same shape as the `live` bin's.
fn dump_metrics(snapshot: &Snapshot) {
    eprintln!("serving-loop metrics:");
    for (name, v) in &snapshot.counters {
        eprintln!("  {name} = {v}");
    }
    for (name, v) in &snapshot.gauges {
        eprintln!("  {name} = {v:.6}");
    }
    for (name, h) in &snapshot.histograms {
        if h.count > 0 {
            eprintln!("  {name}: count={} mean={:.1}us", h.count, h.mean());
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<std::path::PathBuf> = None;
    let mut connections = 2usize;
    let mut metrics: Option<std::path::PathBuf> = None;
    let mut metrics_interval = Duration::from_secs(10);
    let usage = || -> ! {
        eprintln!(
            "usage: serve [--dir <dir>] [--connections <n>] [--metrics <path>] \
             [--metrics-interval <secs>]"
        );
        std::process::exit(2);
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dir" => {
                dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--connections" => {
                connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if connections == 0 {
                    usage();
                }
            }
            "--metrics" => {
                metrics = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--metrics-interval" => {
                let secs: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                metrics_interval = Duration::from_secs(secs.max(1));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    let cleanup = dir.is_none();
    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("nfstrace-serve-bin-{}", std::process::id()))
    });
    let s = scale();

    let registry = Registry::new();
    let exporter = metrics.as_ref().map(|path| {
        let mut prom = path.clone().into_os_string();
        prom.push(".prom");
        Exporter::spawn(
            registry.clone(),
            ExporterConfig {
                interval: metrics_interval,
                jsonl_path: Some(path.clone()),
                prometheus_path: Some(prom.into()),
                stderr: false,
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot start metrics exporter at {}: {e}", path.display());
            std::process::exit(1);
        })
    });

    // The batch oracle: the same 8-day traces streamed into single
    // store files (the `repro --store` path).
    eprintln!("generating the batch-path store pair at scale {s} ...");
    let batch_dir = dir.join("batch");
    let (campus_b, eecs_b) = scenarios::eight_day_store_pair(s, &batch_dir, StoreConfig::default())
        .unwrap_or_else(|e| {
            eprintln!("batch store pipeline failed: {e}");
            std::process::exit(1);
        });

    // Compile both traces into replay plans (records → wire RPC).
    eprintln!("compiling replay plans ...");
    let campus_plan = ReplayPlan::from_stream(&campus_b);
    let eecs_plan = ReplayPlan::from_stream(&eecs_b);

    // The loop under test: serve, replay, tap, sniff, live-ingest.
    let options = ReplayOptions {
        connections,
        ..ReplayOptions::default()
    };
    eprintln!("serving both traces over loopback TCP ({connections} connections each) ...");
    let campus_dir = dir.join("campus-served");
    let eecs_dir = dir.join("eecs-served");
    let campus_s = serve_system("CAMPUS", &campus_plan, &options, &registry, &campus_dir);
    let eecs_s = serve_system("EECS", &eecs_plan, &options, &registry, &eecs_dir);

    // The loop's own telemetry, in the shape BENCH_pipeline.json tracks.
    let calls = registry.counter("serve.calls").value();
    let rtt = registry.histogram("replay.rtt_micros").snapshot();
    let dispatch = registry.histogram("serve.dispatch_micros").snapshot();
    assert!(calls > 0, "the server dispatched nothing");
    assert_eq!(
        calls,
        (campus_plan.calls.len() + eecs_plan.calls.len()) as u64,
        "every planned call must reach the server exactly once"
    );
    assert_eq!(registry.counter("replay.retransmits").value(), 0);
    eprintln!(
        "serve-loop: calls={calls} roundtrip_s={:.2} calls_per_s={:.0} \
         rtt_p50_us={} rtt_p99_us={} dispatch_mean_us={:.1} connections={connections}",
        campus_s + eecs_s,
        calls as f64 / (campus_s + eecs_s).max(1e-9),
        rtt.percentile(0.5),
        rtt.percentile(0.99),
        dispatch.mean(),
    );

    // The captured stores must re-print the batch suite byte for byte.
    let campus_c = StoreIndex::open_dir_with_registry(&campus_dir, &registry).unwrap_or_else(|e| {
        eprintln!("open captured campus segments: {e}");
        std::process::exit(1);
    });
    let eecs_c = StoreIndex::open_dir_with_registry(&eecs_dir, &registry).unwrap_or_else(|e| {
        eprintln!("open captured eecs segments: {e}");
        std::process::exit(1);
    });
    assert_eq!(TraceView::len(&campus_c), TraceView::len(&campus_b));
    assert_eq!(TraceView::len(&eecs_c), TraceView::len(&eecs_b));
    eprintln!("running the suite over the captured stores ...");
    let served_text = suite_text(&campus_c, &eecs_c);
    eprintln!("running the suite over the batch stores ...");
    let batch_text = suite_text(&campus_b, &eecs_b);
    assert_eq!(
        served_text, batch_text,
        "the served-and-captured stores must reproduce the batch suite byte for byte"
    );

    if let Some(exporter) = exporter {
        match exporter.stop() {
            Ok(snapshot) => dump_metrics(&snapshot),
            Err(e) => {
                eprintln!("metrics exporter failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Stdout: the suite, byte-identical to `repro --store`.
    print!("{served_text}");
    if cleanup {
        std::fs::remove_dir_all(&dir).ok();
    }
}
