//! Regenerates the §4.1.4 condition: an oversubscribed mirror port
//! drops packets during bursts, and the sniffer's unmatched-message
//! accounting estimates the loss.

use nfstrace_bench::{scale, scenarios};
use nfstrace_core::record::TraceRecord;
use nfstrace_net::mirror::{MirrorConfig, MirrorPort, MirrorVerdict};
use nfstrace_sniffer::{Sniffer, WireEncoder};

fn main() {
    let s = (scale() * 0.25).max(0.1);
    let records = scenarios::campus(1, s, 42);
    println!(
        "mirror-port loss experiment: {} records re-encoded to the wire",
        records.len()
    );

    // Re-encode trace records to packets through a synthetic event; the
    // workload's wire data is regenerated per record for the experiment.
    let events = to_events(&records);
    println!(
        "  ({} of those are data/getattr calls carried on the wire)",
        events.len()
    );
    for (label, config) in [
        ("lossless (EECS monitor)", MirrorConfig::lossless()),
        (
            "oversubscribed 500 Mb/s tap (CAMPUS bursts)",
            MirrorConfig {
                rate_bytes_per_sec: 62_000_000.0,
                buffer_bytes: 160 * 1024,
            },
        ),
    ] {
        let mut enc = WireEncoder::tcp_jumbo();
        let mut port = MirrorPort::new(config);
        let mut sniffer = Sniffer::new();
        for e in &events {
            for pkt in enc.encode_event(e) {
                if port.offer(pkt.timestamp_micros, pkt.data.len()) == MirrorVerdict::Forwarded {
                    sniffer.observe(&pkt);
                }
            }
        }
        let (recs, st) = sniffer.finish();
        println!("-- {label}");
        println!(
            "   packet drop rate {:.2}%  paired records {}/{}",
            100.0 * port.stats().drop_rate(),
            recs.len(),
            events.len(),
        );
        println!(
            "   orphan replies {}  lost replies {}  estimated message loss {:.2}%",
            st.orphan_replies,
            st.lost_replies,
            100.0 * st.estimated_loss_rate()
        );
        println!(
            "   (message loss >> packet loss: losing either the call or the reply\n    loses the pair — §4.1.4's \"losing a call effectively results in\n    losing both\" — and drops cluster on data-heavy bursts)"
        );
    }
}

/// Rebuilds wire events from flattened records (enough fidelity for the
/// loss experiment: byte ranges and identities are preserved).
fn to_events(records: &[TraceRecord]) -> Vec<nfstrace_client::EmittedCall> {
    use nfstrace_nfs::fh::FileHandle;
    use nfstrace_nfs::types::NfsStat3;
    use nfstrace_nfs::v3::*;
    records
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            let fh = FileHandle::from_u64(r.fh.0);
            let (call, reply) = match r.op {
                nfstrace_core::record::Op::Read => (
                    Call3::Read(Read3Args {
                        file: fh,
                        offset: r.offset,
                        count: r.count,
                    }),
                    Reply3::ok(Reply3Body::Read(Read3Res {
                        file_attributes: None,
                        count: r.ret_count,
                        eof: r.eof,
                        data: vec![0; r.ret_count as usize],
                    })),
                ),
                nfstrace_core::record::Op::Write => (
                    Call3::Write(Write3Args {
                        file: fh,
                        offset: r.offset,
                        count: r.count,
                        stable: StableHow::Unstable,
                        data: vec![0; r.count as usize],
                    }),
                    Reply3::ok(Reply3Body::Write(Write3Res {
                        count: r.ret_count,
                        ..Write3Res::default()
                    })),
                ),
                nfstrace_core::record::Op::Getattr => (
                    Call3::Getattr(FhArgs { object: fh }),
                    Reply3::error(Proc3::Getattr, NfsStat3::Ok),
                ),
                _ => return None,
            };
            Some(nfstrace_client::EmittedCall {
                wire_micros: r.micros,
                reply_micros: r.reply_micros.max(r.micros + 200),
                xid: i as u32, // unique per record
                client_ip: r.client,
                server_ip: r.server,
                uid: r.uid,
                gid: r.gid,
                vers: 3,
                call,
                reply,
            })
        })
        .collect()
}
