//! Regenerates Table 5: hourly activity, all hours vs peak hours.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let (campus, eecs) = scenarios::week_index_pair(scale());
    print!("{}", tables::table5(&campus, &eecs).text);
}
