//! Regenerates Table 1: characteristics of CAMPUS and EECS.

use nfstrace_bench::{scale, scenarios, tables};
use nfstrace_core::index::TraceIndex;

fn main() {
    let s = scale();
    let campus = TraceIndex::new(scenarios::campus(2, s, 42));
    let eecs = TraceIndex::new(scenarios::eecs(2, s, 1789));
    print!("{}", tables::table1(&campus, &eecs).text);
}
