//! Regenerates the §4.1.5 experiment: call reordering vs nfsiod count.
//!
//! "When the client ran only one nfsiod, no call reorderings occurred,
//! but as additional nfsiods were added, call reordering became more
//! frequent. In the most extreme case as many as 10% of the packets
//! were reordered, and some calls were delayed by as much as 1 second."
//!
//! Two load regimes: a paced closed loop (the client issues the next
//! call as soon as a daemon can take it, throttled by its own CPU), and
//! a saturated burst (the async queue is always full) — the paper's
//! "most extreme case".

use nfstrace_client::NfsiodPool;

fn main() {
    println!("nfsiod reordering experiment (isolated client/server)");
    println!("-- paced closed loop (40 us CPU gap, 400 us RPC hold)");
    println!(
        "{:>8} {:>12} {:>14}",
        "nfsiods", "reordered %", "max delay ms"
    );
    for n in [1usize, 2, 3, 4, 6, 8] {
        let mut pool = NfsiodPool::new(n, 7);
        let mut now = 0u64;
        for _ in 0..200_000u64 {
            now = (now + 40).max(pool.earliest_free());
            pool.dispatch_held(now, 400);
        }
        let st = pool.stats();
        println!(
            "{n:>8} {:>12.2} {:>14.1}",
            100.0 * st.reorder_fraction(),
            st.max_delay_micros as f64 / 1000.0
        );
    }
    println!("-- saturated burst (async queue always full)");
    println!("{:>8} {:>12}", "nfsiods", "reordered %");
    for n in [1usize, 2, 3, 4, 6, 8] {
        let mut pool = NfsiodPool::new(n, 7);
        for _ in 0..200_000u64 {
            pool.dispatch_held(0, 400);
        }
        println!("{n:>8} {:>12.2}", 100.0 * pool.stats().reorder_fraction());
    }
}
