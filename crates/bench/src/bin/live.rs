//! Live-ingest reproduction: generate the suite's 8-day traces through
//! the bounded-memory live pipeline (time-sliced simulation →
//! rotating segment ingest), query a [`nfstrace_live::LiveView`]
//! mid-ingest, then print the full table/figure suite over the merged
//! segment directories.
//!
//! Stdout is **byte-identical** to `repro --store` at the same
//! `NFSTRACE_SCALE` — the CI `live-smoke` job `cmp`s exactly that —
//! because the live path ingests bit-identical record streams and the
//! suite itself is shared (`nfstrace_bench::suite`). Internally this
//! bin additionally asserts:
//!
//! - mid-ingest `LiveView` products equal the batch store index
//!   windowed to the records ingested so far;
//! - the merged segment `StoreIndex` prints the same suite text as the
//!   batch `--store` path;
//! - peak resident record counts stay bounded by the slice and
//!   rotation thresholds (reported on stderr for
//!   `BENCH_pipeline.json`-style tracking).
//!
//! With `--shards <n>` the same traces run through the sharded
//! multi-writer daemon ([`nfstrace_live::ShardedLiveIngest`]) instead:
//! records split by client hash across `n` independent writers and the
//! suite runs over the merged mid-ingest view — still byte-identical
//! to `repro --store` (the CI job `cmp`s shard counts 1, 2, and 4
//! against the batch output).
//!
//! With `--metrics <path>` the whole live pipeline — ingest daemons,
//! segment writers/readers, and every view the suite queries — reports
//! into one shared telemetry [`Registry`], exported periodically as
//! JSON lines to `<path>` (plus Prometheus text exposition to
//! `<path>.prom`) and dumped once to **stderr** at exit. Stdout is
//! untouched: the byte-identity `cmp` against `repro --store` holds
//! with telemetry on or off (a tier-1 test pins that).
//!
//! With `--compact <fan_in>` the single-writer daemons compact on the
//! fly: every rotation merges ripe runs of `fan_in` adjacent sealed
//! segments into generation-tagged segments
//! ([`nfstrace_store::Compactor`]), cascading up the generations. The
//! suite over the compacted catalogs must stay byte-identical, the bin
//! asserts the footer-pruning query planner dismisses whole segments
//! on a windowed query (`store.segments_pruned > 0`) while decoding
//! strictly fewer chunks than a full scan, and `--retain <bytes>` then
//! applies a size-budget retention pass that archives the oldest
//! segments into `<dir>/archive` — with the archived ∪ retained union
//! re-printing the same suite bytes.
//!
//! Usage: `live [--dir <dir>] [--shards <n>] [--compact <fan_in>]
//! [--retain <bytes>] [--metrics <path>] [--metrics-interval <secs>]`
//! (default: a per-process temp dir, removed on success; single-writer
//! daemon; no compaction; no metrics export).

use nfstrace_bench::suite::{peak_rss_kb, suite_text};
use nfstrace_bench::{scale, scenarios};
use nfstrace_core::index::TraceView;
use nfstrace_core::record::TraceRecord;
use nfstrace_core::time::{DAY, HOUR};
use nfstrace_live::{LiveConfig, LiveIngest, ShardedLiveIngest};
use nfstrace_store::{
    CompactionPolicy, RetentionPolicy, SegmentCatalog, StoreConfig, StoreIndex, StoreReader,
};
use nfstrace_telemetry::{Exporter, ExporterConfig, Registry, Snapshot};
use nfstrace_workload::SlicedWorkload;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Simulated time per generation slice.
const SLICE_MICROS: u64 = 6 * HOUR;

/// Rotation: seal segments daily (or at half a million records), with
/// optional in-line compaction at the requested fan-in.
fn live_config(dir: &Path, registry: &Registry, compact: Option<usize>) -> LiveConfig {
    LiveConfig {
        store: StoreConfig::default(),
        rotate_records: 500_000,
        rotate_micros: DAY,
        compaction: compact.map(|fan_in| CompactionPolicy { fan_in }),
        ..LiveConfig::new(dir)
    }
    .with_registry(registry)
}

/// The exit-time pipeline-health dump (stderr only): every counter and
/// gauge, plus count/mean for every histogram with samples.
fn dump_metrics(snapshot: &Snapshot) {
    eprintln!("pipeline metrics:");
    for (name, v) in &snapshot.counters {
        eprintln!("  {name} = {v}");
    }
    for (name, v) in &snapshot.gauges {
        eprintln!("  {name} = {v:.6}");
    }
    for (name, h) in &snapshot.histograms {
        if h.count > 0 {
            eprintln!("  {name}: count={} mean={:.1}us", h.count, h.mean());
        }
    }
}

/// Ingests `sliced` to exhaustion; at the first slice boundary at or
/// past `check_at` (mid-ingest, hot + sealed both populated), asserts
/// the live view equals `oracle8` windowed to the records so far.
fn ingest_with_midpoint_check(
    name: &str,
    mut sliced: SlicedWorkload,
    dir: &Path,
    oracle8: &StoreIndex,
    check_at: u64,
    registry: &Registry,
    compact: Option<usize>,
) -> (nfstrace_live::LiveSummary, usize) {
    let mut ingest = LiveIngest::create(live_config(dir, registry, compact))
        .unwrap_or_else(|e| panic!("{name}: create ingest: {e}"));
    // The sink path bypasses `LiveIngest::run`, so sample the batch
    // latency per generation slice here.
    let batch_micros = registry.histogram("live.batch_micros");
    let mut checked = false;
    let mut peak_slice = 0u64;
    let mut before = 0u64;
    while {
        let _span = nfstrace_telemetry::span!(batch_micros);
        sliced
            .next_slice_into(&mut ingest)
            .unwrap_or_else(|e| panic!("{name}: ingest slice: {e}"))
    } {
        peak_slice = peak_slice.max(ingest.total_records() - before);
        before = ingest.total_records();
        let boundary = sliced.emitted_to();
        if !checked && boundary >= check_at {
            checked = true;
            let view = ingest.view();
            let window = oracle8.time_window(0, boundary);
            assert_eq!(
                view.len(),
                TraceView::len(&window),
                "{name}: mid-ingest len"
            );
            assert_eq!(
                view.summary(),
                window.summary(),
                "{name}: mid-ingest summary"
            );
            assert_eq!(view.hourly(), window.hourly(), "{name}: mid-ingest hourly");
            assert_eq!(
                view.accesses(10).as_ref(),
                window.accesses(10).as_ref(),
                "{name}: mid-ingest accesses"
            );
            eprintln!(
                "  {name}: mid-ingest check at {:.1} days — {} records ({} sealed segments, {} hot), consistent",
                boundary as f64 / DAY as f64,
                view.len(),
                ingest.sealed_segments(),
                ingest.hot_len(),
            );
        }
    }
    assert!(checked, "{name}: the mid-ingest checkpoint never ran");
    let gen_peak = sliced.peak_resident_records();
    let mut summary = ingest
        .finish()
        .unwrap_or_else(|e| panic!("{name}: finish: {e}"));
    // The sink path bypasses `LiveIngest::run`, so fill the batch peak
    // from the per-slice deltas observed here.
    summary.peak_batch_records = summary.peak_batch_records.max(peak_slice as usize);
    (summary, gen_peak)
}

/// Like [`ingest_with_midpoint_check`], but through the sharded
/// multi-writer daemon. Returns the still-open ingest (the suite runs
/// over its merged mid-ingest view) plus the generator's resident peak.
#[allow(clippy::too_many_arguments)]
fn ingest_sharded_with_midpoint_check(
    name: &str,
    mut sliced: SlicedWorkload,
    dir: &Path,
    oracle8: &StoreIndex,
    check_at: u64,
    shards: usize,
    registry: &Registry,
    compact: Option<usize>,
) -> (ShardedLiveIngest, usize) {
    let mut ingest = ShardedLiveIngest::create(live_config(dir, registry, compact), shards)
        .unwrap_or_else(|e| panic!("{name}: create sharded ingest: {e}"));
    let mut checked = false;
    let mut batch: Vec<TraceRecord> = Vec::new();
    loop {
        batch.clear();
        if !sliced
            .next_slice_into(&mut batch)
            .unwrap_or_else(|e| panic!("{name}: generate slice: {e}"))
        {
            break;
        }
        ingest
            .ingest_batch(&batch)
            .unwrap_or_else(|e| panic!("{name}: ingest batch: {e}"));
        let boundary = sliced.emitted_to();
        if !checked && boundary >= check_at {
            checked = true;
            let view = ingest.view();
            let window = oracle8.time_window(0, boundary);
            assert_eq!(
                view.len(),
                TraceView::len(&window),
                "{name}/{shards} shards: mid-ingest len"
            );
            assert_eq!(
                view.summary(),
                window.summary(),
                "{name}/{shards} shards: mid-ingest summary"
            );
            assert_eq!(
                view.hourly(),
                window.hourly(),
                "{name}/{shards} shards: mid-ingest hourly"
            );
            assert_eq!(
                view.accesses(10).as_ref(),
                window.accesses(10).as_ref(),
                "{name}/{shards} shards: mid-ingest accesses"
            );
            eprintln!(
                "  {name}: mid-ingest check at {:.1} days — {} records across {} shards \
                 ({} sealed segments, {} hot), consistent",
                boundary as f64 / DAY as f64,
                view.len(),
                shards,
                ingest.sealed_segments(),
                ingest.hot_len(),
            );
        }
    }
    assert!(checked, "{name}: the mid-ingest checkpoint never ran");
    let gen_peak = sliced.peak_resident_records();
    (ingest, gen_peak)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<std::path::PathBuf> = None;
    let mut shards: Option<usize> = None;
    let mut compact: Option<usize> = None;
    let mut retain: Option<u64> = None;
    let mut metrics: Option<std::path::PathBuf> = None;
    let mut metrics_interval = Duration::from_secs(10);
    let usage = || -> ! {
        eprintln!(
            "usage: live [--dir <dir>] [--shards <n>] [--compact <fan_in>] [--retain <bytes>] \
             [--metrics <path>] [--metrics-interval <secs>]"
        );
        std::process::exit(2);
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dir" => {
                dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--shards" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if n == 0 {
                    usage();
                }
                shards = Some(n);
            }
            "--compact" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if n < 2 {
                    usage();
                }
                compact = Some(n);
            }
            "--retain" => {
                retain = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--metrics" => {
                metrics = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--metrics-interval" => {
                let secs: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                metrics_interval = Duration::from_secs(secs.max(1));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    if retain.is_some() && shards.is_some() {
        eprintln!("--retain applies to the single-writer segment catalogs only");
        usage();
    }
    let cleanup = dir.is_none();
    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("nfstrace-live-bin-{}", std::process::id()))
    });
    let s = scale();
    let threads = nfstrace_core::parallel::threads();

    // One registry for the whole pipeline; the exporter thread renders
    // it to the JSONL/Prometheus files while the ingest runs.
    let registry = Registry::new();
    let exporter = metrics.as_ref().map(|path| {
        let mut prom = path.clone().into_os_string();
        prom.push(".prom");
        Exporter::spawn(
            registry.clone(),
            ExporterConfig {
                interval: metrics_interval,
                jsonl_path: Some(path.clone()),
                prometheus_path: Some(prom.into()),
                stderr: false,
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot start metrics exporter at {}: {e}", path.display());
            std::process::exit(1);
        })
    });

    // The batch oracle: the same 8-day traces streamed into single
    // store files (the `repro --store` path).
    eprintln!("generating the batch-path store pair at scale {s} ...");
    let batch_dir = dir.join("batch");
    let (campus_b, eecs_b) = scenarios::eight_day_store_pair(s, &batch_dir, StoreConfig::default())
        .unwrap_or_else(|e| {
            eprintln!("batch store pipeline failed: {e}");
            std::process::exit(1);
        });

    // The live path: time-sliced generation → rotating segment ingest,
    // with a consistency check mid-ingest.
    let campus_dir = dir.join("campus-segments");
    let eecs_dir = dir.join("eecs-segments");
    let live_text = if let Some(shards) = shards {
        eprintln!(
            "sharded-live-ingesting the same traces ({SLICE_MICROS}us slices, daily rotation, \
             {shards} shards) ..."
        );
        let (campus_i, campus_gen_peak) = ingest_sharded_with_midpoint_check(
            "CAMPUS",
            SlicedWorkload::campus(
                scenarios::campus_config(8, s, scenarios::CAMPUS_SEED),
                SLICE_MICROS,
                threads,
            ),
            &campus_dir,
            &campus_b,
            4 * DAY,
            shards,
            &registry,
            compact,
        );
        let (eecs_i, eecs_gen_peak) = ingest_sharded_with_midpoint_check(
            "EECS",
            SlicedWorkload::eecs(
                scenarios::eecs_config(8, s, scenarios::EECS_SEED),
                SLICE_MICROS,
                threads,
            ),
            &eecs_dir,
            &eecs_b,
            4 * DAY,
            shards,
            &registry,
            compact,
        );
        eprintln!(
            "  segments: CAMPUS {} ({} records), EECS {} ({} records)",
            campus_i.sealed_segments(),
            campus_i.total_records(),
            eecs_i.sealed_segments(),
            eecs_i.total_records(),
        );
        // The suite runs over the *merged mid-ingest views* — sealed
        // segments plus every shard's hot tail, k-way merged on arrival
        // sequence.
        eprintln!("running the suite over the merged shard views ...");
        let live_text = suite_text(&campus_i.view(), &eecs_i.view());

        // The bounded-memory observables, per shard.
        let total = campus_i.total_records() + eecs_i.total_records();
        let hot_peaks = |i: &ShardedLiveIngest| -> Vec<usize> {
            i.shards().iter().map(|s| s.peak_hot_records()).collect()
        };
        let sum_peaks: usize = hot_peaks(&campus_i)
            .iter()
            .sum::<usize>()
            .max(hot_peaks(&eecs_i).iter().sum());
        eprintln!(
            "live-memory-sharded: shards={shards} total_records={total} \
             campus_per_shard_peak_hot={:?} eecs_per_shard_peak_hot={:?} \
             peak_slice_records={} gen_peak_resident_records={} peak_rss_kb={} cpus={}",
            hot_peaks(&campus_i),
            hot_peaks(&eecs_i),
            campus_i
                .peak_batch_records()
                .max(eecs_i.peak_batch_records()),
            campus_gen_peak.max(eecs_gen_peak),
            peak_rss_kb().unwrap_or(0),
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        );
        let peak_resident = sum_peaks + campus_gen_peak.max(eecs_gen_peak);
        assert!(
            (peak_resident as u64) < total.max(1),
            "peak resident records ({peak_resident}) must stay below the trace size ({total})"
        );
        campus_i
            .finish()
            .unwrap_or_else(|e| panic!("CAMPUS: finish: {e}"));
        eecs_i
            .finish()
            .unwrap_or_else(|e| panic!("EECS: finish: {e}"));
        live_text
    } else {
        eprintln!("live-ingesting the same traces ({SLICE_MICROS}us slices, daily rotation) ...");
        let (campus_sum, campus_gen_peak) = ingest_with_midpoint_check(
            "CAMPUS",
            SlicedWorkload::campus(
                scenarios::campus_config(8, s, scenarios::CAMPUS_SEED),
                SLICE_MICROS,
                threads,
            ),
            &campus_dir,
            &campus_b,
            4 * DAY,
            &registry,
            compact,
        );
        let (eecs_sum, eecs_gen_peak) = ingest_with_midpoint_check(
            "EECS",
            SlicedWorkload::eecs(
                scenarios::eecs_config(8, s, scenarios::EECS_SEED),
                SLICE_MICROS,
                threads,
            ),
            &eecs_dir,
            &eecs_b,
            4 * DAY,
            &registry,
            compact,
        );

        // Merged segment indices must print the exact batch suite.
        eprintln!(
            "  segments: CAMPUS {} ({} records), EECS {} ({} records)",
            campus_sum.segments,
            campus_sum.total_records,
            eecs_sum.segments,
            eecs_sum.total_records
        );
        let campus_l =
            StoreIndex::open_dir_with_registry(&campus_dir, &registry).unwrap_or_else(|e| {
                eprintln!("open campus segments: {e}");
                std::process::exit(1);
            });
        let eecs_l = StoreIndex::open_dir_with_registry(&eecs_dir, &registry).unwrap_or_else(|e| {
            eprintln!("open eecs segments: {e}");
            std::process::exit(1);
        });
        eprintln!("running the suite over the live segments ...");
        let live_text = suite_text(&campus_l, &eecs_l);

        // The bounded-memory observables (stderr, machine-greppable).
        let total = campus_sum.total_records + eecs_sum.total_records;
        let peak_resident = campus_sum.peak_hot_records.max(eecs_sum.peak_hot_records)
            + campus_gen_peak.max(eecs_gen_peak);
        eprintln!(
            "live-memory: total_records={total} peak_hot_records={} peak_slice_records={} \
             gen_peak_resident_records={} peak_rss_kb={} cpus={}",
            campus_sum.peak_hot_records.max(eecs_sum.peak_hot_records),
            campus_sum
                .peak_batch_records
                .max(eecs_sum.peak_batch_records),
            campus_gen_peak.max(eecs_gen_peak),
            peak_rss_kb().unwrap_or(0),
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        );
        assert!(
            (peak_resident as u64) < total.max(1),
            "peak resident records ({peak_resident}) must stay below the trace size ({total})"
        );

        if compact.is_some() {
            // Compaction really ran: the catalog holds generation-tagged
            // merges and the daemon counted them.
            let catalog = SegmentCatalog::open(&campus_dir).unwrap_or_else(|e| {
                eprintln!("reopen campus catalog: {e}");
                std::process::exit(1);
            });
            let max_gen = catalog
                .ids()
                .iter()
                .map(|id| id.generation)
                .max()
                .unwrap_or(0);
            assert!(
                max_gen > 0,
                "forced compaction left only generation-0 segments"
            );
            let compactions = registry.counter("store.compactions").value();
            assert!(compactions > 0, "store.compactions never fired");

            // The planner acceptance: a one-day window over the 8-day
            // catalog must dismiss whole segments by footer time range
            // and decode strictly fewer chunks than a full scan.
            let decoded = registry.counter("store.chunks_decoded");
            let pruned = registry.counter("store.segments_pruned");
            let d0 = decoded.value();
            let full = campus_l.time_window(0, u64::MAX);
            let full_decodes = decoded.value() - d0;
            let p0 = pruned.value();
            let d1 = decoded.value();
            let day = campus_l.time_window(2 * DAY, 3 * DAY);
            let window_decodes = decoded.value() - d1;
            let window_pruned = pruned.value() - p0;
            assert!(
                window_pruned > 0,
                "a one-day window must prune whole segments by footer time range"
            );
            assert!(
                window_decodes < full_decodes,
                "windowed query decoded {window_decodes} chunks, full scan {full_decodes}"
            );
            assert_eq!(
                TraceView::len(&day),
                TraceView::len(&campus_b.time_window(2 * DAY, 3 * DAY)),
                "pruned windowed query must match the batch oracle"
            );
            drop(full);
            eprintln!(
                "  compaction: campus catalog {} segments (max generation {max_gen}), \
                 {compactions} compactions; day window decoded {window_decodes}/{full_decodes} \
                 chunks, pruned {window_pruned} segments",
                catalog.len(),
            );
        }

        // Retention: archive the oldest segments down to the byte
        // budget, then prove nothing was lost — the archived ∪ retained
        // union must re-print the exact suite bytes.
        if let Some(cap) = retain {
            let open_reader = |path: &Path| -> Arc<StoreReader> {
                Arc::new(StoreReader::open(path).unwrap_or_else(|e| {
                    eprintln!("reopen segment for the retention union: {e}");
                    std::process::exit(1);
                }))
            };
            let mut union_pair = Vec::new();
            for (name, seg_dir) in [("CAMPUS", &campus_dir), ("EECS", &eecs_dir)] {
                let mut catalog = SegmentCatalog::open_and_sweep(seg_dir).unwrap_or_else(|e| {
                    eprintln!("{name}: reopen catalog for retention: {e}");
                    std::process::exit(1);
                });
                let before = catalog.len();
                let archive = seg_dir.join("archive");
                let policy = RetentionPolicy {
                    max_total_bytes: Some(cap),
                    max_age_micros: None,
                    archive_dir: Some(archive.clone()),
                };
                let retired =
                    nfstrace_store::compact::apply_retention(&mut catalog, &policy, &registry)
                        .unwrap_or_else(|e| {
                            eprintln!("{name}: retention: {e}");
                            std::process::exit(1);
                        });
                eprintln!(
                    "  retention: {name} archived {} of {before} segments under the {cap}-byte budget",
                    retired.len()
                );
                let mut readers: Vec<Arc<StoreReader>> = Vec::new();
                if archive.is_dir() {
                    let archived = SegmentCatalog::open(&archive).unwrap_or_else(|e| {
                        eprintln!("{name}: open archive: {e}");
                        std::process::exit(1);
                    });
                    readers.extend(archived.paths().iter().map(|p| open_reader(p)));
                }
                readers.extend(catalog.paths().iter().map(|p| open_reader(p)));
                union_pair.push(StoreIndex::from_readers(readers).unwrap_or_else(|e| {
                    eprintln!("{name}: index the retention union: {e}");
                    std::process::exit(1);
                }));
            }
            let union_text = suite_text(&union_pair[0], &union_pair[1]);
            assert_eq!(
                union_text, live_text,
                "archived + retained union must re-print the suite byte for byte"
            );
            eprintln!("  retention: archived + retained union is byte-identical to the suite");
        }
        live_text
    };

    eprintln!("running the suite over the batch stores ...");
    let batch_text = suite_text(&campus_b, &eecs_b);
    assert_eq!(
        live_text, batch_text,
        "live-ingested segments must reproduce the batch suite byte for byte"
    );

    // Final export + stderr summary before the suite hits stdout; the
    // suite bytes themselves carry no telemetry either way.
    if let Some(exporter) = exporter {
        match exporter.stop() {
            Ok(snapshot) => dump_metrics(&snapshot),
            Err(e) => {
                eprintln!("metrics exporter failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Stdout: the suite, byte-identical to `repro --store`.
    print!("{live_text}");
    if cleanup {
        std::fs::remove_dir_all(&dir).ok();
    }
}
