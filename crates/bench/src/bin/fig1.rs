//! Regenerates Figure 1: swapped accesses vs reorder window size.

use nfstrace_bench::{scale, scenarios, tables};
use nfstrace_core::index::TraceIndex;

fn main() {
    let s = scale();
    // Only Wednesday morning is analyzed; four days suffice.
    let campus = TraceIndex::new(scenarios::campus(4, s, 42));
    let eecs = TraceIndex::new(scenarios::eecs(4, s, 1789));
    print!("{}", tables::fig1(&campus, &eecs).text);
}
