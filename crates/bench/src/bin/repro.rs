//! Runs the full reproduction suite and prints every table and figure.
//!
//! `NFSTRACE_SCALE` scales the simulated populations; `NFSTRACE_THREADS`
//! scales generation across worker threads without changing the output.
//!
//! Each system is generated once (eight days: the lifetime analyses
//! need the Friday end margin) and indexed once; the canonical analysis
//! week is a zero-copy time window over the same trace, so the whole
//! suite buckets and sorts each trace exactly once per reorder window.

use nfstrace_bench::{scale, scenarios, tables};
use nfstrace_core::time::DAY;

fn main() {
    let s = scale();
    eprintln!("generating 8-day traces at scale {s} ...");
    let (campus8, eecs8) = scenarios::eight_day_index_pair(s);
    eprintln!(
        "  CAMPUS: {} records, EECS: {} records",
        campus8.len(),
        eecs8.len()
    );
    eprintln!("indexing the analysis week ...");
    let campus_week = campus8.time_window(0, scenarios::WEEK_DAYS * DAY);
    let eecs_week = eecs8.time_window(0, scenarios::WEEK_DAYS * DAY);

    println!("{}", tables::table1(&campus_week, &eecs_week).text);
    println!("{}", tables::table2(&campus_week, &eecs_week).text);
    println!("{}", tables::table3(&campus_week, &eecs_week).text);
    println!("{}", tables::table4(&campus8, &eecs8).text);
    println!("{}", tables::table5(&campus_week, &eecs_week).text);
    println!("{}", tables::fig1(&campus_week, &eecs_week).text);
    println!("{}", tables::fig2(&campus_week, &eecs_week).text);
    println!("{}", tables::fig3(&campus8, &eecs8).text);
    println!("{}", tables::fig4(&campus_week, &eecs_week).text);
    println!("{}", tables::fig5(&campus_week, &eecs_week).text);
    println!("{}", tables::names_report(&campus_week));
    println!("{}", tables::hierarchy_coverage(&campus_week));

    // The one-pass contract: each index sorted its trace exactly once
    // per reorder window (CAMPUS 10 ms, EECS 5 ms).
    for (name, idx, expect) in [
        ("campus week", &campus_week, 1),
        ("eecs week", &eecs_week, 1),
        ("campus 8-day", &campus8, 0),
        ("eecs 8-day", &eecs8, 0),
    ] {
        assert_eq!(idx.sort_passes(), expect, "{name} sort passes");
    }
}
