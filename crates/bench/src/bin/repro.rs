//! Runs the full reproduction suite and prints every table and figure.
//!
//! `NFSTRACE_SCALE` scales the simulated populations; 1.0 runs in a few
//! minutes, 0.25 in well under one.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let s = scale();
    eprintln!("generating week-long traces at scale {s} ...");
    let (campus_week, eecs_week) = scenarios::week_pair(s);
    eprintln!(
        "  CAMPUS: {} records, EECS: {} records",
        campus_week.len(),
        eecs_week.len()
    );
    eprintln!("generating 8-day traces for lifetime analyses ...");
    let campus8 = scenarios::campus(8, s, 42);
    let eecs8 = scenarios::eecs(8, s, 1789);

    println!("{}", tables::table1(&campus_week, &eecs_week).text);
    println!("{}", tables::table2(&campus_week, &eecs_week).text);
    println!("{}", tables::table3(&campus_week, &eecs_week).text);
    println!("{}", tables::table4(&campus8, &eecs8).text);
    println!("{}", tables::table5(&campus_week, &eecs_week).text);
    println!("{}", tables::fig1(&campus_week, &eecs_week).text);
    println!("{}", tables::fig2(&campus_week, &eecs_week).text);
    println!("{}", tables::fig3(&campus8, &eecs8).text);
    println!("{}", tables::fig4(&campus_week, &eecs_week).text);
    println!("{}", tables::fig5(&campus_week, &eecs_week).text);
    println!("{}", tables::names_report(&campus_week));
    println!("{}", tables::hierarchy_coverage(&campus_week));
}
