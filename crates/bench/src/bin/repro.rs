//! Runs the full reproduction suite and prints every table and figure.
//!
//! `NFSTRACE_SCALE` scales the simulated populations; `NFSTRACE_THREADS`
//! scales generation and chunk indexing across worker threads without
//! changing the output.
//!
//! Each system is generated once (eight days: the lifetime analyses
//! need the Friday end margin) and indexed once; the canonical analysis
//! week is a zero-copy time window over the same trace, so the whole
//! suite buckets and sorts each trace exactly once per reorder window.
//!
//! # Out-of-core mode
//!
//! `repro --store <dir>` runs the same suite end to end without ever
//! holding a full trace in memory: generation streams straight into
//! chunked, per-chunk-compressed store files under `<dir>`
//! (`campus.nfstore`, `eecs.nfstore`), indexing builds one partial
//! index per chunk across `NFSTRACE_THREADS` workers and merges them,
//! and every record-replaying analysis rides **one** fused decode pass
//! per view (registered up front via `TraceView::prepare`) — asserted
//! both per view (`decode_passes == 1`) and at chunk granularity
//! (construction + fused replay = exactly two decodes per chunk). Its
//! stdout is **byte-identical** to the in-memory run — CI asserts
//! exactly that.

use nfstrace_bench::suite::suite_text;
use nfstrace_bench::{scale, scenarios, tables};
use nfstrace_core::time::DAY;
use nfstrace_store::StoreConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut store_dir: Option<std::path::PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--store" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("usage: repro [--store <dir>]");
                    std::process::exit(2);
                });
                store_dir = Some(dir.into());
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: repro [--store <dir>]");
                std::process::exit(2);
            }
        }
    }

    let s = scale();
    match store_dir {
        None => {
            eprintln!("generating 8-day traces at scale {s} ...");
            let (campus8, eecs8) = scenarios::eight_day_index_pair(s);
            print!("{}", suite_text(&campus8, &eecs8));
        }
        Some(dir) => {
            eprintln!(
                "generating 8-day traces at scale {s} into store {} ...",
                dir.display()
            );
            let (campus8, eecs8) = scenarios::eight_day_store_pair(s, &dir, StoreConfig::default())
                .unwrap_or_else(|e| {
                    eprintln!("store pipeline failed: {e}");
                    std::process::exit(1);
                });
            eprintln!(
                "  store chunks: CAMPUS {}, EECS {}",
                campus8.reader().chunk_count(),
                eecs8.reader().chunk_count()
            );
            print!("{}", suite_text(&campus8, &eecs8));
            // The fused-replay bound, at chunk granularity: each chunk
            // set is decoded exactly twice — index construction plus
            // the one fused replay — for the 8-day view and for its
            // analysis-week window alike, plus one construction decode
            // of the chunks under Figure 1's Wednesday-morning window.
            for (name, idx) in [("CAMPUS", &campus8), ("EECS", &eecs8)] {
                let r = idx.reader();
                let all = r.chunk_count() as u64;
                let in_window = |start: u64, end: u64| {
                    r.chunks().iter().filter(|m| m.overlaps(start, end)).count() as u64
                };
                let week = in_window(0, scenarios::WEEK_DAYS * DAY);
                let wed = in_window(tables::FIG1_WINDOW_MICROS.0, tables::FIG1_WINDOW_MICROS.1);
                let decoded = r.chunks_decoded();
                assert_eq!(
                    decoded,
                    2 * (all + week) + wed,
                    "{name}: {all} chunks ({week} in the week, {wed} under \
                     fig1's Wednesday window) decoded more than the fused \
                     bound allows"
                );
                eprintln!("  {name}: {decoded} chunk decodes over {all} chunks (bound met)");
            }
        }
    }
}
