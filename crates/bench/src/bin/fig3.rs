//! Regenerates Figure 3: cumulative distribution of block lifetimes.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let (campus, eecs) = scenarios::eight_day_index_pair(scale());
    print!("{}", tables::fig3(&campus, &eecs).text);
}
