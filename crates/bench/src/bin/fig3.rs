//! Regenerates Figure 3: cumulative distribution of block lifetimes.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let s = scale();
    let campus = scenarios::campus(8, s, 42);
    let eecs = scenarios::eecs(8, s, 1789);
    print!("{}", tables::fig3(&campus, &eecs).text);
}
