//! Regenerates the §6.4 experiment: a read-ahead heuristic driven by
//! the sequentiality metric vs the classic strictly-sequential
//! detector, under increasing request reordering.
//!
//! The paper modified FreeBSD 4.4's NFS server and saw >5% faster large
//! sequential transfers with ~10% of requests reordered.

use nfstrace_fssim::readahead::{replay, MetricReadAhead, StrictSequential};
use nfstrace_fssim::{DiskModel, DiskParams};

fn sequential_stream(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (i * 4, 4)).collect()
}

/// Swap roughly `pct`% of adjacent request pairs.
fn reorder(stream: &[(u64, u64)], pct: usize) -> Vec<(u64, u64)> {
    let mut v = stream.to_vec();
    if pct == 0 {
        return v;
    }
    let stride = (100 / pct).max(2);
    let mut i = 1;
    while i + 1 < v.len() {
        if i % stride == 0 {
            v.swap(i, i + 1);
        }
        i += 1;
    }
    v
}

fn main() {
    println!("read-ahead heuristic experiment: 64 MB sequential transfer");
    println!(
        "{:>11} {:>13} {:>13} {:>9}",
        "reordered %", "strict (ms)", "metric (ms)", "speedup"
    );
    let base = sequential_stream(2048);
    for pct in [0usize, 2, 5, 10, 15, 20] {
        let stream = reorder(&base, pct);
        let strict = replay(
            &stream,
            StrictSequential::new(),
            DiskModel::new(DiskParams::default()),
        );
        let metric = replay(
            &stream,
            MetricReadAhead::new(),
            DiskModel::new(DiskParams::default()),
        );
        let speedup =
            (strict.total_micros as f64 - metric.total_micros as f64) / strict.total_micros as f64;
        println!(
            "{pct:>11} {:>13.1} {:>13.1} {:>8.1}%",
            strict.total_micros as f64 / 1000.0,
            metric.total_micros as f64 / 1000.0,
            100.0 * speedup
        );
    }
}
