//! Regenerates Figure 5: sequentiality metric vs run size.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let (campus, eecs) = scenarios::week_index_pair(scale());
    print!("{}", tables::fig5(&campus, &eecs).text);
}
