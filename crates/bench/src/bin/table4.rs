//! Regenerates Table 4: daily block life statistics.
//!
//! Needs 8 simulated days so the Friday window keeps its full 24-hour
//! end margin.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let (campus, eecs) = scenarios::eight_day_index_pair(scale());
    print!("{}", tables::table4(&campus, &eecs).text);
}
