//! Regenerates Table 4: daily block life statistics.
//!
//! Needs 8 simulated days so the Friday window keeps its full 24-hour
//! end margin.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let s = scale();
    let campus = scenarios::campus(8, s, 42);
    let eecs = scenarios::eecs(8, s, 1789);
    print!("{}", tables::table4(&campus, &eecs).text);
}
