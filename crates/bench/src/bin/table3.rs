//! Regenerates Table 3: file access patterns, raw vs processed.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let (campus, eecs) = scenarios::week_index_pair(scale());
    print!("{}", tables::table3(&campus, &eecs).text);
}
