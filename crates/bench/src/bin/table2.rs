//! Regenerates Table 2: summary of average daily activity.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let (campus, eecs) = scenarios::week_index_pair(scale());
    print!("{}", tables::table2(&campus, &eecs).text);
}
