//! Regenerates Figure 4: hourly operation counts and R/W ratios.

use nfstrace_bench::{scale, scenarios, tables};

fn main() {
    let (campus, eecs) = scenarios::week_index_pair(scale());
    print!("{}", tables::fig4(&campus, &eecs).text);
}
