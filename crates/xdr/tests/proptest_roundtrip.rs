//! Property tests: every XDR primitive round-trips through encode/decode,
//! and encoded lengths are always 4-byte aligned.

use nfstrace_xdr::{pad4, Decoder, Encoder, Pack, Unpack};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u32_roundtrip(v in any::<u32>()) {
        prop_assert_eq!(u32::from_xdr_bytes(&v.to_xdr_bytes()).unwrap(), v);
    }

    #[test]
    fn i32_roundtrip(v in any::<i32>()) {
        prop_assert_eq!(i32::from_xdr_bytes(&v.to_xdr_bytes()).unwrap(), v);
    }

    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(u64::from_xdr_bytes(&v.to_xdr_bytes()).unwrap(), v);
    }

    #[test]
    fn i64_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(i64::from_xdr_bytes(&v.to_xdr_bytes()).unwrap(), v);
    }

    #[test]
    fn opaque_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(Vec::<u8>::from_xdr_bytes(&v.to_xdr_bytes()).unwrap(), v);
    }

    #[test]
    fn opaque_encoded_len_is_aligned(v in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let bytes = v.to_xdr_bytes();
        prop_assert_eq!(bytes.len() % 4, 0);
        prop_assert_eq!(bytes.len(), 4 + pad4(v.len()));
    }

    #[test]
    fn string_roundtrip(s in "\\PC{0,256}") {
        let owned = s.to_string();
        prop_assert_eq!(String::from_xdr_bytes(&owned.to_xdr_bytes()).unwrap(), owned);
    }

    #[test]
    fn mixed_sequence_roundtrip(
        a in any::<u32>(),
        b in any::<u64>(),
        c in proptest::collection::vec(any::<u8>(), 0..128),
        d in any::<bool>(),
        s in "[a-zA-Z0-9._-]{0,64}",
    ) {
        let mut enc = Encoder::new();
        enc.put_u32(a);
        enc.put_u64(b);
        enc.put_opaque_var(&c);
        enc.put_bool(d);
        enc.put_string(&s);
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(dec.get_u32().unwrap(), a);
        prop_assert_eq!(dec.get_u64().unwrap(), b);
        prop_assert_eq!(dec.get_opaque_var().unwrap(), c);
        prop_assert_eq!(dec.get_bool().unwrap(), d);
        prop_assert_eq!(dec.get_string().unwrap(), s);
        prop_assert!(dec.is_empty());
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Interleave every getter over arbitrary bytes; all failures must
        // surface as Err, never as panics.
        let mut dec = Decoder::new(&data);
        loop {
            if dec.get_u32().is_err() { break; }
            if dec.get_opaque_var().is_err() { break; }
            if dec.get_bool().is_err() { break; }
        }
    }

    #[test]
    fn padding_bytes_are_zero(v in proptest::collection::vec(any::<u8>(), 1..64)) {
        let bytes = v.to_xdr_bytes();
        for &b in &bytes[4 + v.len()..] {
            prop_assert_eq!(b, 0);
        }
    }
}
