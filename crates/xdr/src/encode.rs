//! The XDR encoder.

use crate::pad4;

/// Appends XDR-encoded items to an internal buffer.
///
/// Encoding never fails; the buffer grows as needed. Retrieve the result
/// with [`Encoder::into_bytes`] or borrow it with [`Encoder::as_bytes`].
///
/// # Examples
///
/// ```
/// use nfstrace_xdr::Encoder;
///
/// let mut enc = Encoder::new();
/// enc.put_u32(0xdeadbeef);
/// assert_eq!(enc.as_bytes(), &[0xde, 0xad, 0xbe, 0xef]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrows the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an unsigned 64-bit integer (XDR "unsigned hyper").
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a signed 64-bit integer (XDR "hyper").
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a boolean as a 32-bit 0 or 1.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(u32::from(v));
    }

    /// Appends fixed-length opaque data, zero-padded to 4 bytes.
    ///
    /// The length is *not* written; the receiver must know it.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.pad_to_4(data.len());
    }

    /// Appends variable-length opaque data: a length word followed by the
    /// bytes, zero-padded to 4 bytes.
    pub fn put_opaque_var(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data);
    }

    /// Appends an XDR string (length word + UTF-8 bytes + padding).
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque_var(s.as_bytes());
    }

    /// Appends a counted array: a length word followed by each element.
    pub fn put_array<T, F>(&mut self, items: &[T], mut f: F)
    where
        F: FnMut(&mut Self, &T),
    {
        self.put_u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
    }

    fn pad_to_4(&mut self, written: usize) {
        for _ in written..pad4(written) {
            self.buf.push(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_is_big_endian() {
        let mut enc = Encoder::new();
        enc.put_u32(1);
        assert_eq!(enc.as_bytes(), &[0, 0, 0, 1]);
    }

    #[test]
    fn i32_negative() {
        let mut enc = Encoder::new();
        enc.put_i32(-1);
        assert_eq!(enc.as_bytes(), &[0xff, 0xff, 0xff, 0xff]);
    }

    #[test]
    fn u64_layout() {
        let mut enc = Encoder::new();
        enc.put_u64(0x0102030405060708);
        assert_eq!(enc.as_bytes(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn opaque_var_pads_to_four() {
        let mut enc = Encoder::new();
        enc.put_opaque_var(&[0xaa, 0xbb, 0xcc]);
        assert_eq!(enc.as_bytes(), &[0, 0, 0, 3, 0xaa, 0xbb, 0xcc, 0]);
    }

    #[test]
    fn opaque_fixed_multiple_of_four_gets_no_padding() {
        let mut enc = Encoder::new();
        enc.put_opaque_fixed(&[1, 2, 3, 4]);
        assert_eq!(enc.len(), 4);
    }

    #[test]
    fn empty_string_is_single_zero_word() {
        let mut enc = Encoder::new();
        enc.put_string("");
        assert_eq!(enc.as_bytes(), &[0, 0, 0, 0]);
    }

    #[test]
    fn array_prefixes_count() {
        let mut enc = Encoder::new();
        enc.put_array(&[1u32, 2, 3], |e, v| e.put_u32(*v));
        assert_eq!(enc.len(), 16);
        assert_eq!(&enc.as_bytes()[..4], &[0, 0, 0, 3]);
    }

    #[test]
    fn with_capacity_reserves() {
        let enc = Encoder::with_capacity(64);
        assert!(enc.is_empty());
        assert!(enc.buf.capacity() >= 64);
    }
}
