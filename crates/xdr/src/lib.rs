//! External Data Representation (XDR, RFC 4506) encoding and decoding.
//!
//! XDR is the serialization format underneath ONC RPC and therefore
//! underneath every NFS message. All quantities are big-endian and every
//! item is padded to a multiple of four bytes.
//!
//! This crate provides a byte-oriented [`Encoder`] and [`Decoder`] plus the
//! [`Pack`] and `Unpack` traits implemented for the XDR primitive types.
//! Higher layers (`nfstrace-rpc`, `nfstrace-nfs`) build protocol messages
//! out of these primitives.
//!
//! # Examples
//!
//! ```
//! use nfstrace_xdr::{Decoder, Encoder};
//!
//! # fn main() -> Result<(), nfstrace_xdr::Error> {
//! let mut enc = Encoder::new();
//! enc.put_u32(7);
//! enc.put_string("inbox");
//! enc.put_opaque_var(&[1, 2, 3]);
//! let bytes = enc.into_bytes();
//!
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(dec.get_u32()?, 7);
//! assert_eq!(dec.get_string()?, "inbox");
//! assert_eq!(dec.get_opaque_var()?, vec![1, 2, 3]);
//! assert!(dec.is_empty());
//! # Ok(())
//! # }
//! ```

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

mod decode;
mod encode;
mod error;

pub use decode::Decoder;
pub use encode::Encoder;
pub use error::{Error, Result};

/// Rounds `n` up to the next multiple of four, the XDR alignment unit.
///
/// # Examples
///
/// ```
/// assert_eq!(nfstrace_xdr::pad4(5), 8);
/// assert_eq!(nfstrace_xdr::pad4(8), 8);
/// assert_eq!(nfstrace_xdr::pad4(0), 0);
/// ```
#[inline]
pub const fn pad4(n: usize) -> usize {
    (n + 3) & !3
}

/// A value that can be serialized into an XDR [`Encoder`].
///
/// Implemented for the XDR primitives; protocol crates implement it for
/// their composite message types.
///
/// # Examples
///
/// ```
/// use nfstrace_xdr::{Encoder, Pack};
///
/// let mut enc = Encoder::new();
/// 42u32.pack(&mut enc);
/// assert_eq!(enc.into_bytes(), vec![0, 0, 0, 42]);
/// ```
pub trait Pack {
    /// Appends the XDR representation of `self` to `enc`.
    fn pack(&self, enc: &mut Encoder);

    /// Convenience: serializes `self` into a fresh byte vector.
    fn to_xdr_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.pack(&mut enc);
        enc.into_bytes()
    }
}

/// A value that can be deserialized from an XDR [`Decoder`].
///
/// # Errors
///
/// Implementations return [`Error`] when the input is truncated or
/// contains values outside the type's domain (for example a boolean that
/// is neither 0 nor 1).
pub trait Unpack: Sized {
    /// Reads one `Self` from the front of `dec`.
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self>;

    /// Convenience: deserializes a `Self` from `bytes`, requiring that the
    /// whole input is consumed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TrailingBytes`] if input remains after decoding.
    fn from_xdr_bytes(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let v = Self::unpack(&mut dec)?;
        if dec.is_empty() {
            Ok(v)
        } else {
            Err(Error::TrailingBytes {
                remaining: dec.remaining(),
            })
        }
    }
}

impl Pack for u32 {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
}

impl Unpack for u32 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_u32()
    }
}

impl Pack for i32 {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_i32(*self);
    }
}

impl Unpack for i32 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_i32()
    }
}

impl Pack for u64 {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
}

impl Unpack for u64 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_u64()
    }
}

impl Pack for i64 {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_i64(*self);
    }
}

impl Unpack for i64 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_i64()
    }
}

impl Pack for bool {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
}

impl Unpack for bool {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_bool()
    }
}

impl Pack for String {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_string(self);
    }
}

impl Unpack for String {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_string()
    }
}

impl Pack for Vec<u8> {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_opaque_var(self);
    }
}

impl Unpack for Vec<u8> {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_opaque_var()
    }
}

impl<T: Pack> Pack for Option<T> {
    fn pack(&self, enc: &mut Encoder) {
        match self {
            Some(v) => {
                enc.put_bool(true);
                v.pack(enc);
            }
            None => enc.put_bool(false),
        }
    }
}

impl<T: Unpack> Unpack for Option<T> {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        if dec.get_bool()? {
            Ok(Some(T::unpack(dec)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad4_covers_all_residues() {
        assert_eq!(pad4(0), 0);
        assert_eq!(pad4(1), 4);
        assert_eq!(pad4(2), 4);
        assert_eq!(pad4(3), 4);
        assert_eq!(pad4(4), 4);
        assert_eq!(pad4(5), 8);
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(9);
        let none: Option<u32> = None;
        assert_eq!(
            Option::<u32>::from_xdr_bytes(&some.to_xdr_bytes()).unwrap(),
            some
        );
        assert_eq!(
            Option::<u32>::from_xdr_bytes(&none.to_xdr_bytes()).unwrap(),
            none
        );
    }

    #[test]
    fn from_xdr_bytes_rejects_trailing() {
        let mut enc = Encoder::new();
        enc.put_u32(1);
        enc.put_u32(2);
        let err = u32::from_xdr_bytes(&enc.into_bytes()).unwrap_err();
        assert!(matches!(err, Error::TrailingBytes { remaining: 4 }));
    }

    #[test]
    fn signed_extremes_roundtrip() {
        for v in [i32::MIN, -1, 0, 1, i32::MAX] {
            assert_eq!(i32::from_xdr_bytes(&v.to_xdr_bytes()).unwrap(), v);
        }
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(i64::from_xdr_bytes(&v.to_xdr_bytes()).unwrap(), v);
        }
    }
}
