//! The XDR decoder.

use crate::{pad4, Error, Result};

/// Default ceiling on variable-length items, to keep corrupt length words
/// from causing huge allocations. NFSv3 WRITE payloads with jumbo frames
/// stay well under this.
pub const DEFAULT_MAX_LEN: usize = 16 * 1024 * 1024;

/// Reads XDR items from the front of a borrowed byte slice.
///
/// The decoder tracks its position; every `get_*` call consumes bytes.
/// Truncated input yields [`Error::UnexpectedEof`] rather than a panic.
///
/// # Lifetime contract
///
/// The decoder borrows its input for `'a` and the `*_ref` accessors
/// ([`Decoder::get_opaque_fixed_ref`], [`Decoder::get_opaque_var_ref`],
/// [`Decoder::get_str_ref`]) return views tied to that **input** lifetime,
/// not to the decoder value itself. A returned `&'a [u8]` therefore stays
/// valid across further `get_*` calls and after the decoder is dropped —
/// it dies only with the underlying buffer. This is what lets the whole
/// RPC/NFS decode stack run over one reassembled record buffer without
/// copying: every layer's view points back into the same bytes.
///
/// The owning accessors ([`Decoder::get_opaque_var`],
/// [`Decoder::get_string`], …) are thin `to_vec`/`to_owned` wrappers over
/// the `*_ref` forms, so both families consume input and fail
/// identically.
///
/// # Examples
///
/// ```
/// use nfstrace_xdr::Decoder;
///
/// # fn main() -> Result<(), nfstrace_xdr::Error> {
/// let mut dec = Decoder::new(&[0, 0, 0, 5]);
/// assert_eq!(dec.get_u32()?, 5);
/// assert!(dec.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
    max_len: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `data` with the default length limit.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            max_len: DEFAULT_MAX_LEN,
        }
    }

    /// Creates a decoder with a custom ceiling for variable-length items.
    pub fn with_max_len(data: &'a [u8], max_len: usize) -> Self {
        Self {
            data,
            pos: 0,
            max_len,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current byte offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads an unsigned 32-bit integer.
    ///
    /// # Errors
    ///
    /// [`Error::UnexpectedEof`] if fewer than 4 bytes remain.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take_fixed::<4>()?))
    }

    /// Reads a signed 32-bit integer.
    ///
    /// # Errors
    ///
    /// [`Error::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn get_i32(&mut self) -> Result<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Reads an unsigned 64-bit integer.
    ///
    /// # Errors
    ///
    /// [`Error::UnexpectedEof`] if fewer than 8 bytes remain.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take_fixed::<8>()?))
    }

    /// Reads a signed 64-bit integer.
    ///
    /// # Errors
    ///
    /// [`Error::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a boolean.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidBool`] if the word is neither 0 nor 1, or
    /// [`Error::UnexpectedEof`] on truncation.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(Error::InvalidBool(v)),
        }
    }

    /// Reads `len` bytes of fixed-length opaque data plus padding,
    /// returning a view into the input buffer (see the type-level
    /// lifetime contract: the slice outlives the decoder).
    ///
    /// # Errors
    ///
    /// [`Error::UnexpectedEof`] on truncation, or
    /// [`Error::LengthTooLarge`] if `len` exceeds the decoder limit.
    #[inline]
    pub fn get_opaque_fixed_ref(&mut self, len: usize) -> Result<&'a [u8]> {
        if len > self.max_len {
            return Err(Error::LengthTooLarge {
                declared: len,
                limit: self.max_len,
            });
        }
        let b = self.take(pad4(len))?;
        Ok(&b[..len])
    }

    /// Reads variable-length opaque data (length word + bytes + padding)
    /// as a view into the input buffer.
    ///
    /// # Errors
    ///
    /// [`Error::LengthTooLarge`] if the declared length exceeds the
    /// decoder limit, or [`Error::UnexpectedEof`] on truncation.
    #[inline]
    pub fn get_opaque_var_ref(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.get_opaque_fixed_ref(len)
    }

    /// Reads an XDR string as a UTF-8-validated view into the input
    /// buffer.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidUtf8`] for non-UTF-8 data, plus the errors of
    /// [`Decoder::get_opaque_var_ref`].
    #[inline]
    pub fn get_str_ref(&mut self) -> Result<&'a str> {
        let bytes = self.get_opaque_var_ref()?;
        std::str::from_utf8(bytes).map_err(|_| Error::InvalidUtf8)
    }

    /// Reads `len` bytes of fixed-length opaque data plus padding.
    ///
    /// # Errors
    ///
    /// [`Error::UnexpectedEof`] on truncation, or
    /// [`Error::LengthTooLarge`] if `len` exceeds the decoder limit.
    pub fn get_opaque_fixed(&mut self, len: usize) -> Result<Vec<u8>> {
        self.get_opaque_fixed_ref(len).map(<[u8]>::to_vec)
    }

    /// Reads variable-length opaque data (length word + bytes + padding).
    ///
    /// # Errors
    ///
    /// [`Error::LengthTooLarge`] if the declared length exceeds the
    /// decoder limit, or [`Error::UnexpectedEof`] on truncation.
    pub fn get_opaque_var(&mut self) -> Result<Vec<u8>> {
        self.get_opaque_var_ref().map(<[u8]>::to_vec)
    }

    /// Reads an XDR string and validates UTF-8.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidUtf8`] for non-UTF-8 data, plus the errors of
    /// [`Decoder::get_opaque_var`].
    pub fn get_string(&mut self) -> Result<String> {
        self.get_str_ref().map(str::to_owned)
    }

    /// Reads a counted array, decoding each element with `f`.
    ///
    /// # Errors
    ///
    /// Propagates errors from `f` and from reading the count; rejects
    /// counts larger than the decoder limit.
    pub fn get_array<T, F>(&mut self, mut f: F) -> Result<Vec<T>>
    where
        F: FnMut(&mut Self) -> Result<T>,
    {
        let n = self.get_u32()? as usize;
        if n > self.max_len {
            return Err(Error::LengthTooLarge {
                declared: n,
                limit: self.max_len,
            });
        }
        // Each element occupies at least 4 bytes, so bound by remaining.
        if n > self.remaining() / 4 + 1 {
            return Err(Error::LengthTooLarge {
                declared: n,
                limit: self.remaining() / 4 + 1,
            });
        }
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Skips `n` raw bytes (no padding applied).
    ///
    /// # Errors
    ///
    /// [`Error::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let b = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(b)
    }

    /// Fixed-width read: one bounds check, then a constant-size copy the
    /// optimizer lowers to a plain load (no per-byte branches).
    #[inline]
    fn take_fixed<const N: usize>(&mut self) -> Result<[u8; N]> {
        match self.data.get(self.pos..self.pos + N) {
            Some(b) => {
                self.pos += N;
                Ok(b.try_into().expect("slice length is exactly N"))
            }
            None => Err(Error::UnexpectedEof {
                needed: N,
                remaining: self.remaining(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;

    #[test]
    fn truncated_u32_errors() {
        let mut dec = Decoder::new(&[0, 0, 1]);
        assert!(matches!(
            dec.get_u32(),
            Err(Error::UnexpectedEof {
                needed: 4,
                remaining: 3
            })
        ));
    }

    #[test]
    fn bool_rejects_two() {
        let mut dec = Decoder::new(&[0, 0, 0, 2]);
        assert_eq!(dec.get_bool(), Err(Error::InvalidBool(2)));
    }

    #[test]
    fn opaque_var_respects_limit() {
        let mut enc = Encoder::new();
        enc.put_u32(100);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::with_max_len(&bytes, 10);
        assert!(matches!(
            dec.get_opaque_var(),
            Err(Error::LengthTooLarge {
                declared: 100,
                limit: 10
            })
        ));
    }

    #[test]
    fn opaque_var_consumes_padding() {
        let mut enc = Encoder::new();
        enc.put_opaque_var(b"ab");
        enc.put_u32(7);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_opaque_var().unwrap(), b"ab");
        assert_eq!(dec.get_u32().unwrap(), 7);
    }

    #[test]
    fn string_rejects_bad_utf8() {
        let mut enc = Encoder::new();
        enc.put_opaque_var(&[0xff, 0xfe]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_string(), Err(Error::InvalidUtf8));
    }

    #[test]
    fn array_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_array(&[10u32, 20, 30], |e, v| e.put_u32(*v));
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let v = dec.get_array(|d| d.get_u32()).unwrap();
        assert_eq!(v, vec![10, 20, 30]);
    }

    #[test]
    fn array_count_bounded_by_remaining() {
        // Claims 1000 elements but only 4 bytes follow.
        let mut enc = Encoder::new();
        enc.put_u32(1000);
        enc.put_u32(1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_array(|d| d.get_u32()).is_err());
    }

    #[test]
    fn ref_accessors_outlive_the_decoder() {
        let mut enc = Encoder::new();
        enc.put_opaque_var(b"abc");
        enc.put_string("name");
        enc.put_u32(9);
        let bytes = enc.into_bytes();
        let (opaque, name, tail) = {
            let mut dec = Decoder::new(&bytes);
            let opaque = dec.get_opaque_var_ref().unwrap();
            let name = dec.get_str_ref().unwrap();
            let tail = dec.get_u32().unwrap();
            assert!(dec.is_empty());
            (opaque, name, tail)
        };
        // The views borrow `bytes`, not the (now dropped) decoder.
        assert_eq!(opaque, b"abc");
        assert_eq!(name, "name");
        assert_eq!(tail, 9);
    }

    #[test]
    fn ref_and_owned_accessors_fail_identically() {
        // Truncated opaque: length word says 8, only 4 bytes follow.
        let mut enc = Encoder::new();
        enc.put_u32(8);
        enc.put_u32(1);
        let bytes = enc.into_bytes();
        assert_eq!(
            Decoder::new(&bytes).get_opaque_var_ref().unwrap_err(),
            Decoder::new(&bytes).get_opaque_var().unwrap_err(),
        );
        // Oversized declared length.
        let mut enc = Encoder::new();
        enc.put_u32(100);
        let bytes = enc.into_bytes();
        assert_eq!(
            Decoder::with_max_len(&bytes, 10)
                .get_opaque_var_ref()
                .unwrap_err(),
            Decoder::with_max_len(&bytes, 10)
                .get_opaque_var()
                .unwrap_err(),
        );
        // Invalid UTF-8.
        let mut enc = Encoder::new();
        enc.put_opaque_var(&[0xff, 0xfe]);
        let bytes = enc.into_bytes();
        assert_eq!(
            Decoder::new(&bytes).get_str_ref().unwrap_err(),
            Decoder::new(&bytes).get_string().unwrap_err(),
        );
    }

    #[test]
    fn skip_advances_position() {
        let mut dec = Decoder::new(&[1, 2, 3, 4, 5, 6, 7, 8]);
        dec.skip(4).unwrap();
        assert_eq!(dec.position(), 4);
        assert_eq!(dec.get_u32().unwrap(), 0x05060708);
    }
}
