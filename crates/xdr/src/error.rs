//! Error type for XDR decoding.

use std::fmt;

/// Convenient alias for results of XDR operations.
pub type Result<T> = std::result::Result<T, Error>;

/// An error produced while decoding XDR data.
///
/// Encoding is infallible (it only appends to a growable buffer), so this
/// type only describes decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The input ended before the requested item could be read.
    UnexpectedEof {
        /// Bytes needed to decode the item.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A boolean field held a value other than 0 or 1.
    InvalidBool(u32),
    /// A variable-length item declared a length beyond the decoder limit.
    LengthTooLarge {
        /// Declared length.
        declared: usize,
        /// Maximum the decoder permits.
        limit: usize,
    },
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant was not one of the known values.
    InvalidDiscriminant {
        /// Name of the enum being decoded.
        what: &'static str,
        /// The offending value.
        value: u32,
    },
    /// Decoding finished but input bytes remain.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// Non-zero padding bytes where XDR requires zeros.
    NonZeroPadding,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of XDR input: needed {needed} bytes, {remaining} remain"
            ),
            Error::InvalidBool(v) => write!(f, "invalid XDR boolean value {v}"),
            Error::LengthTooLarge { declared, limit } => {
                write!(f, "declared XDR length {declared} exceeds limit {limit}")
            }
            Error::InvalidUtf8 => write!(f, "XDR string is not valid UTF-8"),
            Error::InvalidDiscriminant { what, value } => {
                write!(f, "invalid discriminant {value} for {what}")
            }
            Error::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after XDR decode")
            }
            Error::NonZeroPadding => write!(f, "non-zero XDR padding bytes"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs: Vec<Error> = vec![
            Error::UnexpectedEof {
                needed: 4,
                remaining: 1,
            },
            Error::InvalidBool(3),
            Error::LengthTooLarge {
                declared: 10,
                limit: 5,
            },
            Error::InvalidUtf8,
            Error::InvalidDiscriminant {
                what: "ftype3",
                value: 99,
            },
            Error::TrailingBytes { remaining: 2 },
            Error::NonZeroPadding,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
