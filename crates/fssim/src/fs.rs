//! The in-memory filesystem behind the simulated NFS server.
//!
//! Tracks namespace, sizes, and attributes — not data contents. READs
//! return zero-filled buffers of the correct length, which keeps wire
//! sizes faithful without storing gigabytes.

use nfstrace_nfs::types::{Fattr3, Ftype3, NfsStat3, NfsTime3};
use std::collections::HashMap;
use std::fmt;

/// Errors from filesystem operations, mirroring `nfsstat3` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// No such file or directory.
    NoEnt,
    /// Name already exists.
    Exist,
    /// Not a directory.
    NotDir,
    /// Is a directory.
    IsDir,
    /// Directory not empty.
    NotEmpty,
    /// Stale file handle (no such inode).
    Stale,
}

impl FsError {
    /// The matching NFS status code.
    pub fn to_nfsstat(self) -> NfsStat3 {
        match self {
            FsError::NoEnt => NfsStat3::NoEnt,
            FsError::Exist => NfsStat3::Exist,
            FsError::NotDir => NfsStat3::NotDir,
            FsError::IsDir => NfsStat3::IsDir,
            FsError::NotEmpty => NfsStat3::NotEmpty,
            FsError::Stale => NfsStat3::Stale,
        }
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsError::NoEnt => "no such file or directory",
            FsError::Exist => "file exists",
            FsError::NotDir => "not a directory",
            FsError::IsDir => "is a directory",
            FsError::NotEmpty => "directory not empty",
            FsError::Stale => "stale file handle",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FsError {}

/// One inode's state.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Inode number (also the file handle payload).
    pub id: u64,
    /// File type.
    pub ftype: Ftype3,
    /// Size in bytes.
    pub size: u64,
    /// Mode bits.
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Link count.
    pub nlink: u32,
    /// Modification time (µs).
    pub mtime: u64,
    /// Change time (µs).
    pub ctime: u64,
    /// Access time (µs).
    pub atime: u64,
    /// Symlink target, when a symlink.
    pub link_target: Option<String>,
}

impl Inode {
    /// Renders NFSv3 attributes.
    pub fn fattr3(&self) -> Fattr3 {
        Fattr3 {
            ftype: self.ftype,
            mode: self.mode,
            nlink: self.nlink,
            uid: self.uid,
            gid: self.gid,
            size: self.size,
            used: self.size.div_ceil(8192) * 8192,
            rdev: (0, 0),
            fsid: 1,
            fileid: self.id,
            atime: NfsTime3::from_micros(self.atime),
            mtime: NfsTime3::from_micros(self.mtime),
            ctime: NfsTime3::from_micros(self.ctime),
        }
    }
}

/// The filesystem: inodes plus directory contents.
#[derive(Debug)]
pub struct SimFs {
    inodes: HashMap<u64, Inode>,
    dirs: HashMap<u64, HashMap<String, u64>>,
    next_id: u64,
    root: u64,
}

impl Default for SimFs {
    fn default() -> Self {
        Self::new()
    }
}

impl SimFs {
    /// Creates a filesystem with a root directory (inode 1).
    pub fn new() -> Self {
        let mut fs = SimFs {
            inodes: HashMap::new(),
            dirs: HashMap::new(),
            next_id: 2,
            root: 1,
        };
        fs.inodes.insert(
            1,
            Inode {
                id: 1,
                ftype: Ftype3::Directory,
                size: 0,
                mode: 0o755,
                uid: 0,
                gid: 0,
                nlink: 2,
                mtime: 0,
                ctime: 0,
                atime: 0,
                link_target: None,
            },
        );
        fs.dirs.insert(1, HashMap::new());
        fs
    }

    /// The root directory's inode number.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Moves the inode allocator to `next` (if it is ahead of the
    /// current position).
    ///
    /// Sharded workload generation runs each user against its own
    /// filesystem replica; giving every shard a disjoint allocation
    /// base keeps file ids unique across the merged trace, and pinning
    /// shared files to one fixed base keeps their ids identical in
    /// every replica.
    pub fn set_next_id(&mut self, next: u64) {
        self.next_id = self.next_id.max(next);
    }

    /// Number of live inodes.
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    /// Fetches an inode.
    ///
    /// # Errors
    ///
    /// [`FsError::Stale`] when the id does not exist.
    pub fn inode(&self, id: u64) -> Result<&Inode, FsError> {
        self.inodes.get(&id).ok_or(FsError::Stale)
    }

    fn inode_mut(&mut self, id: u64) -> Result<&mut Inode, FsError> {
        self.inodes.get_mut(&id).ok_or(FsError::Stale)
    }

    /// Looks up `name` in directory `dir`.
    ///
    /// # Errors
    ///
    /// [`FsError::Stale`] for a bad handle, [`FsError::NotDir`] for a
    /// non-directory, [`FsError::NoEnt`] when the name is absent.
    pub fn lookup(&self, dir: u64, name: &str) -> Result<u64, FsError> {
        let entries = self.dir_entries(dir)?;
        entries.get(name).copied().ok_or(FsError::NoEnt)
    }

    fn dir_entries(&self, dir: u64) -> Result<&HashMap<String, u64>, FsError> {
        let inode = self.inode(dir)?;
        if inode.ftype != Ftype3::Directory {
            return Err(FsError::NotDir);
        }
        self.dirs.get(&dir).ok_or(FsError::Stale)
    }

    /// Creates a regular file (or returns the existing one, truncated,
    /// for UNCHECKED-create semantics).
    ///
    /// Returns `(id, existed)`.
    ///
    /// # Errors
    ///
    /// Directory errors as in [`SimFs::lookup`].
    pub fn create(
        &mut self,
        dir: u64,
        name: &str,
        uid: u32,
        gid: u32,
        now: u64,
    ) -> Result<(u64, bool), FsError> {
        if let Ok(existing) = self.lookup(dir, name) {
            // UNCHECKED create truncates.
            let inode = self.inode_mut(existing)?;
            if inode.ftype == Ftype3::Directory {
                return Err(FsError::IsDir);
            }
            inode.size = 0;
            inode.mtime = now;
            inode.ctime = now;
            return Ok((existing, true));
        }
        let id = self.alloc_inode(Ftype3::Regular, uid, gid, now);
        self.dirs
            .get_mut(&dir)
            .ok_or(FsError::NotDir)?
            .insert(name.to_string(), id);
        self.touch_dir(dir, now);
        Ok((id, false))
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::Exist`] if the name exists; directory errors otherwise.
    pub fn mkdir(
        &mut self,
        dir: u64,
        name: &str,
        uid: u32,
        gid: u32,
        now: u64,
    ) -> Result<u64, FsError> {
        if self.lookup(dir, name).is_ok() {
            return Err(FsError::Exist);
        }
        let id = self.alloc_inode(Ftype3::Directory, uid, gid, now);
        self.dirs.insert(id, HashMap::new());
        self.dirs
            .get_mut(&dir)
            .ok_or(FsError::NotDir)?
            .insert(name.to_string(), id);
        self.touch_dir(dir, now);
        Ok(id)
    }

    /// Creates a symlink.
    ///
    /// # Errors
    ///
    /// [`FsError::Exist`] if the name exists; directory errors otherwise.
    pub fn symlink(
        &mut self,
        dir: u64,
        name: &str,
        target: &str,
        uid: u32,
        gid: u32,
        now: u64,
    ) -> Result<u64, FsError> {
        if self.lookup(dir, name).is_ok() {
            return Err(FsError::Exist);
        }
        let id = self.alloc_inode(Ftype3::Symlink, uid, gid, now);
        self.inode_mut(id)?.link_target = Some(target.to_string());
        self.inode_mut(id)?.size = target.len() as u64;
        self.dirs
            .get_mut(&dir)
            .ok_or(FsError::NotDir)?
            .insert(name.to_string(), id);
        self.touch_dir(dir, now);
        Ok(id)
    }

    /// Removes a file or symlink.
    ///
    /// # Errors
    ///
    /// [`FsError::IsDir`] for directories (use [`SimFs::rmdir`]).
    pub fn remove(&mut self, dir: u64, name: &str, now: u64) -> Result<u64, FsError> {
        let id = self.lookup(dir, name)?;
        if self.inode(id)?.ftype == Ftype3::Directory {
            return Err(FsError::IsDir);
        }
        self.dirs.get_mut(&dir).ok_or(FsError::NotDir)?.remove(name);
        let nlink = {
            let inode = self.inode_mut(id)?;
            inode.nlink = inode.nlink.saturating_sub(1);
            inode.nlink
        };
        if nlink == 0 {
            self.inodes.remove(&id);
        }
        self.touch_dir(dir, now);
        Ok(id)
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotEmpty`] when it still has entries.
    pub fn rmdir(&mut self, dir: u64, name: &str, now: u64) -> Result<u64, FsError> {
        let id = self.lookup(dir, name)?;
        if self.inode(id)?.ftype != Ftype3::Directory {
            return Err(FsError::NotDir);
        }
        if !self.dirs.get(&id).is_none_or(|d| d.is_empty()) {
            return Err(FsError::NotEmpty);
        }
        self.dirs.remove(&id);
        self.inodes.remove(&id);
        self.dirs.get_mut(&dir).ok_or(FsError::NotDir)?.remove(name);
        self.touch_dir(dir, now);
        Ok(id)
    }

    /// Renames an entry, replacing any existing target (whose id is
    /// returned as the second element).
    ///
    /// # Errors
    ///
    /// Lookup errors on the source; directory errors on either side.
    pub fn rename(
        &mut self,
        from_dir: u64,
        from_name: &str,
        to_dir: u64,
        to_name: &str,
        now: u64,
    ) -> Result<(u64, Option<u64>), FsError> {
        let id = self.lookup(from_dir, from_name)?;
        let replaced = self.lookup(to_dir, to_name).ok();
        if let Some(old) = replaced {
            if old != id {
                self.dirs
                    .get_mut(&to_dir)
                    .ok_or(FsError::NotDir)?
                    .remove(to_name);
                let nlink = {
                    let inode = self.inode_mut(old)?;
                    inode.nlink = inode.nlink.saturating_sub(1);
                    inode.nlink
                };
                if nlink == 0 {
                    self.inodes.remove(&old);
                    self.dirs.remove(&old);
                }
            }
        }
        self.dirs
            .get_mut(&from_dir)
            .ok_or(FsError::NotDir)?
            .remove(from_name);
        self.dirs
            .get_mut(&to_dir)
            .ok_or(FsError::NotDir)?
            .insert(to_name.to_string(), id);
        self.touch_dir(from_dir, now);
        self.touch_dir(to_dir, now);
        Ok((id, replaced.filter(|&old| old != id)))
    }

    /// Creates a hard link.
    ///
    /// # Errors
    ///
    /// [`FsError::Exist`] if the target name exists.
    pub fn link(&mut self, file: u64, dir: u64, name: &str, now: u64) -> Result<(), FsError> {
        if self.lookup(dir, name).is_ok() {
            return Err(FsError::Exist);
        }
        self.inode_mut(file)?.nlink += 1;
        self.dirs
            .get_mut(&dir)
            .ok_or(FsError::NotDir)?
            .insert(name.to_string(), file);
        self.touch_dir(dir, now);
        Ok(())
    }

    /// Applies a write: extends the size as needed, bumps mtime. Returns
    /// `(pre_size, post_size)`.
    ///
    /// # Errors
    ///
    /// [`FsError::IsDir`] when the target is a directory.
    pub fn write(
        &mut self,
        file: u64,
        offset: u64,
        count: u32,
        now: u64,
    ) -> Result<(u64, u64), FsError> {
        let inode = self.inode_mut(file)?;
        if inode.ftype == Ftype3::Directory {
            return Err(FsError::IsDir);
        }
        let pre = inode.size;
        inode.size = inode.size.max(offset + u64::from(count));
        inode.mtime = now;
        inode.ctime = now;
        Ok((pre, inode.size))
    }

    /// Services a read: returns `(bytes_returned, eof, size)` and bumps
    /// atime.
    ///
    /// # Errors
    ///
    /// [`FsError::IsDir`] when the target is a directory.
    pub fn read(
        &mut self,
        file: u64,
        offset: u64,
        count: u32,
        now: u64,
    ) -> Result<(u32, bool, u64), FsError> {
        let inode = self.inode_mut(file)?;
        if inode.ftype == Ftype3::Directory {
            return Err(FsError::IsDir);
        }
        inode.atime = now;
        if offset >= inode.size {
            return Ok((0, true, inode.size));
        }
        let avail = inode.size - offset;
        let n = u64::from(count).min(avail) as u32;
        let eof = offset + u64::from(n) >= inode.size;
        Ok((n, eof, inode.size))
    }

    /// Truncates or extends a file to `size`. Returns `(pre, post)`.
    ///
    /// # Errors
    ///
    /// [`FsError::IsDir`] when the target is a directory.
    pub fn set_size(&mut self, file: u64, size: u64, now: u64) -> Result<(u64, u64), FsError> {
        let inode = self.inode_mut(file)?;
        if inode.ftype == Ftype3::Directory {
            return Err(FsError::IsDir);
        }
        let pre = inode.size;
        inode.size = size;
        inode.mtime = now;
        inode.ctime = now;
        Ok((pre, size))
    }

    /// Lists a directory's entries, sorted by name for determinism.
    ///
    /// # Errors
    ///
    /// Directory errors as in [`SimFs::lookup`].
    pub fn readdir(&self, dir: u64) -> Result<Vec<(String, u64)>, FsError> {
        let mut entries: Vec<(String, u64)> = self
            .dir_entries(dir)?
            .iter()
            .map(|(n, &id)| (n.clone(), id))
            .collect();
        entries.sort();
        Ok(entries)
    }

    fn alloc_inode(&mut self, ftype: Ftype3, uid: u32, gid: u32, now: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.inodes.insert(
            id,
            Inode {
                id,
                ftype,
                size: 0,
                mode: if ftype == Ftype3::Directory {
                    0o755
                } else {
                    0o644
                },
                uid,
                gid,
                nlink: if ftype == Ftype3::Directory { 2 } else { 1 },
                mtime: now,
                ctime: now,
                atime: now,
                link_target: None,
            },
        );
        id
    }

    fn touch_dir(&mut self, dir: u64, now: u64) {
        if let Some(d) = self.inodes.get_mut(&dir) {
            d.mtime = now;
            d.ctime = now;
            d.size = self.dirs.get(&dir).map_or(0, |e| 512 + 24 * e.len() as u64);
        }
    }

    /// Checks the filesystem's structural invariants, returning every
    /// violation as a human-readable string (empty means consistent).
    ///
    /// Checked: the root exists and is a directory; the directory table
    /// covers exactly the directory inodes; every directory entry
    /// points at a live inode; every non-directory inode's link count
    /// equals its number of directory references (and is at least one —
    /// an unreferenced inode should have been reclaimed); no directory
    /// is hard-linked (at most one parent entry, none for the root);
    /// and directory sizes follow the `512 + 24·entries` model. The
    /// concurrency tests call this after hammering a shared server from
    /// several client connections.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut problems = Vec::new();
        match self.inodes.get(&self.root) {
            Some(r) if r.ftype == Ftype3::Directory => {}
            Some(_) => problems.push("root inode is not a directory".into()),
            None => problems.push("root inode missing".into()),
        }
        for (&id, inode) in &self.inodes {
            let is_dir = inode.ftype == Ftype3::Directory;
            if is_dir != self.dirs.contains_key(&id) {
                problems.push(format!(
                    "inode {id}: directory table disagrees with ftype {:?}",
                    inode.ftype
                ));
            }
        }
        for &id in self.dirs.keys() {
            if !self.inodes.contains_key(&id) {
                problems.push(format!("directory table entry {id} has no inode"));
            }
        }
        let mut refs: HashMap<u64, u32> = HashMap::new();
        for (&dir, entries) in &self.dirs {
            for (name, &child) in entries {
                *refs.entry(child).or_insert(0) += 1;
                if !self.inodes.contains_key(&child) {
                    problems.push(format!("dangling entry {dir}:{name} -> {child}"));
                }
            }
        }
        for (&id, inode) in &self.inodes {
            let n = refs.get(&id).copied().unwrap_or(0);
            if inode.ftype == Ftype3::Directory {
                let expect = if id == self.root { 0 } else { 1 };
                if n != expect {
                    problems.push(format!("directory {id} has {n} parent entries"));
                }
                let entries = self.dirs.get(&id).map_or(0, |e| e.len() as u64);
                let sized = 512 + 24 * entries;
                if inode.size != sized && !(entries == 0 && inode.size == 0) {
                    problems.push(format!(
                        "directory {id} size {} != {sized} for {entries} entries",
                        inode.size
                    ));
                }
            } else {
                if n == 0 {
                    problems.push(format!("inode {id} is unreferenced but not reclaimed"));
                }
                if inode.nlink != n {
                    problems.push(format!(
                        "inode {id} nlink {} != {n} directory references",
                        inode.nlink
                    ));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_read_write() {
        let mut fs = SimFs::new();
        let (f, existed) = fs.create(fs.root(), "inbox", 100, 100, 10).unwrap();
        assert!(!existed);
        assert_eq!(fs.lookup(fs.root(), "inbox").unwrap(), f);
        let (pre, post) = fs.write(f, 0, 1000, 20).unwrap();
        assert_eq!((pre, post), (0, 1000));
        let (n, eof, size) = fs.read(f, 0, 8192, 30).unwrap();
        assert_eq!((n, eof, size), (1000, true, 1000));
        let (n, eof, _) = fs.read(f, 500, 100, 31).unwrap();
        assert_eq!((n, eof), (100, false));
    }

    #[test]
    fn read_past_eof() {
        let mut fs = SimFs::new();
        let (f, _) = fs.create(fs.root(), "x", 0, 0, 0).unwrap();
        let (n, eof, _) = fs.read(f, 100, 100, 1).unwrap();
        assert_eq!((n, eof), (0, true));
    }

    #[test]
    fn unchecked_create_truncates_existing() {
        let mut fs = SimFs::new();
        let (f, _) = fs.create(fs.root(), "x", 0, 0, 0).unwrap();
        fs.write(f, 0, 100, 1).unwrap();
        let (f2, existed) = fs.create(fs.root(), "x", 0, 0, 2).unwrap();
        assert!(existed);
        assert_eq!(f2, f);
        assert_eq!(fs.inode(f).unwrap().size, 0);
    }

    #[test]
    fn remove_frees_inode() {
        let mut fs = SimFs::new();
        let (f, _) = fs.create(fs.root(), "t", 0, 0, 0).unwrap();
        fs.remove(fs.root(), "t", 1).unwrap();
        assert_eq!(fs.lookup(fs.root(), "t"), Err(FsError::NoEnt));
        assert_eq!(fs.inode(f).err(), Some(FsError::Stale));
    }

    #[test]
    fn hard_link_keeps_inode_alive() {
        let mut fs = SimFs::new();
        let (f, _) = fs.create(fs.root(), "a", 0, 0, 0).unwrap();
        fs.link(f, fs.root(), "b", 1).unwrap();
        fs.remove(fs.root(), "a", 2).unwrap();
        assert!(fs.inode(f).is_ok());
        fs.remove(fs.root(), "b", 3).unwrap();
        assert!(fs.inode(f).is_err());
    }

    #[test]
    fn mkdir_rmdir() {
        let mut fs = SimFs::new();
        let d = fs.mkdir(fs.root(), "home7", 0, 0, 0).unwrap();
        assert_eq!(fs.mkdir(fs.root(), "home7", 0, 0, 1), Err(FsError::Exist));
        let (f, _) = fs.create(d, "inbox", 0, 0, 2).unwrap();
        assert_eq!(fs.rmdir(fs.root(), "home7", 3), Err(FsError::NotEmpty));
        fs.remove(d, "inbox", 4).unwrap();
        let _ = f;
        fs.rmdir(fs.root(), "home7", 5).unwrap();
        assert_eq!(fs.lookup(fs.root(), "home7"), Err(FsError::NoEnt));
    }

    #[test]
    fn rename_replaces_target() {
        let mut fs = SimFs::new();
        let (a, _) = fs.create(fs.root(), "mbox.tmp", 0, 0, 0).unwrap();
        let (b, _) = fs.create(fs.root(), "mbox", 0, 0, 1).unwrap();
        let (moved, replaced) = fs
            .rename(fs.root(), "mbox.tmp", fs.root(), "mbox", 2)
            .unwrap();
        assert_eq!(moved, a);
        assert_eq!(replaced, Some(b));
        assert!(fs.inode(b).is_err());
        assert_eq!(fs.lookup(fs.root(), "mbox").unwrap(), a);
    }

    #[test]
    fn symlink_readdir() {
        let mut fs = SimFs::new();
        fs.symlink(fs.root(), "sl", "/target", 0, 0, 0).unwrap();
        fs.create(fs.root(), "af", 0, 0, 1).unwrap();
        let names: Vec<String> = fs
            .readdir(fs.root())
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["af".to_string(), "sl".to_string()]);
    }

    #[test]
    fn set_size_truncates() {
        let mut fs = SimFs::new();
        let (f, _) = fs.create(fs.root(), "x", 0, 0, 0).unwrap();
        fs.write(f, 0, 10_000, 1).unwrap();
        let (pre, post) = fs.set_size(f, 0, 2).unwrap();
        assert_eq!((pre, post), (10_000, 0));
    }

    #[test]
    fn stale_handle_errors() {
        let mut fs = SimFs::new();
        assert_eq!(fs.read(999, 0, 1, 0).err(), Some(FsError::Stale));
        assert_eq!(fs.lookup(999, "x").err(), Some(FsError::Stale));
    }

    #[test]
    fn lookup_on_file_is_notdir() {
        let mut fs = SimFs::new();
        let (f, _) = fs.create(fs.root(), "x", 0, 0, 0).unwrap();
        assert_eq!(fs.lookup(f, "y").err(), Some(FsError::NotDir));
    }

    #[test]
    fn fattr_reflects_state() {
        let mut fs = SimFs::new();
        let (f, _) = fs.create(fs.root(), "x", 7, 8, 5).unwrap();
        fs.write(f, 0, 9000, 6).unwrap();
        let attr = fs.inode(f).unwrap().fattr3();
        assert_eq!(attr.size, 9000);
        assert_eq!(attr.used, 16384); // rounded to 8k blocks
        assert_eq!(attr.uid, 7);
        assert_eq!(attr.fileid, f);
    }
}
