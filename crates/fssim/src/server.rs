//! The NFS protocol front-end over [`SimFs`].
//!
//! Takes decoded NFSv3 (and NFSv2) calls, applies them to the
//! filesystem, and produces replies with faithful attributes and WCC
//! data — the material the client caches key on and the analyses mine.

use crate::fs::{FsError, SimFs};
use nfstrace_nfs::fh::FileHandle;
use nfstrace_nfs::types::{Fattr3, NfsStat3, WccAttr, WccData};
use nfstrace_nfs::v2::{Call2, Fattr2, Reply2};
use nfstrace_nfs::v3::{
    Access3Res, Call3, Commit3Res, Create3Res, DirEntry3, DirEntryPlus3, Fsinfo3Res, Fsstat3Res,
    Getattr3Res, Link3Res, Lookup3Res, Pathconf3Res, Read3Res, Readdir3Res, Readdirplus3Res,
    Readlink3Res, Remove3Res, Rename3Res, Reply3, Reply3Body, Setattr3Res, Write3Res,
};

/// A simulated NFS server instance.
#[derive(Debug)]
pub struct NfsServer {
    fs: SimFs,
    /// Server identity used in traces.
    pub server_ip: u32,
}

impl NfsServer {
    /// Creates a server over a fresh filesystem.
    pub fn new(server_ip: u32) -> Self {
        Self {
            fs: SimFs::new(),
            server_ip,
        }
    }

    /// The filesystem, for workload setup (building home directories).
    pub fn fs_mut(&mut self) -> &mut SimFs {
        &mut self.fs
    }

    /// The filesystem, read-only.
    pub fn fs(&self) -> &SimFs {
        &self.fs
    }

    /// The root file handle clients mount.
    pub fn root_fh(&self) -> FileHandle {
        FileHandle::from_u64(self.fs.root())
    }

    fn attr_of(&self, id: u64) -> Option<Fattr3> {
        self.fs.inode(id).ok().map(|i| i.fattr3())
    }

    fn wcc(&self, pre: Option<(u64, u64)>, id: u64) -> WccData {
        WccData {
            before: pre.map(|(size, mtime)| WccAttr {
                size,
                mtime: nfstrace_nfs::types::NfsTime3::from_micros(mtime),
                ctime: nfstrace_nfs::types::NfsTime3::from_micros(mtime),
            }),
            after: self.attr_of(id),
        }
    }

    fn pre_of(&self, id: u64) -> Option<(u64, u64)> {
        self.fs.inode(id).ok().map(|i| (i.size, i.mtime))
    }

    /// Handles one NFSv3 call at simulation time `now` (µs).
    pub fn handle_v3(&mut self, call: &Call3, now: u64) -> Reply3 {
        match call {
            Call3::Null => Reply3::ok(Reply3Body::Null),
            Call3::Getattr(a) => match self.fh_id(&a.object) {
                Ok(id) => match self.attr_of(id) {
                    Some(attr) => Reply3::ok(Reply3Body::Getattr(Getattr3Res {
                        attributes: Some(attr),
                    })),
                    None => Reply3::error(call.proc(), NfsStat3::Stale),
                },
                Err(s) => Reply3::error(call.proc(), s),
            },
            Call3::Setattr(a) => {
                let id = match self.fh_id(&a.object) {
                    Ok(id) => id,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let pre = self.pre_of(id);
                if let Some(size) = a.new_attributes.size {
                    if self.fs.set_size(id, size, now).is_err() {
                        return Reply3::error(call.proc(), NfsStat3::IsDir);
                    }
                }
                Reply3::ok(Reply3Body::Setattr(Setattr3Res {
                    wcc: self.wcc(pre, id),
                }))
            }
            Call3::Lookup(a) => {
                let dir = match self.fh_id(&a.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                match self.fs.lookup(dir, &a.name) {
                    Ok(child) => Reply3::ok(Reply3Body::Lookup(Lookup3Res {
                        object: Some(FileHandle::from_u64(child)),
                        obj_attributes: self.attr_of(child),
                        dir_attributes: self.attr_of(dir),
                    })),
                    Err(e) => Reply3 {
                        status: e.to_nfsstat(),
                        body: Reply3Body::Lookup(Lookup3Res {
                            object: None,
                            obj_attributes: None,
                            dir_attributes: self.attr_of(dir),
                        }),
                    },
                }
            }
            Call3::Access(a) => match self.fh_id(&a.object) {
                Ok(id) => Reply3::ok(Reply3Body::Access(Access3Res {
                    obj_attributes: self.attr_of(id),
                    access: a.access,
                })),
                Err(s) => Reply3::error(call.proc(), s),
            },
            Call3::Readlink(a) => {
                let id = match self.fh_id(&a.object) {
                    Ok(id) => id,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                match self.fs.inode(id).ok().and_then(|i| i.link_target.clone()) {
                    Some(target) => Reply3::ok(Reply3Body::Readlink(Readlink3Res {
                        obj_attributes: self.attr_of(id),
                        target,
                    })),
                    None => Reply3::error(call.proc(), NfsStat3::Inval),
                }
            }
            Call3::Read(a) => {
                let id = match self.fh_id(&a.file) {
                    Ok(id) => id,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                match self.fs.read(id, a.offset, a.count, now) {
                    Ok((n, eof, _size)) => Reply3::ok(Reply3Body::Read(Read3Res {
                        file_attributes: self.attr_of(id),
                        count: n,
                        eof,
                        data: vec![0u8; n as usize],
                    })),
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Write(a) => {
                let id = match self.fh_id(&a.file) {
                    Ok(id) => id,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let pre = self.pre_of(id);
                match self.fs.write(id, a.offset, a.count, now) {
                    Ok((_pre, _post)) => Reply3::ok(Reply3Body::Write(Write3Res {
                        wcc: self.wcc(pre, id),
                        count: a.count,
                        committed: 2, // FILE_SYNC
                        verf: [7; 8],
                    })),
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Create(a) => {
                let dir = match self.fh_id(&a.where_.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let pre = self.pre_of(dir);
                match self.fs.create(dir, &a.where_.name, 0, 0, now) {
                    Ok((id, _existed)) => Reply3::ok(Reply3Body::Create(Create3Res {
                        obj: Some(FileHandle::from_u64(id)),
                        obj_attributes: self.attr_of(id),
                        dir_wcc: self.wcc(pre, dir),
                    })),
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Mkdir(a) => {
                let dir = match self.fh_id(&a.where_.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let pre = self.pre_of(dir);
                match self.fs.mkdir(dir, &a.where_.name, 0, 0, now) {
                    Ok(id) => Reply3::ok(Reply3Body::Mkdir(Create3Res {
                        obj: Some(FileHandle::from_u64(id)),
                        obj_attributes: self.attr_of(id),
                        dir_wcc: self.wcc(pre, dir),
                    })),
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Symlink(a) => {
                let dir = match self.fh_id(&a.where_.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let pre = self.pre_of(dir);
                match self.fs.symlink(dir, &a.where_.name, &a.target, 0, 0, now) {
                    Ok(id) => Reply3::ok(Reply3Body::Symlink(Create3Res {
                        obj: Some(FileHandle::from_u64(id)),
                        obj_attributes: self.attr_of(id),
                        dir_wcc: self.wcc(pre, dir),
                    })),
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Mknod(a) => {
                // Special nodes are rare on both systems; treat as files.
                let dir = match self.fh_id(&a.where_.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let pre = self.pre_of(dir);
                match self.fs.create(dir, &a.where_.name, 0, 0, now) {
                    Ok((id, _)) => Reply3::ok(Reply3Body::Mknod(Create3Res {
                        obj: Some(FileHandle::from_u64(id)),
                        obj_attributes: self.attr_of(id),
                        dir_wcc: self.wcc(pre, dir),
                    })),
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Remove(a) => {
                let dir = match self.fh_id(&a.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let pre = self.pre_of(dir);
                match self.fs.remove(dir, &a.name, now) {
                    Ok(_) => Reply3::ok(Reply3Body::Remove(Remove3Res {
                        dir_wcc: self.wcc(pre, dir),
                    })),
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Rmdir(a) => {
                let dir = match self.fh_id(&a.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let pre = self.pre_of(dir);
                match self.fs.rmdir(dir, &a.name, now) {
                    Ok(_) => Reply3::ok(Reply3Body::Rmdir(Remove3Res {
                        dir_wcc: self.wcc(pre, dir),
                    })),
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Rename(a) => {
                let from = match self.fh_id(&a.from.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let to = match self.fh_id(&a.to.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let pre_from = self.pre_of(from);
                let pre_to = self.pre_of(to);
                match self.fs.rename(from, &a.from.name, to, &a.to.name, now) {
                    Ok(_) => Reply3::ok(Reply3Body::Rename(Rename3Res {
                        from_wcc: self.wcc(pre_from, from),
                        to_wcc: self.wcc(pre_to, to),
                    })),
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Link(a) => {
                let file = match self.fh_id(&a.file) {
                    Ok(f) => f,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let dir = match self.fh_id(&a.link.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                let pre = self.pre_of(dir);
                match self.fs.link(file, dir, &a.link.name, now) {
                    Ok(()) => Reply3::ok(Reply3Body::Link(Link3Res {
                        file_attributes: self.attr_of(file),
                        dir_wcc: self.wcc(pre, dir),
                    })),
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Readdir(a) => {
                let dir = match self.fh_id(&a.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                match self.fs.readdir(dir) {
                    Ok(entries) => {
                        let skip = a.cookie as usize;
                        let page: Vec<DirEntry3> = entries
                            .iter()
                            .enumerate()
                            .skip(skip)
                            .take(64)
                            .map(|(i, (name, id))| DirEntry3 {
                                fileid: *id,
                                name: name.clone(),
                                cookie: (i + 1) as u64,
                            })
                            .collect();
                        let eof = skip + page.len() >= entries.len();
                        Reply3::ok(Reply3Body::Readdir(Readdir3Res {
                            dir_attributes: self.attr_of(dir),
                            cookieverf: [0; 8],
                            entries: page,
                            eof,
                        }))
                    }
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Readdirplus(a) => {
                let dir = match self.fh_id(&a.dir) {
                    Ok(d) => d,
                    Err(s) => return Reply3::error(call.proc(), s),
                };
                match self.fs.readdir(dir) {
                    Ok(entries) => {
                        let skip = a.cookie as usize;
                        let page: Vec<DirEntryPlus3> = entries
                            .iter()
                            .enumerate()
                            .skip(skip)
                            .take(32)
                            .map(|(i, (name, id))| DirEntryPlus3 {
                                fileid: *id,
                                name: name.clone(),
                                cookie: (i + 1) as u64,
                                name_attributes: self.attr_of(*id),
                                name_handle: Some(FileHandle::from_u64(*id)),
                            })
                            .collect();
                        let eof = skip + page.len() >= entries.len();
                        Reply3::ok(Reply3Body::Readdirplus(Readdirplus3Res {
                            dir_attributes: self.attr_of(dir),
                            cookieverf: [0; 8],
                            entries: page,
                            eof,
                        }))
                    }
                    Err(e) => Reply3::error(call.proc(), e.to_nfsstat()),
                }
            }
            Call3::Fsstat(a) => match self.fh_id(&a.object) {
                Ok(id) => Reply3::ok(Reply3Body::Fsstat(Fsstat3Res {
                    obj_attributes: self.attr_of(id),
                    tbytes: 53_000_000_000,
                    fbytes: 20_000_000_000,
                    abytes: 20_000_000_000,
                    tfiles: 4_000_000,
                    ffiles: 3_000_000,
                    afiles: 3_000_000,
                    invarsec: 0,
                })),
                Err(s) => Reply3::error(call.proc(), s),
            },
            Call3::Fsinfo(a) => match self.fh_id(&a.object) {
                Ok(id) => Reply3::ok(Reply3Body::Fsinfo(Fsinfo3Res {
                    obj_attributes: self.attr_of(id),
                    rtmax: 32768,
                    rtpref: 32768,
                    rtmult: 4096,
                    wtmax: 32768,
                    wtpref: 32768,
                    wtmult: 4096,
                    dtpref: 8192,
                    maxfilesize: u64::MAX,
                    time_delta: nfstrace_nfs::types::NfsTime3 {
                        seconds: 0,
                        nseconds: 1000,
                    },
                    properties: 0x1b,
                })),
                Err(s) => Reply3::error(call.proc(), s),
            },
            Call3::Pathconf(a) => match self.fh_id(&a.object) {
                Ok(id) => Reply3::ok(Reply3Body::Pathconf(Pathconf3Res {
                    obj_attributes: self.attr_of(id),
                    linkmax: 32767,
                    name_max: 255,
                    no_trunc: true,
                    chown_restricted: true,
                    case_insensitive: false,
                    case_preserving: true,
                })),
                Err(s) => Reply3::error(call.proc(), s),
            },
            Call3::Commit(a) => match self.fh_id(&a.file) {
                Ok(id) => Reply3::ok(Reply3Body::Commit(Commit3Res {
                    wcc: self.wcc(self.pre_of(id), id),
                    verf: [7; 8],
                })),
                Err(s) => Reply3::error(call.proc(), s),
            },
        }
    }

    /// Handles one NFSv2 call at simulation time `now` (µs).
    pub fn handle_v2(&mut self, call: &Call2, now: u64) -> Reply2 {
        let attr2 = |s: &Self, id: u64| s.attr_of(id).map(Fattr2::from);
        match call {
            Call2::Null | Call2::Root | Call2::Writecache => Reply2::Void,
            Call2::Getattr(fh) => match self.fh_id(fh) {
                Ok(id) => Reply2::AttrStat {
                    status: NfsStat3::Ok,
                    attributes: attr2(self, id),
                },
                Err(s) => Reply2::AttrStat {
                    status: s,
                    attributes: None,
                },
            },
            Call2::Setattr { file, attributes } => {
                let id = match self.fh_id(file) {
                    Ok(id) => id,
                    Err(s) => {
                        return Reply2::AttrStat {
                            status: s,
                            attributes: None,
                        }
                    }
                };
                if let Some(size) = attributes.size_opt() {
                    let _ = self.fs.set_size(id, u64::from(size), now);
                }
                Reply2::AttrStat {
                    status: NfsStat3::Ok,
                    attributes: attr2(self, id),
                }
            }
            Call2::Lookup(a) => {
                let dir = match self.fh_id(&a.dir) {
                    Ok(d) => d,
                    Err(s) => {
                        return Reply2::DirOpRes {
                            status: s,
                            file: None,
                            attributes: None,
                        }
                    }
                };
                match self.fs.lookup(dir, &a.name) {
                    Ok(child) => Reply2::DirOpRes {
                        status: NfsStat3::Ok,
                        file: Some(FileHandle::from_u64(child)),
                        attributes: attr2(self, child),
                    },
                    Err(e) => Reply2::DirOpRes {
                        status: e.to_nfsstat(),
                        file: None,
                        attributes: None,
                    },
                }
            }
            Call2::Readlink(fh) => {
                let id = match self.fh_id(fh) {
                    Ok(id) => id,
                    Err(s) => {
                        return Reply2::Readlink {
                            status: s,
                            target: String::new(),
                        }
                    }
                };
                match self.fs.inode(id).ok().and_then(|i| i.link_target.clone()) {
                    Some(target) => Reply2::Readlink {
                        status: NfsStat3::Ok,
                        target,
                    },
                    None => Reply2::Readlink {
                        status: NfsStat3::Inval,
                        target: String::new(),
                    },
                }
            }
            Call2::Read {
                file,
                offset,
                count,
                ..
            } => {
                let id = match self.fh_id(file) {
                    Ok(id) => id,
                    Err(s) => {
                        return Reply2::Read {
                            status: s,
                            attributes: None,
                            data: Vec::new(),
                        }
                    }
                };
                match self.fs.read(id, u64::from(*offset), *count, now) {
                    Ok((n, _eof, _)) => Reply2::Read {
                        status: NfsStat3::Ok,
                        attributes: attr2(self, id),
                        data: vec![0u8; n as usize],
                    },
                    Err(e) => Reply2::Read {
                        status: e.to_nfsstat(),
                        attributes: None,
                        data: Vec::new(),
                    },
                }
            }
            Call2::Write {
                file, offset, data, ..
            } => {
                let id = match self.fh_id(file) {
                    Ok(id) => id,
                    Err(s) => {
                        return Reply2::AttrStat {
                            status: s,
                            attributes: None,
                        }
                    }
                };
                match self
                    .fs
                    .write(id, u64::from(*offset), data.len() as u32, now)
                {
                    Ok(_) => Reply2::AttrStat {
                        status: NfsStat3::Ok,
                        attributes: attr2(self, id),
                    },
                    Err(e) => Reply2::AttrStat {
                        status: e.to_nfsstat(),
                        attributes: None,
                    },
                }
            }
            Call2::Create { where_, .. } => {
                let dir = match self.fh_id(&where_.dir) {
                    Ok(d) => d,
                    Err(s) => {
                        return Reply2::DirOpRes {
                            status: s,
                            file: None,
                            attributes: None,
                        }
                    }
                };
                match self.fs.create(dir, &where_.name, 0, 0, now) {
                    Ok((id, _)) => Reply2::DirOpRes {
                        status: NfsStat3::Ok,
                        file: Some(FileHandle::from_u64(id)),
                        attributes: attr2(self, id),
                    },
                    Err(e) => Reply2::DirOpRes {
                        status: e.to_nfsstat(),
                        file: None,
                        attributes: None,
                    },
                }
            }
            Call2::Mkdir { where_, .. } => {
                let dir = match self.fh_id(&where_.dir) {
                    Ok(d) => d,
                    Err(s) => {
                        return Reply2::DirOpRes {
                            status: s,
                            file: None,
                            attributes: None,
                        }
                    }
                };
                match self.fs.mkdir(dir, &where_.name, 0, 0, now) {
                    Ok(id) => Reply2::DirOpRes {
                        status: NfsStat3::Ok,
                        file: Some(FileHandle::from_u64(id)),
                        attributes: attr2(self, id),
                    },
                    Err(e) => Reply2::DirOpRes {
                        status: e.to_nfsstat(),
                        file: None,
                        attributes: None,
                    },
                }
            }
            Call2::Remove(a) => self.stat_op(|fs| {
                let dir = a.dir.as_u64().ok_or(FsError::Stale)?;
                fs.remove(dir, &a.name, now).map(|_| ())
            }),
            Call2::Rmdir(a) => self.stat_op(|fs| {
                let dir = a.dir.as_u64().ok_or(FsError::Stale)?;
                fs.rmdir(dir, &a.name, now).map(|_| ())
            }),
            Call2::Rename { from, to } => self.stat_op(|fs| {
                let f = from.dir.as_u64().ok_or(FsError::Stale)?;
                let t = to.dir.as_u64().ok_or(FsError::Stale)?;
                fs.rename(f, &from.name, t, &to.name, now).map(|_| ())
            }),
            Call2::Link { from, to } => self.stat_op(|fs| {
                let f = from.as_u64().ok_or(FsError::Stale)?;
                let d = to.dir.as_u64().ok_or(FsError::Stale)?;
                fs.link(f, d, &to.name, now)
            }),
            Call2::Symlink { where_, target, .. } => self.stat_op(|fs| {
                let d = where_.dir.as_u64().ok_or(FsError::Stale)?;
                fs.symlink(d, &where_.name, target, 0, 0, now).map(|_| ())
            }),
            Call2::Readdir { dir, cookie, .. } => {
                let d = match self.fh_id(dir) {
                    Ok(d) => d,
                    Err(s) => {
                        return Reply2::Readdir {
                            status: s,
                            entries: Vec::new(),
                            eof: false,
                        }
                    }
                };
                match self.fs.readdir(d) {
                    Ok(entries) => {
                        let skip = *cookie as usize;
                        let page: Vec<nfstrace_nfs::v2::DirEntry2> = entries
                            .iter()
                            .enumerate()
                            .skip(skip)
                            .take(64)
                            .map(|(i, (name, id))| nfstrace_nfs::v2::DirEntry2 {
                                fileid: *id as u32,
                                name: name.clone(),
                                cookie: (i + 1) as u32,
                            })
                            .collect();
                        let eof = skip + page.len() >= entries.len();
                        Reply2::Readdir {
                            status: NfsStat3::Ok,
                            entries: page,
                            eof,
                        }
                    }
                    Err(e) => Reply2::Readdir {
                        status: e.to_nfsstat(),
                        entries: Vec::new(),
                        eof: false,
                    },
                }
            }
            Call2::Statfs(fh) => match self.fh_id(fh) {
                Ok(_) => Reply2::Statfs {
                    status: NfsStat3::Ok,
                    info: [8192, 8192, 6_400_000, 2_400_000, 2_400_000],
                },
                Err(s) => Reply2::Statfs {
                    status: s,
                    info: [0; 5],
                },
            },
        }
    }

    fn stat_op<F>(&mut self, f: F) -> Reply2
    where
        F: FnOnce(&mut SimFs) -> Result<(), FsError>,
    {
        match f(&mut self.fs) {
            Ok(()) => Reply2::Stat(NfsStat3::Ok),
            Err(e) => Reply2::Stat(e.to_nfsstat()),
        }
    }

    fn fh_id(&self, fh: &FileHandle) -> Result<u64, NfsStat3> {
        fh.as_u64().ok_or(NfsStat3::Stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_nfs::v3::{
        Create3Args, CreateHow, DirOpArgs, FhArgs, Read3Args, Setattr3Args, Write3Args,
    };
    use nfstrace_nfs::Sattr3;

    fn create(server: &mut NfsServer, dir: FileHandle, name: &str, now: u64) -> FileHandle {
        let reply = server.handle_v3(
            &Call3::Create(Create3Args {
                where_: DirOpArgs {
                    dir,
                    name: name.to_string(),
                },
                how: CreateHow::Unchecked,
                attributes: Sattr3::default(),
            }),
            now,
        );
        match reply.body {
            Reply3Body::Create(res) => res.obj.expect("created"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_write_read_cycle() {
        let mut s = NfsServer::new(1);
        let root = s.root_fh();
        let fh = create(&mut s, root, "inbox", 10);
        let w = s.handle_v3(
            &Call3::Write(Write3Args {
                file: fh.clone(),
                offset: 0,
                count: 5000,
                stable: Default::default(),
                data: vec![0; 5000],
            }),
            20,
        );
        assert!(w.status.is_ok());
        let r = s.handle_v3(
            &Call3::Read(Read3Args {
                file: fh,
                offset: 0,
                count: 8192,
            }),
            30,
        );
        match r.body {
            Reply3Body::Read(res) => {
                assert_eq!(res.count, 5000);
                assert!(res.eof);
                assert_eq!(res.data.len(), 5000);
                assert_eq!(res.file_attributes.unwrap().size, 5000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_carries_wcc_pre_size() {
        let mut s = NfsServer::new(1);
        let root = s.root_fh();
        let fh = create(&mut s, root, "f", 0);
        s.handle_v3(
            &Call3::Write(Write3Args {
                file: fh.clone(),
                offset: 0,
                count: 100,
                stable: Default::default(),
                data: vec![0; 100],
            }),
            1,
        );
        let w2 = s.handle_v3(
            &Call3::Write(Write3Args {
                file: fh,
                offset: 100,
                count: 100,
                stable: Default::default(),
                data: vec![0; 100],
            }),
            2,
        );
        match w2.body {
            Reply3Body::Write(res) => {
                assert_eq!(res.wcc.before.unwrap().size, 100);
                assert_eq!(res.wcc.after.unwrap().size, 200);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lookup_missing_is_noent_with_dir_attrs() {
        let mut s = NfsServer::new(1);
        let root = s.root_fh();
        let r = s.handle_v3(
            &Call3::Lookup(DirOpArgs {
                dir: root,
                name: "nope".into(),
            }),
            0,
        );
        assert_eq!(r.status, NfsStat3::NoEnt);
        match r.body {
            Reply3Body::Lookup(res) => assert!(res.dir_attributes.is_some()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn setattr_truncate() {
        let mut s = NfsServer::new(1);
        let root = s.root_fh();
        let fh = create(&mut s, root, "f", 0);
        s.handle_v3(
            &Call3::Write(Write3Args {
                file: fh.clone(),
                offset: 0,
                count: 9999,
                stable: Default::default(),
                data: vec![0; 9999],
            }),
            1,
        );
        let r = s.handle_v3(
            &Call3::Setattr(Setattr3Args {
                object: fh,
                new_attributes: Sattr3 {
                    size: Some(0),
                    ..Sattr3::default()
                },
                guard_ctime: None,
            }),
            2,
        );
        match r.body {
            Reply3Body::Setattr(res) => {
                assert_eq!(res.wcc.before.unwrap().size, 9999);
                assert_eq!(res.wcc.after.unwrap().size, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn readdir_pages_and_eof() {
        let mut s = NfsServer::new(1);
        let root = s.root_fh();
        for i in 0..100 {
            create(&mut s, root.clone(), &format!("f{i:03}"), i);
        }
        let r = s.handle_v3(
            &Call3::Readdir(nfstrace_nfs::v3::Readdir3Args {
                dir: root.clone(),
                cookie: 0,
                cookieverf: [0; 8],
                count: 4096,
            }),
            200,
        );
        let (n1, eof1, next) = match r.body {
            Reply3Body::Readdir(res) => (
                res.entries.len(),
                res.eof,
                res.entries.last().unwrap().cookie,
            ),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(n1, 64);
        assert!(!eof1);
        let r2 = s.handle_v3(
            &Call3::Readdir(nfstrace_nfs::v3::Readdir3Args {
                dir: root,
                cookie: next,
                cookieverf: [0; 8],
                count: 4096,
            }),
            201,
        );
        match r2.body {
            Reply3Body::Readdir(res) => {
                assert_eq!(res.entries.len(), 36);
                assert!(res.eof);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v2_roundtrip_basicops() {
        let mut s = NfsServer::new(1);
        let root = s.root_fh();
        let r = s.handle_v2(
            &Call2::Create {
                where_: nfstrace_nfs::v2::DirOpArgs2 {
                    dir: root,
                    name: "old.c".into(),
                },
                attributes: Default::default(),
            },
            0,
        );
        let fh = match r {
            Reply2::DirOpRes {
                status,
                file: Some(fh),
                ..
            } => {
                assert!(status.is_ok());
                fh
            }
            other => panic!("unexpected {other:?}"),
        };
        let r = s.handle_v2(
            &Call2::Write {
                file: fh.clone(),
                beginoffset: 0,
                offset: 0,
                totalcount: 0,
                data: vec![0; 321],
            },
            1,
        );
        match r {
            Reply2::AttrStat {
                status,
                attributes: Some(a),
            } => {
                assert!(status.is_ok());
                assert_eq!(a.size, 321);
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = s.handle_v2(
            &Call2::Read {
                file: fh,
                offset: 0,
                count: 1000,
                totalcount: 0,
            },
            2,
        );
        match r {
            Reply2::Read { status, data, .. } => {
                assert!(status.is_ok());
                assert_eq!(data.len(), 321);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_handle_v3() {
        let mut s = NfsServer::new(1);
        let r = s.handle_v3(
            &Call3::Getattr(FhArgs {
                object: FileHandle::from_u64(424242),
            }),
            0,
        );
        assert_eq!(r.status, NfsStat3::Stale);
    }
}
