//! Simulated NFS server: in-memory filesystem, disk model, and
//! read-ahead policies.
//!
//! Three roles in the reproduction:
//!
//! 1. [`fs::SimFs`] + [`server::NfsServer`] are the server side that the
//!    synthetic CAMPUS/EECS clients talk to, so the generated NFS
//!    traffic has honest semantics (handles, attributes, WCC data,
//!    errors).
//! 2. [`disk::DiskModel`] prices accesses with seek/rotation/transfer
//!    costs, standing in for the FreeBSD server testbed of §6.4.
//! 3. [`readahead`] implements the two prefetch heuristics the paper
//!    compares: a fragile strictly-sequential detector and one driven by
//!    the sequentiality metric, which tolerates the ~10% reordered
//!    requests a loaded NFS server actually sees.

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod disk;
pub mod fs;
pub mod readahead;
pub mod server;
pub mod shared;

pub use disk::{DiskModel, DiskParams};
pub use fs::{FsError, SimFs};
pub use server::NfsServer;
pub use shared::SharedNfsServer;
