//! A thread-shareable [`NfsServer`].
//!
//! The plain server exposes `&mut self` handlers, which is right for
//! the single-threaded workload simulation but not for a serving loop
//! where several client connections dispatch concurrently. This wrapper
//! owns the server behind a mutex: NFS semantics make every procedure a
//! single atomic step against filesystem state, so coarse per-call
//! locking is the correct concurrency model (a finer-grained scheme
//! would have to re-derive exactly this atomicity per procedure).
//! Cloning shares the underlying server.

use crate::fs::SimFs;
use crate::server::NfsServer;
use nfstrace_nfs::fh::FileHandle;
use nfstrace_nfs::v2::{Call2, Reply2};
use nfstrace_nfs::v3::{Call3, Reply3};
use std::sync::{Arc, Mutex, MutexGuard};

/// An [`NfsServer`] shareable across connection threads.
#[derive(Debug, Clone)]
pub struct SharedNfsServer {
    inner: Arc<Mutex<NfsServer>>,
}

impl SharedNfsServer {
    /// Creates a shared server over a fresh filesystem.
    pub fn new(server_ip: u32) -> Self {
        Self::from_server(NfsServer::new(server_ip))
    }

    /// Wraps an existing (possibly pre-populated) server.
    pub fn from_server(server: NfsServer) -> Self {
        SharedNfsServer {
            inner: Arc::new(Mutex::new(server)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, NfsServer> {
        // A panic mid-call can poison the lock; the filesystem state
        // itself is always left consistent (each handler is a single
        // atomic step), so serving continues.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The root file handle clients mount.
    pub fn root_fh(&self) -> FileHandle {
        self.lock().root_fh()
    }

    /// Handles one NFSv3 call at simulation time `now` (µs).
    pub fn handle_v3(&self, call: &Call3, now: u64) -> Reply3 {
        self.lock().handle_v3(call, now)
    }

    /// Handles one NFSv2 call at simulation time `now` (µs).
    pub fn handle_v2(&self, call: &Call2, now: u64) -> Reply2 {
        self.lock().handle_v2(call, now)
    }

    /// Runs `f` with exclusive access to the filesystem — setup
    /// (building home directories) and invariant checks.
    pub fn with_fs<R>(&self, f: impl FnOnce(&mut SimFs) -> R) -> R {
        f(self.lock().fs_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_nfs::types::{NfsStat3, Sattr3};
    use nfstrace_nfs::v3::{Call3, Create3Args, CreateHow, DirOpArgs, Reply3Body};

    fn create(dir: &FileHandle, name: &str) -> Call3 {
        Call3::Create(Create3Args {
            where_: DirOpArgs {
                dir: dir.clone(),
                name: name.into(),
            },
            how: CreateHow::Unchecked,
            attributes: Sattr3::default(),
        })
    }

    fn remove(dir: &FileHandle, name: &str) -> Call3 {
        Call3::Remove(DirOpArgs {
            dir: dir.clone(),
            name: name.into(),
        })
    }

    /// Two concurrent clients creating and removing in the same
    /// directory must never corrupt `SimFs` invariants: every
    /// interleaving of the per-call atomic steps leaves link counts,
    /// directory references, and reclamation consistent.
    #[test]
    fn concurrent_create_remove_keeps_simfs_consistent() {
        let server = SharedNfsServer::new(0x0a00_0002);
        let root = server.root_fh();
        let mut workers = Vec::new();
        for c in 0..2u64 {
            let server = server.clone();
            let root = root.clone();
            workers.push(std::thread::spawn(move || {
                let mut statuses = Vec::new();
                for i in 0..200u64 {
                    // Half the names are private to this client, half
                    // contested with the other client.
                    let name = if i % 2 == 0 {
                        format!("own-{c}-{i}")
                    } else {
                        format!("contested-{}", i % 7)
                    };
                    let now = c * 1_000_000 + i;
                    let reply = server.handle_v3(&create(&root, &name), now);
                    if let Reply3Body::Create(res) = &reply.body {
                        assert!(res.obj.is_some(), "create must return a handle");
                    }
                    statuses.push(reply.status);
                    if i % 3 != 0 {
                        // Removing a contested name can legitimately
                        // lose the race (NoEnt); it must never corrupt.
                        let reply = server.handle_v3(&remove(&root, &name), now + 1);
                        assert!(
                            matches!(reply.status, NfsStat3::Ok | NfsStat3::NoEnt),
                            "remove status {:?}",
                            reply.status
                        );
                    }
                }
                statuses
            }));
        }
        for w in workers {
            let statuses = w.join().expect("client thread");
            assert!(statuses.contains(&NfsStat3::Ok));
        }
        let problems = server.with_fs(|fs| fs.check_invariants());
        assert!(problems.is_empty(), "invariant violations: {problems:?}");
        // The directory is still fully usable.
        let reply = server.handle_v3(&create(&root, "after"), 9_999_999);
        assert_eq!(reply.status, NfsStat3::Ok);
    }
}
