//! A seek/rotation/transfer disk timing model.
//!
//! The §6.4 experiment needs a server whose read cost depends on access
//! locality: "on today's disks, if the file is laid out contiguously on
//! disk, then logical seeks of fewer than 10 blocks are unlikely to
//! induce disk arm movement." The model prices an access as
//!
//! - zero seek if the head is within `free_seek_blocks` of the target
//!   (short logical jumps ride the same track/cylinder),
//! - otherwise a seek that grows with distance up to `max_seek_micros`,
//! - plus half-rotation latency whenever a seek occurred,
//! - plus transfer time at `transfer_bytes_per_sec`.
//!
//! Parameters default to a circa-2001 7200 RPM disk.

/// Disk timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskParams {
    /// Blocks reachable without head movement (about one track's worth:
    /// circa-2001 tracks held ~0.5 MB ≈ 64 8 KB blocks).
    pub free_seek_blocks: u64,
    /// Fixed per-request cost: command processing plus the average
    /// rotational slip between back-to-back synchronous requests. This is
    /// what makes read-ahead profitable.
    pub command_overhead_micros: u64,
    /// Minimum seek (track-to-track), microseconds.
    pub min_seek_micros: u64,
    /// Full-stroke seek, microseconds.
    pub max_seek_micros: u64,
    /// Disk capacity in 8 KB blocks (for seek-distance scaling).
    pub capacity_blocks: u64,
    /// Half-rotation latency, microseconds (7200 RPM → ~4.17 ms).
    pub half_rotation_micros: u64,
    /// Sustained transfer rate, bytes per second.
    pub transfer_bytes_per_sec: u64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            free_seek_blocks: 64,
            command_overhead_micros: 1_000,
            min_seek_micros: 800,
            max_seek_micros: 15_000,
            capacity_blocks: 53_000_000_000 / 8192, // one CAMPUS 53 GB array
            half_rotation_micros: 4_170,
            transfer_bytes_per_sec: 25_000_000,
        }
    }
}

/// The disk head model: tracks position and prices accesses.
#[derive(Debug, Clone)]
pub struct DiskModel {
    params: DiskParams,
    head_block: u64,
    /// Total microseconds spent.
    busy_micros: u64,
    /// Accesses served.
    accesses: u64,
    /// Accesses that required a physical seek.
    seeks: u64,
}

impl DiskModel {
    /// Creates a disk with its head at block 0.
    pub fn new(params: DiskParams) -> Self {
        Self {
            params,
            head_block: 0,
            busy_micros: 0,
            accesses: 0,
            seeks: 0,
        }
    }

    /// Prices an access of `nblocks` 8 KB blocks at `block`, advances the
    /// head, and returns the cost in microseconds.
    pub fn access(&mut self, block: u64, nblocks: u64) -> u64 {
        self.accesses += 1;
        let distance = block.abs_diff(self.head_block);
        let mut cost = self.params.command_overhead_micros;
        if distance > self.params.free_seek_blocks {
            self.seeks += 1;
            // Seek time grows with the square root of distance, a common
            // first-order disk model.
            let frac =
                (distance as f64 / self.params.capacity_blocks.max(1) as f64).clamp(0.0, 1.0);
            let seek = self.params.min_seek_micros as f64
                + (self.params.max_seek_micros - self.params.min_seek_micros) as f64 * frac.sqrt();
            cost += seek as u64 + self.params.half_rotation_micros;
        }
        let bytes = nblocks.max(1) * 8192;
        cost += bytes * 1_000_000 / self.params.transfer_bytes_per_sec.max(1);
        self.head_block = block + nblocks;
        self.busy_micros += cost;
        cost
    }

    /// Total time spent, microseconds.
    pub fn busy_micros(&self) -> u64 {
        self.busy_micros
    }

    /// `(accesses, physical seeks)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.accesses, self.seeks)
    }

    /// The head's current block position.
    pub fn head_block(&self) -> u64 {
        self.head_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_access_is_cheap() {
        let mut d = DiskModel::new(DiskParams::default());
        let first = d.access(1000, 1); // positioning seek
        let mut seq_cost = 0;
        for i in 1..100u64 {
            seq_cost += d.access(1000 + i, 1);
        }
        // After the first seek every access is pure transfer.
        assert!(first > seq_cost / 99);
        let (accesses, seeks) = d.counters();
        assert_eq!(accesses, 100);
        assert_eq!(seeks, 1);
    }

    #[test]
    fn small_jumps_are_free_of_seeks() {
        let mut d = DiskModel::new(DiskParams::default());
        d.access(0, 1);
        d.access(5, 1); // 4-block jump: within free_seek_blocks
        let (_, seeks) = d.counters();
        assert_eq!(seeks, 0);
    }

    #[test]
    fn far_seek_costs_more_than_near_seek() {
        let mut near = DiskModel::new(DiskParams::default());
        near.access(0, 1);
        let near_cost = near.access(10_000, 1);
        let mut far = DiskModel::new(DiskParams::default());
        far.access(0, 1);
        let far_cost = far.access(5_000_000, 1);
        assert!(far_cost > near_cost);
    }

    #[test]
    fn transfer_scales_with_size() {
        let overhead = DiskParams::default().command_overhead_micros;
        let mut d = DiskModel::new(DiskParams::default());
        let one = d.access(d.head_block(), 1) - overhead;
        let eight = d.access(d.head_block(), 8) - overhead;
        assert!(eight >= one * 7, "one={one} eight={eight}");
    }

    #[test]
    fn head_advances_past_access() {
        let mut d = DiskModel::new(DiskParams::default());
        d.access(100, 4);
        assert_eq!(d.head_block(), 104);
    }
}
