//! Read-ahead policies and the §6.4 experiment harness.
//!
//! The paper modified the FreeBSD 4.4 NFS server "to employ a simplified
//! version of the sequentiality metric ... in its read-ahead heuristic"
//! and, on a loaded system where ~10% of requests arrived reordered,
//! measured >5% faster large sequential transfers. Two policies:
//!
//! - [`StrictSequential`]: the classic heuristic. A run of exactly
//!   sequential requests earns prefetch depth; *any* out-of-order request
//!   resets it ("a single out-of-order access should not relegate it to
//!   the random dustbin" — but under this policy it does).
//! - [`MetricReadAhead`]: keeps a streaming sequentiality score with a
//!   small jump tolerance; prefetch stays enabled while the score is
//!   high, so isolated reordered requests do not kill read-ahead.
//!
//! [`ReadServer`] replays a request stream against a [`DiskModel`] with
//! a prefetch cache and totals service time.

use crate::disk::DiskModel;
use std::collections::HashSet;

/// Blocks a policy asks the server to prefetch beyond the request.
pub const MAX_READAHEAD_BLOCKS: u64 = 8;

/// A prefetch decision: how many blocks to read ahead after the request.
pub trait ReadAheadPolicy {
    /// Observes a request for `nblocks` at `block`; returns the number of
    /// extra blocks to prefetch after it.
    fn on_read(&mut self, block: u64, nblocks: u64) -> u64;

    /// The policy's display name.
    fn name(&self) -> &'static str;
}

/// The fragile strictly-sequential detector (FreeBSD-style `seqcount`).
#[derive(Debug, Default)]
pub struct StrictSequential {
    next_expected: Option<u64>,
    seqcount: u32,
}

impl StrictSequential {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReadAheadPolicy for StrictSequential {
    fn on_read(&mut self, block: u64, nblocks: u64) -> u64 {
        let sequential = self.next_expected == Some(block);
        if sequential {
            self.seqcount = (self.seqcount + 1).min(16);
        } else if self.next_expected.is_some() {
            // One reordered request: back to zero.
            self.seqcount = 0;
        }
        self.next_expected = Some(block + nblocks);
        if self.seqcount >= 2 {
            MAX_READAHEAD_BLOCKS.min(u64::from(self.seqcount))
        } else {
            0
        }
    }

    fn name(&self) -> &'static str {
        "strict-sequential"
    }
}

/// The sequentiality-metric policy of §6.4.
#[derive(Debug)]
pub struct MetricReadAhead {
    score: f64,
    alpha: f64,
    threshold: f64,
    k: u64,
    last_end: Option<u64>,
}

impl MetricReadAhead {
    /// Creates the policy with the paper-inspired defaults: tolerance of
    /// 10 blocks, smoothed score, prefetch while the score is ≥ 0.6.
    pub fn new() -> Self {
        Self {
            score: 1.0,
            alpha: 0.2,
            threshold: 0.6,
            k: 10,
            last_end: None,
        }
    }
}

impl Default for MetricReadAhead {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadAheadPolicy for MetricReadAhead {
    fn on_read(&mut self, block: u64, nblocks: u64) -> u64 {
        if let Some(last) = self.last_end {
            let hit = block.abs_diff(last) < self.k;
            let obs = if hit { 1.0 } else { 0.0 };
            self.score = self.alpha * obs + (1.0 - self.alpha) * self.score;
        }
        self.last_end = Some(block + nblocks);
        if self.score >= self.threshold {
            MAX_READAHEAD_BLOCKS
        } else {
            0
        }
    }

    fn name(&self) -> &'static str {
        "sequentiality-metric"
    }
}

/// Replays read requests against a disk with a prefetch cache.
#[derive(Debug)]
pub struct ReadServer {
    disk: DiskModel,
    cache: HashSet<u64>,
    /// Cache hits served without disk access.
    pub cache_hits: u64,
    /// Requests that went to the disk.
    pub disk_reads: u64,
}

impl ReadServer {
    /// Creates a server over `disk`.
    pub fn new(disk: DiskModel) -> Self {
        Self {
            disk,
            cache: HashSet::new(),
            cache_hits: 0,
            disk_reads: 0,
        }
    }

    /// Services one request of `nblocks` at `block` using `policy`;
    /// returns the service time in microseconds.
    pub fn serve<P: ReadAheadPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        block: u64,
        nblocks: u64,
    ) -> u64 {
        let readahead = policy.on_read(block, nblocks);
        let mut cost = 0u64;
        // Which requested blocks are missing from the cache?
        let missing: Vec<u64> = (block..block + nblocks)
            .filter(|b| !self.cache.contains(b))
            .collect();
        if missing.is_empty() {
            self.cache_hits += 1;
            // Memory-speed service.
            cost += 50;
        } else {
            self.disk_reads += 1;
            let first = *missing.first().expect("non-empty");
            let span = missing.last().expect("non-empty") - first + 1;
            // Fetch the missing span plus the prefetch in one disk pass,
            // trimming readahead blocks that are already cached.
            let mut end = first + span + readahead;
            while end > first + span && self.cache.contains(&(end - 1)) {
                end -= 1;
            }
            cost += self.disk.access(first, end - first);
            for b in first..end {
                self.cache.insert(b);
            }
        }
        cost
    }

    /// Total time the disk has spent.
    pub fn disk_busy_micros(&self) -> u64 {
        self.disk.busy_micros()
    }
}

/// Outcome of replaying one stream under one policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Sum of per-request service times, microseconds.
    pub total_micros: u64,
    /// Requests served from cache.
    pub cache_hits: u64,
    /// Requests that touched the disk.
    pub disk_reads: u64,
}

/// Replays `requests` (block, nblocks) under `policy` on a fresh disk.
pub fn replay<P: ReadAheadPolicy>(
    requests: &[(u64, u64)],
    mut policy: P,
    disk: DiskModel,
) -> ReplayOutcome {
    let mut server = ReadServer::new(disk);
    let mut total = 0u64;
    for &(block, nblocks) in requests {
        total += server.serve(&mut policy, block, nblocks);
    }
    ReplayOutcome {
        total_micros: total,
        cache_hits: server.cache_hits,
        disk_reads: server.disk_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;

    fn sequential_stream(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 4, 4)).collect()
    }

    /// Swap every `stride`-th adjacent pair, mimicking nfsiod reordering.
    fn reorder(stream: &[(u64, u64)], stride: usize) -> Vec<(u64, u64)> {
        let mut v = stream.to_vec();
        let mut i = 1;
        while i + 1 < v.len() {
            if i % stride == 0 {
                v.swap(i, i + 1);
            }
            i += 1;
        }
        v
    }

    #[test]
    fn strict_policy_prefetches_on_clean_stream() {
        let mut p = StrictSequential::new();
        p.on_read(0, 4);
        p.on_read(4, 4);
        assert!(p.on_read(8, 4) > 0);
    }

    #[test]
    fn strict_policy_resets_on_reorder() {
        let mut p = StrictSequential::new();
        p.on_read(0, 4);
        p.on_read(4, 4);
        p.on_read(8, 4);
        assert_eq!(p.on_read(16, 4), 0); // skipped ahead: reset
        assert_eq!(p.on_read(12, 4), 0); // the late one
    }

    #[test]
    fn metric_policy_survives_isolated_reorder() {
        let mut p = MetricReadAhead::new();
        for i in 0..10u64 {
            p.on_read(i * 4, 4);
        }
        // Swapped pair: both still within the 10-block tolerance window?
        // The skip-ahead is 4 blocks (one request), well inside k=10.
        assert!(p.on_read(48, 4) > 0);
        assert!(p.on_read(44, 4) > 0);
    }

    #[test]
    fn clean_stream_policies_equivalent() {
        let stream = sequential_stream(500);
        let strict = replay(
            &stream,
            StrictSequential::new(),
            DiskModel::new(DiskParams::default()),
        );
        let metric = replay(
            &stream,
            MetricReadAhead::new(),
            DiskModel::new(DiskParams::default()),
        );
        // Within a few percent of each other on a pristine stream.
        let ratio = strict.total_micros as f64 / metric.total_micros as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn metric_beats_strict_under_reordering() {
        // ~10% of requests reordered, as in the paper's loaded server.
        let stream = reorder(&sequential_stream(2000), 10);
        let strict = replay(
            &stream,
            StrictSequential::new(),
            DiskModel::new(DiskParams::default()),
        );
        let metric = replay(
            &stream,
            MetricReadAhead::new(),
            DiskModel::new(DiskParams::default()),
        );
        let speedup =
            (strict.total_micros as f64 - metric.total_micros as f64) / strict.total_micros as f64;
        assert!(
            speedup > 0.05,
            "expected >5% improvement, got {:.1}% (strict {} vs metric {})",
            speedup * 100.0,
            strict.total_micros,
            metric.total_micros
        );
        assert!(metric.cache_hits > strict.cache_hits);
    }

    #[test]
    fn random_stream_disables_both() {
        // A genuinely random stream: neither policy should prefetch much
        // (prefetched blocks would be wasted disk work).
        let stream: Vec<(u64, u64)> = (0..500u64).map(|i| ((i * 7919) % 1_000_000, 1)).collect();
        let metric = replay(
            &stream,
            MetricReadAhead::new(),
            DiskModel::new(DiskParams::default()),
        );
        // Virtually every request misses.
        assert!(metric.cache_hits < 25);
    }
}
