//! Shared NFS wire types: attributes, times, and status codes.

use nfstrace_xdr::{Decoder, Encoder, Error, Pack, Result, Unpack};

/// NFSv3 file type (`ftype3`, RFC 1813 §2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ftype3 {
    /// Regular file.
    #[default]
    Regular,
    /// Directory.
    Directory,
    /// Block special device.
    BlockDevice,
    /// Character special device.
    CharDevice,
    /// Symbolic link.
    Symlink,
    /// Socket.
    Socket,
    /// Named pipe.
    Fifo,
}

impl Ftype3 {
    /// The wire discriminant.
    pub fn as_u32(self) -> u32 {
        match self {
            Ftype3::Regular => 1,
            Ftype3::Directory => 2,
            Ftype3::BlockDevice => 3,
            Ftype3::CharDevice => 4,
            Ftype3::Symlink => 5,
            Ftype3::Socket => 6,
            Ftype3::Fifo => 7,
        }
    }

    /// Parses the wire discriminant.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDiscriminant`] for unknown values.
    pub fn from_u32(v: u32) -> Result<Self> {
        Ok(match v {
            1 => Ftype3::Regular,
            2 => Ftype3::Directory,
            3 => Ftype3::BlockDevice,
            4 => Ftype3::CharDevice,
            5 => Ftype3::Symlink,
            6 => Ftype3::Socket,
            7 => Ftype3::Fifo,
            other => {
                return Err(Error::InvalidDiscriminant {
                    what: "ftype3",
                    value: other,
                })
            }
        })
    }
}

impl Pack for Ftype3 {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(self.as_u32());
    }
}

impl Unpack for Ftype3 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        Ftype3::from_u32(dec.get_u32()?)
    }
}

/// NFSv3 timestamp: seconds and nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct NfsTime3 {
    /// Seconds since the epoch.
    pub seconds: u32,
    /// Nanoseconds within the second.
    pub nseconds: u32,
}

impl NfsTime3 {
    /// Builds a timestamp from simulation microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Self {
            seconds: (micros / 1_000_000) as u32,
            nseconds: ((micros % 1_000_000) * 1000) as u32,
        }
    }

    /// Converts back to microseconds.
    pub fn to_micros(self) -> u64 {
        u64::from(self.seconds) * 1_000_000 + u64::from(self.nseconds) / 1000
    }
}

impl Pack for NfsTime3 {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(self.seconds);
        enc.put_u32(self.nseconds);
    }
}

impl Unpack for NfsTime3 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(NfsTime3 {
            seconds: dec.get_u32()?,
            nseconds: dec.get_u32()?,
        })
    }
}

/// NFSv3 file attributes (`fattr3`, RFC 1813 §2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fattr3 {
    /// File type.
    pub ftype: Ftype3,
    /// Protection mode bits.
    pub mode: u32,
    /// Hard link count.
    pub nlink: u32,
    /// Owner.
    pub uid: u32,
    /// Group.
    pub gid: u32,
    /// File size in bytes.
    pub size: u64,
    /// Bytes actually used on disk.
    pub used: u64,
    /// Device numbers (specdata), meaningful for devices only.
    pub rdev: (u32, u32),
    /// File system id.
    pub fsid: u64,
    /// File id (inode number).
    pub fileid: u64,
    /// Last access time.
    pub atime: NfsTime3,
    /// Last modification time.
    pub mtime: NfsTime3,
    /// Last attribute-change time.
    pub ctime: NfsTime3,
}

impl Pack for Fattr3 {
    fn pack(&self, enc: &mut Encoder) {
        self.ftype.pack(enc);
        enc.put_u32(self.mode);
        enc.put_u32(self.nlink);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u64(self.size);
        enc.put_u64(self.used);
        enc.put_u32(self.rdev.0);
        enc.put_u32(self.rdev.1);
        enc.put_u64(self.fsid);
        enc.put_u64(self.fileid);
        self.atime.pack(enc);
        self.mtime.pack(enc);
        self.ctime.pack(enc);
    }
}

impl Unpack for Fattr3 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Fattr3 {
            ftype: Ftype3::unpack(dec)?,
            mode: dec.get_u32()?,
            nlink: dec.get_u32()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            size: dec.get_u64()?,
            used: dec.get_u64()?,
            rdev: (dec.get_u32()?, dec.get_u32()?),
            fsid: dec.get_u64()?,
            fileid: dec.get_u64()?,
            atime: NfsTime3::unpack(dec)?,
            mtime: NfsTime3::unpack(dec)?,
            ctime: NfsTime3::unpack(dec)?,
        })
    }
}

/// The size/mtime subset of attributes carried in `wcc_attr`
/// (pre-operation attributes, RFC 1813 §2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WccAttr {
    /// File size before the operation.
    pub size: u64,
    /// Modification time before the operation.
    pub mtime: NfsTime3,
    /// Change time before the operation.
    pub ctime: NfsTime3,
}

impl Pack for WccAttr {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u64(self.size);
        self.mtime.pack(enc);
        self.ctime.pack(enc);
    }
}

impl Unpack for WccAttr {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(WccAttr {
            size: dec.get_u64()?,
            mtime: NfsTime3::unpack(dec)?,
            ctime: NfsTime3::unpack(dec)?,
        })
    }
}

/// Weak cache consistency data: before/after attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WccData {
    /// Attributes before the operation, if the server kept them.
    pub before: Option<WccAttr>,
    /// Attributes after the operation, if available.
    pub after: Option<Fattr3>,
}

impl Pack for WccData {
    fn pack(&self, enc: &mut Encoder) {
        self.before.pack(enc);
        self.after.pack(enc);
    }
}

impl Unpack for WccData {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(WccData {
            before: Option::<WccAttr>::unpack(dec)?,
            after: Option::<Fattr3>::unpack(dec)?,
        })
    }
}

/// Settable attributes (`sattr3`): each field is optionally set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sattr3 {
    /// New mode bits.
    pub mode: Option<u32>,
    /// New owner.
    pub uid: Option<u32>,
    /// New group.
    pub gid: Option<u32>,
    /// New size (a set size is a truncate or extend).
    pub size: Option<u64>,
    /// Set atime to server time (`true`) or leave (`false`); explicit
    /// client times are folded to server time in this implementation.
    pub set_atime_to_server: bool,
    /// Like `set_atime_to_server`, for mtime.
    pub set_mtime_to_server: bool,
}

impl Pack for Sattr3 {
    fn pack(&self, enc: &mut Encoder) {
        self.mode.pack(enc);
        self.uid.pack(enc);
        self.gid.pack(enc);
        self.size.pack(enc);
        // time_how: 0 = don't change, 1 = set to server time.
        enc.put_u32(u32::from(self.set_atime_to_server));
        enc.put_u32(u32::from(self.set_mtime_to_server));
    }
}

impl Unpack for Sattr3 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        let mode = Option::<u32>::unpack(dec)?;
        let uid = Option::<u32>::unpack(dec)?;
        let gid = Option::<u32>::unpack(dec)?;
        let size = Option::<u64>::unpack(dec)?;
        let atime_how = dec.get_u32()?;
        if atime_how == 2 {
            // SET_TO_CLIENT_TIME carries an nfstime3.
            let _ = NfsTime3::unpack(dec)?;
        }
        let mtime_how = dec.get_u32()?;
        if mtime_how == 2 {
            let _ = NfsTime3::unpack(dec)?;
        }
        Ok(Sattr3 {
            mode,
            uid,
            gid,
            size,
            set_atime_to_server: atime_how != 0,
            set_mtime_to_server: mtime_how != 0,
        })
    }
}

/// NFSv3 status codes (`nfsstat3`), shared with v2 where the codes agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NfsStat3 {
    /// Success.
    #[default]
    Ok,
    /// Not owner.
    Perm,
    /// No such file or directory.
    NoEnt,
    /// I/O error.
    Io,
    /// Permission denied.
    Access,
    /// File exists.
    Exist,
    /// No such device.
    NoDev,
    /// Not a directory.
    NotDir,
    /// Is a directory.
    IsDir,
    /// Invalid argument.
    Inval,
    /// File too large.
    FBig,
    /// No space left.
    NoSpc,
    /// Read-only file system.
    Rofs,
    /// Name too long.
    NameTooLong,
    /// Directory not empty.
    NotEmpty,
    /// Quota exceeded.
    Dquot,
    /// Stale file handle.
    Stale,
    /// Operation not supported.
    NotSupp,
    /// Server fault.
    ServerFault,
}

impl NfsStat3 {
    /// The wire value.
    pub fn as_u32(self) -> u32 {
        match self {
            NfsStat3::Ok => 0,
            NfsStat3::Perm => 1,
            NfsStat3::NoEnt => 2,
            NfsStat3::Io => 5,
            NfsStat3::Access => 13,
            NfsStat3::Exist => 17,
            NfsStat3::NoDev => 19,
            NfsStat3::NotDir => 20,
            NfsStat3::IsDir => 21,
            NfsStat3::Inval => 22,
            NfsStat3::FBig => 27,
            NfsStat3::NoSpc => 28,
            NfsStat3::Rofs => 30,
            NfsStat3::NameTooLong => 63,
            NfsStat3::NotEmpty => 66,
            NfsStat3::Dquot => 69,
            NfsStat3::Stale => 70,
            NfsStat3::NotSupp => 10004,
            NfsStat3::ServerFault => 10006,
        }
    }

    /// Parses a wire value.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDiscriminant`] for unknown codes.
    pub fn from_u32(v: u32) -> Result<Self> {
        Ok(match v {
            0 => NfsStat3::Ok,
            1 => NfsStat3::Perm,
            2 => NfsStat3::NoEnt,
            5 => NfsStat3::Io,
            13 => NfsStat3::Access,
            17 => NfsStat3::Exist,
            19 => NfsStat3::NoDev,
            20 => NfsStat3::NotDir,
            21 => NfsStat3::IsDir,
            22 => NfsStat3::Inval,
            27 => NfsStat3::FBig,
            28 => NfsStat3::NoSpc,
            30 => NfsStat3::Rofs,
            63 => NfsStat3::NameTooLong,
            66 => NfsStat3::NotEmpty,
            69 => NfsStat3::Dquot,
            70 => NfsStat3::Stale,
            10004 => NfsStat3::NotSupp,
            10006 => NfsStat3::ServerFault,
            other => {
                return Err(Error::InvalidDiscriminant {
                    what: "nfsstat3",
                    value: other,
                })
            }
        })
    }

    /// Whether this is `NFS3_OK`.
    pub fn is_ok(self) -> bool {
        self == NfsStat3::Ok
    }
}

impl Pack for NfsStat3 {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(self.as_u32());
    }
}

impl Unpack for NfsStat3 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        NfsStat3::from_u32(dec.get_u32()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ftype_roundtrip_all() {
        for t in [
            Ftype3::Regular,
            Ftype3::Directory,
            Ftype3::BlockDevice,
            Ftype3::CharDevice,
            Ftype3::Symlink,
            Ftype3::Socket,
            Ftype3::Fifo,
        ] {
            assert_eq!(Ftype3::from_u32(t.as_u32()).unwrap(), t);
        }
        assert!(Ftype3::from_u32(0).is_err());
        assert!(Ftype3::from_u32(8).is_err());
    }

    #[test]
    fn time_micros_roundtrip() {
        let t = NfsTime3::from_micros(1_003_500_123_456);
        assert_eq!(t.to_micros(), 1_003_500_123_456);
    }

    #[test]
    fn fattr_roundtrip() {
        let a = Fattr3 {
            ftype: Ftype3::Regular,
            mode: 0o644,
            nlink: 1,
            uid: 1000,
            gid: 100,
            size: 2 * 1024 * 1024,
            used: 2 * 1024 * 1024,
            rdev: (0, 0),
            fsid: 7,
            fileid: 12345,
            atime: NfsTime3::from_micros(1_000_000),
            mtime: NfsTime3::from_micros(2_000_000),
            ctime: NfsTime3::from_micros(3_000_000),
        };
        assert_eq!(Fattr3::from_xdr_bytes(&a.to_xdr_bytes()).unwrap(), a);
    }

    #[test]
    fn wcc_data_roundtrip() {
        let w = WccData {
            before: Some(WccAttr {
                size: 100,
                mtime: NfsTime3::from_micros(5),
                ctime: NfsTime3::from_micros(6),
            }),
            after: Some(Fattr3::default()),
        };
        assert_eq!(WccData::from_xdr_bytes(&w.to_xdr_bytes()).unwrap(), w);
        let empty = WccData::default();
        assert_eq!(
            WccData::from_xdr_bytes(&empty.to_xdr_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn sattr_truncate_roundtrip() {
        let s = Sattr3 {
            size: Some(0),
            set_mtime_to_server: true,
            ..Sattr3::default()
        };
        assert_eq!(Sattr3::from_xdr_bytes(&s.to_xdr_bytes()).unwrap(), s);
    }

    #[test]
    fn nfsstat_roundtrip() {
        for code in [
            0u32, 1, 2, 5, 13, 17, 19, 20, 21, 22, 27, 28, 30, 63, 66, 69, 70,
        ] {
            let s = NfsStat3::from_u32(code).unwrap();
            assert_eq!(s.as_u32(), code);
        }
        assert!(NfsStat3::Ok.is_ok());
        assert!(!NfsStat3::Stale.is_ok());
        assert!(NfsStat3::from_u32(12345).is_err());
    }
}
