//! NFS version 2 (RFC 1094): procedures, arguments, and results.
//!
//! "Most of the EECS clients use NFSv3, but many use NFSv2" (paper §3.1),
//! so the tracer decodes both. NFSv2 uses fixed 32-byte handles, 32-bit
//! sizes and offsets, and `timeval` (seconds/microseconds) timestamps.

use crate::fh::FileHandle;
use crate::types::{Ftype3, NfsStat3};
use nfstrace_xdr::{Decoder, Encoder, Error, Pack, Result, Unpack};

/// NFSv2 procedure numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u32)]
pub enum Proc2 {
    /// Do nothing.
    Null = 0,
    /// Get file attributes.
    Getattr = 1,
    /// Set file attributes.
    Setattr = 2,
    /// Obsolete (was: get filesystem root).
    Root = 3,
    /// Look up a name.
    Lookup = 4,
    /// Read a symlink.
    Readlink = 5,
    /// Read from a file.
    Read = 6,
    /// Never used on the wire.
    Writecache = 7,
    /// Write to a file.
    Write = 8,
    /// Create a file.
    Create = 9,
    /// Remove a file.
    Remove = 10,
    /// Rename.
    Rename = 11,
    /// Hard link.
    Link = 12,
    /// Create a symlink.
    Symlink = 13,
    /// Create a directory.
    Mkdir = 14,
    /// Remove a directory.
    Rmdir = 15,
    /// Read a directory.
    Readdir = 16,
    /// Filesystem statistics.
    Statfs = 17,
}

impl Proc2 {
    /// All procedures in numeric order.
    pub const ALL: [Proc2; 18] = [
        Proc2::Null,
        Proc2::Getattr,
        Proc2::Setattr,
        Proc2::Root,
        Proc2::Lookup,
        Proc2::Readlink,
        Proc2::Read,
        Proc2::Writecache,
        Proc2::Write,
        Proc2::Create,
        Proc2::Remove,
        Proc2::Rename,
        Proc2::Link,
        Proc2::Symlink,
        Proc2::Mkdir,
        Proc2::Rmdir,
        Proc2::Readdir,
        Proc2::Statfs,
    ];

    /// The wire procedure number.
    pub fn as_u32(self) -> u32 {
        self as u32
    }

    /// Parses a wire procedure number.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDiscriminant`] above 17.
    pub fn from_u32(v: u32) -> Result<Self> {
        Proc2::ALL
            .get(v as usize)
            .copied()
            .ok_or(Error::InvalidDiscriminant {
                what: "nfsv2 procedure",
                value: v,
            })
    }

    /// Conventional upper-case name.
    pub fn name(self) -> &'static str {
        match self {
            Proc2::Null => "NULL",
            Proc2::Getattr => "GETATTR",
            Proc2::Setattr => "SETATTR",
            Proc2::Root => "ROOT",
            Proc2::Lookup => "LOOKUP",
            Proc2::Readlink => "READLINK",
            Proc2::Read => "READ",
            Proc2::Writecache => "WRITECACHE",
            Proc2::Write => "WRITE",
            Proc2::Create => "CREATE",
            Proc2::Remove => "REMOVE",
            Proc2::Rename => "RENAME",
            Proc2::Link => "LINK",
            Proc2::Symlink => "SYMLINK",
            Proc2::Mkdir => "MKDIR",
            Proc2::Rmdir => "RMDIR",
            Proc2::Readdir => "READDIR",
            Proc2::Statfs => "STATFS",
        }
    }
}

/// NFSv2 `timeval`: seconds and microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeVal2 {
    /// Seconds.
    pub seconds: u32,
    /// Microseconds.
    pub useconds: u32,
}

impl Pack for TimeVal2 {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(self.seconds);
        enc.put_u32(self.useconds);
    }
}

impl Unpack for TimeVal2 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(TimeVal2 {
            seconds: dec.get_u32()?,
            useconds: dec.get_u32()?,
        })
    }
}

/// NFSv2 file attributes (`fattr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fattr2 {
    /// File type (shares the v3 enumeration; v2's NON type maps to error).
    pub ftype: Ftype3,
    /// Mode bits.
    pub mode: u32,
    /// Link count.
    pub nlink: u32,
    /// Owner.
    pub uid: u32,
    /// Group.
    pub gid: u32,
    /// Size in bytes (32-bit in v2).
    pub size: u32,
    /// Filesystem block size.
    pub blocksize: u32,
    /// Device number.
    pub rdev: u32,
    /// Blocks used.
    pub blocks: u32,
    /// Filesystem id.
    pub fsid: u32,
    /// File id (inode).
    pub fileid: u32,
    /// Access time.
    pub atime: TimeVal2,
    /// Modification time.
    pub mtime: TimeVal2,
    /// Change time.
    pub ctime: TimeVal2,
}

impl Pack for Fattr2 {
    fn pack(&self, enc: &mut Encoder) {
        // v2 ftype wire values: NFNON=0, NFREG=1, NFDIR=2, NFBLK=3,
        // NFCHR=4, NFLNK=5 — the same numbering as v3 for 1..=5.
        enc.put_u32(self.ftype.as_u32());
        enc.put_u32(self.mode);
        enc.put_u32(self.nlink);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u32(self.size);
        enc.put_u32(self.blocksize);
        enc.put_u32(self.rdev);
        enc.put_u32(self.blocks);
        enc.put_u32(self.fsid);
        enc.put_u32(self.fileid);
        self.atime.pack(enc);
        self.mtime.pack(enc);
        self.ctime.pack(enc);
    }
}

impl Unpack for Fattr2 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Fattr2 {
            ftype: Ftype3::from_u32(dec.get_u32()?)?,
            mode: dec.get_u32()?,
            nlink: dec.get_u32()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            size: dec.get_u32()?,
            blocksize: dec.get_u32()?,
            rdev: dec.get_u32()?,
            blocks: dec.get_u32()?,
            fsid: dec.get_u32()?,
            fileid: dec.get_u32()?,
            atime: TimeVal2::unpack(dec)?,
            mtime: TimeVal2::unpack(dec)?,
            ctime: TimeVal2::unpack(dec)?,
        })
    }
}

impl From<crate::types::Fattr3> for Fattr2 {
    fn from(a: crate::types::Fattr3) -> Self {
        Fattr2 {
            ftype: a.ftype,
            mode: a.mode,
            nlink: a.nlink,
            uid: a.uid,
            gid: a.gid,
            size: a.size.min(u64::from(u32::MAX)) as u32,
            blocksize: 8192,
            rdev: a.rdev.0,
            blocks: (a.used / 512) as u32,
            fsid: a.fsid as u32,
            fileid: a.fileid as u32,
            atime: TimeVal2 {
                seconds: a.atime.seconds,
                useconds: a.atime.nseconds / 1000,
            },
            mtime: TimeVal2 {
                seconds: a.mtime.seconds,
                useconds: a.mtime.nseconds / 1000,
            },
            ctime: TimeVal2 {
                seconds: a.ctime.seconds,
                useconds: a.ctime.nseconds / 1000,
            },
        }
    }
}

/// NFSv2 settable attributes; `u32::MAX` (-1) means "do not set".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sattr2 {
    /// Mode, or -1.
    pub mode: u32,
    /// Uid, or -1.
    pub uid: u32,
    /// Gid, or -1.
    pub gid: u32,
    /// Size, or -1 (a non-negative size is a truncate/extend).
    pub size: u32,
    /// Atime, or (-1,-1).
    pub atime: TimeVal2,
    /// Mtime, or (-1,-1).
    pub mtime: TimeVal2,
}

impl Default for Sattr2 {
    fn default() -> Self {
        let unset = TimeVal2 {
            seconds: u32::MAX,
            useconds: u32::MAX,
        };
        Sattr2 {
            mode: u32::MAX,
            uid: u32::MAX,
            gid: u32::MAX,
            size: u32::MAX,
            atime: unset,
            mtime: unset,
        }
    }
}

impl Sattr2 {
    /// The size field as an option.
    pub fn size_opt(&self) -> Option<u32> {
        (self.size != u32::MAX).then_some(self.size)
    }
}

impl Pack for Sattr2 {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(self.mode);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u32(self.size);
        self.atime.pack(enc);
        self.mtime.pack(enc);
    }
}

impl Unpack for Sattr2 {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Sattr2 {
            mode: dec.get_u32()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            size: dec.get_u32()?,
            atime: TimeVal2::unpack(dec)?,
            mtime: TimeVal2::unpack(dec)?,
        })
    }
}

/// Directory + name arguments (`diropargs`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirOpArgs2 {
    /// The directory handle.
    pub dir: FileHandle,
    /// The name.
    pub name: String,
}

fn pack_dirop(a: &DirOpArgs2, enc: &mut Encoder) {
    a.dir.pack_v2(enc);
    enc.put_string(&a.name);
}

/// A decoded NFSv2 call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call2 {
    /// NULL ping.
    Null,
    /// Get attributes.
    Getattr(FileHandle),
    /// Set attributes.
    Setattr {
        /// The file.
        file: FileHandle,
        /// Attributes to set.
        attributes: Sattr2,
    },
    /// Obsolete ROOT (void).
    Root,
    /// Name lookup.
    Lookup(DirOpArgs2),
    /// Read symlink.
    Readlink(FileHandle),
    /// Read data.
    Read {
        /// The file.
        file: FileHandle,
        /// Byte offset (32-bit).
        offset: u32,
        /// Bytes requested.
        count: u32,
        /// Unused by servers; carried for fidelity.
        totalcount: u32,
    },
    /// Unused WRITECACHE (void).
    Writecache,
    /// Write data.
    Write {
        /// The file.
        file: FileHandle,
        /// Unused "beginoffset".
        beginoffset: u32,
        /// Byte offset.
        offset: u32,
        /// Unused "totalcount".
        totalcount: u32,
        /// The data.
        data: Vec<u8>,
    },
    /// Create a file.
    Create {
        /// Where to create.
        where_: DirOpArgs2,
        /// Initial attributes.
        attributes: Sattr2,
    },
    /// Remove a file.
    Remove(DirOpArgs2),
    /// Rename.
    Rename {
        /// Source.
        from: DirOpArgs2,
        /// Destination.
        to: DirOpArgs2,
    },
    /// Hard link.
    Link {
        /// Existing file.
        from: FileHandle,
        /// New entry.
        to: DirOpArgs2,
    },
    /// Create a symlink.
    Symlink {
        /// Where to create.
        where_: DirOpArgs2,
        /// Target path.
        target: String,
        /// Attributes.
        attributes: Sattr2,
    },
    /// Create a directory.
    Mkdir {
        /// Where to create.
        where_: DirOpArgs2,
        /// Attributes.
        attributes: Sattr2,
    },
    /// Remove a directory.
    Rmdir(DirOpArgs2),
    /// List a directory.
    Readdir {
        /// The directory.
        dir: FileHandle,
        /// Opaque 4-byte resume cookie.
        cookie: u32,
        /// Maximum reply bytes.
        count: u32,
    },
    /// Filesystem statistics.
    Statfs(FileHandle),
}

impl Call2 {
    /// The procedure this call invokes.
    pub fn proc(&self) -> Proc2 {
        match self {
            Call2::Null => Proc2::Null,
            Call2::Getattr(_) => Proc2::Getattr,
            Call2::Setattr { .. } => Proc2::Setattr,
            Call2::Root => Proc2::Root,
            Call2::Lookup(_) => Proc2::Lookup,
            Call2::Readlink(_) => Proc2::Readlink,
            Call2::Read { .. } => Proc2::Read,
            Call2::Writecache => Proc2::Writecache,
            Call2::Write { .. } => Proc2::Write,
            Call2::Create { .. } => Proc2::Create,
            Call2::Remove(_) => Proc2::Remove,
            Call2::Rename { .. } => Proc2::Rename,
            Call2::Link { .. } => Proc2::Link,
            Call2::Symlink { .. } => Proc2::Symlink,
            Call2::Mkdir { .. } => Proc2::Mkdir,
            Call2::Rmdir(_) => Proc2::Rmdir,
            Call2::Readdir { .. } => Proc2::Readdir,
            Call2::Statfs(_) => Proc2::Statfs,
        }
    }

    /// Encodes the call arguments.
    pub fn encode_args(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Call2::Null | Call2::Root | Call2::Writecache => {}
            Call2::Getattr(fh) | Call2::Readlink(fh) | Call2::Statfs(fh) => fh.pack_v2(&mut enc),
            Call2::Setattr { file, attributes } => {
                file.pack_v2(&mut enc);
                attributes.pack(&mut enc);
            }
            Call2::Lookup(a) | Call2::Remove(a) | Call2::Rmdir(a) => pack_dirop(a, &mut enc),
            Call2::Read {
                file,
                offset,
                count,
                totalcount,
            } => {
                file.pack_v2(&mut enc);
                enc.put_u32(*offset);
                enc.put_u32(*count);
                enc.put_u32(*totalcount);
            }
            Call2::Write {
                file,
                beginoffset,
                offset,
                totalcount,
                data,
            } => {
                file.pack_v2(&mut enc);
                enc.put_u32(*beginoffset);
                enc.put_u32(*offset);
                enc.put_u32(*totalcount);
                enc.put_opaque_var(data);
            }
            Call2::Create { where_, attributes } | Call2::Mkdir { where_, attributes } => {
                pack_dirop(where_, &mut enc);
                attributes.pack(&mut enc);
            }
            Call2::Rename { from, to } => {
                pack_dirop(from, &mut enc);
                pack_dirop(to, &mut enc);
            }
            Call2::Link { from, to } => {
                from.pack_v2(&mut enc);
                pack_dirop(to, &mut enc);
            }
            Call2::Symlink {
                where_,
                target,
                attributes,
            } => {
                pack_dirop(where_, &mut enc);
                enc.put_string(target);
                attributes.pack(&mut enc);
            }
            Call2::Readdir { dir, cookie, count } => {
                dir.pack_v2(&mut enc);
                enc.put_u32(*cookie);
                enc.put_u32(*count);
            }
        }
        enc.into_bytes()
    }

    /// Decodes call arguments for `proc`.
    ///
    /// This is [`Call2View::decode`] plus one owned materialization, so
    /// both decoders accept and reject exactly the same wire bytes.
    ///
    /// # Errors
    ///
    /// Any XDR error for malformed arguments.
    pub fn decode(proc: Proc2, args: &[u8]) -> Result<Self> {
        Call2View::decode(proc, args).map(|v| v.to_owned())
    }
}

/// Borrowed `diropargs`: the name is a view into the wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOpView2<'a> {
    /// The directory handle.
    pub dir: FileHandle,
    /// The name, borrowed from the argument bytes.
    pub name: &'a str,
}

impl DirOpView2<'_> {
    /// Materializes the owned form; the only allocation is the name.
    pub fn to_owned(self) -> DirOpArgs2 {
        DirOpArgs2 {
            dir: self.dir,
            name: self.name.to_owned(),
        }
    }
}

fn dirop_view<'a>(dec: &mut Decoder<'a>) -> Result<DirOpView2<'a>> {
    Ok(DirOpView2 {
        dir: FileHandle::unpack_v2(dec)?,
        name: dec.get_str_ref()?,
    })
}

/// A decoded NFSv2 call that borrows names and write data from the
/// argument bytes instead of copying them.
///
/// This is the allocation-free twin of [`Call2`]: [`Call2::decode`] is
/// implemented as [`Call2View::decode`] followed by [`Call2View::to_owned`],
/// so the two decoders cannot drift. Handle and attribute fields are
/// plain inline values; only names, symlink targets, and write payloads
/// stay borrowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call2View<'a> {
    /// NULL ping.
    Null,
    /// Get attributes.
    Getattr(FileHandle),
    /// Set attributes.
    Setattr {
        /// The file.
        file: FileHandle,
        /// Attributes to set.
        attributes: Sattr2,
    },
    /// Obsolete ROOT (void).
    Root,
    /// Name lookup.
    Lookup(DirOpView2<'a>),
    /// Read symlink.
    Readlink(FileHandle),
    /// Read data.
    Read {
        /// The file.
        file: FileHandle,
        /// Byte offset (32-bit).
        offset: u32,
        /// Bytes requested.
        count: u32,
        /// Unused by servers; carried for fidelity.
        totalcount: u32,
    },
    /// Unused WRITECACHE (void).
    Writecache,
    /// Write data.
    Write {
        /// The file.
        file: FileHandle,
        /// Unused "beginoffset".
        beginoffset: u32,
        /// Byte offset.
        offset: u32,
        /// Unused "totalcount".
        totalcount: u32,
        /// The data, borrowed from the argument bytes.
        data: &'a [u8],
    },
    /// Create a file.
    Create {
        /// Where to create.
        where_: DirOpView2<'a>,
        /// Initial attributes.
        attributes: Sattr2,
    },
    /// Remove a file.
    Remove(DirOpView2<'a>),
    /// Rename.
    Rename {
        /// Source.
        from: DirOpView2<'a>,
        /// Destination.
        to: DirOpView2<'a>,
    },
    /// Hard link.
    Link {
        /// Existing file.
        from: FileHandle,
        /// New entry.
        to: DirOpView2<'a>,
    },
    /// Create a symlink.
    Symlink {
        /// Where to create.
        where_: DirOpView2<'a>,
        /// Target path, borrowed from the argument bytes.
        target: &'a str,
        /// Attributes.
        attributes: Sattr2,
    },
    /// Create a directory.
    Mkdir {
        /// Where to create.
        where_: DirOpView2<'a>,
        /// Attributes.
        attributes: Sattr2,
    },
    /// Remove a directory.
    Rmdir(DirOpView2<'a>),
    /// List a directory.
    Readdir {
        /// The directory.
        dir: FileHandle,
        /// Opaque 4-byte resume cookie.
        cookie: u32,
        /// Maximum reply bytes.
        count: u32,
    },
    /// Filesystem statistics.
    Statfs(FileHandle),
}

impl<'a> Call2View<'a> {
    /// The procedure this call invokes.
    pub fn proc(&self) -> Proc2 {
        match self {
            Call2View::Null => Proc2::Null,
            Call2View::Getattr(_) => Proc2::Getattr,
            Call2View::Setattr { .. } => Proc2::Setattr,
            Call2View::Root => Proc2::Root,
            Call2View::Lookup(_) => Proc2::Lookup,
            Call2View::Readlink(_) => Proc2::Readlink,
            Call2View::Read { .. } => Proc2::Read,
            Call2View::Writecache => Proc2::Writecache,
            Call2View::Write { .. } => Proc2::Write,
            Call2View::Create { .. } => Proc2::Create,
            Call2View::Remove(_) => Proc2::Remove,
            Call2View::Rename { .. } => Proc2::Rename,
            Call2View::Link { .. } => Proc2::Link,
            Call2View::Symlink { .. } => Proc2::Symlink,
            Call2View::Mkdir { .. } => Proc2::Mkdir,
            Call2View::Rmdir(_) => Proc2::Rmdir,
            Call2View::Readdir { .. } => Proc2::Readdir,
            Call2View::Statfs(_) => Proc2::Statfs,
        }
    }

    /// Decodes call arguments for `proc` without copying names or data.
    ///
    /// # Errors
    ///
    /// Any XDR error for malformed arguments; fails exactly when
    /// [`Call2::decode`] fails.
    pub fn decode(proc: Proc2, args: &'a [u8]) -> Result<Self> {
        let mut dec = Decoder::new(args);
        let call = match proc {
            Proc2::Null => Call2View::Null,
            Proc2::Root => Call2View::Root,
            Proc2::Writecache => Call2View::Writecache,
            Proc2::Getattr => Call2View::Getattr(FileHandle::unpack_v2(&mut dec)?),
            Proc2::Setattr => Call2View::Setattr {
                file: FileHandle::unpack_v2(&mut dec)?,
                attributes: Sattr2::unpack(&mut dec)?,
            },
            Proc2::Lookup => Call2View::Lookup(dirop_view(&mut dec)?),
            Proc2::Readlink => Call2View::Readlink(FileHandle::unpack_v2(&mut dec)?),
            Proc2::Read => Call2View::Read {
                file: FileHandle::unpack_v2(&mut dec)?,
                offset: dec.get_u32()?,
                count: dec.get_u32()?,
                totalcount: dec.get_u32()?,
            },
            Proc2::Write => Call2View::Write {
                file: FileHandle::unpack_v2(&mut dec)?,
                beginoffset: dec.get_u32()?,
                offset: dec.get_u32()?,
                totalcount: dec.get_u32()?,
                data: dec.get_opaque_var_ref()?,
            },
            Proc2::Create => Call2View::Create {
                where_: dirop_view(&mut dec)?,
                attributes: Sattr2::unpack(&mut dec)?,
            },
            Proc2::Remove => Call2View::Remove(dirop_view(&mut dec)?),
            Proc2::Rename => Call2View::Rename {
                from: dirop_view(&mut dec)?,
                to: dirop_view(&mut dec)?,
            },
            Proc2::Link => Call2View::Link {
                from: FileHandle::unpack_v2(&mut dec)?,
                to: dirop_view(&mut dec)?,
            },
            Proc2::Symlink => Call2View::Symlink {
                where_: dirop_view(&mut dec)?,
                target: dec.get_str_ref()?,
                attributes: Sattr2::unpack(&mut dec)?,
            },
            Proc2::Mkdir => Call2View::Mkdir {
                where_: dirop_view(&mut dec)?,
                attributes: Sattr2::unpack(&mut dec)?,
            },
            Proc2::Rmdir => Call2View::Rmdir(dirop_view(&mut dec)?),
            Proc2::Readdir => Call2View::Readdir {
                dir: FileHandle::unpack_v2(&mut dec)?,
                cookie: dec.get_u32()?,
                count: dec.get_u32()?,
            },
            Proc2::Statfs => Call2View::Statfs(FileHandle::unpack_v2(&mut dec)?),
        };
        Ok(call)
    }

    /// Materializes the owned [`Call2`], copying names and data once.
    pub fn to_owned(self) -> Call2 {
        match self {
            Call2View::Null => Call2::Null,
            Call2View::Root => Call2::Root,
            Call2View::Writecache => Call2::Writecache,
            Call2View::Getattr(fh) => Call2::Getattr(fh),
            Call2View::Readlink(fh) => Call2::Readlink(fh),
            Call2View::Statfs(fh) => Call2::Statfs(fh),
            Call2View::Setattr { file, attributes } => Call2::Setattr { file, attributes },
            Call2View::Lookup(a) => Call2::Lookup(a.to_owned()),
            Call2View::Remove(a) => Call2::Remove(a.to_owned()),
            Call2View::Rmdir(a) => Call2::Rmdir(a.to_owned()),
            Call2View::Read {
                file,
                offset,
                count,
                totalcount,
            } => Call2::Read {
                file,
                offset,
                count,
                totalcount,
            },
            Call2View::Write {
                file,
                beginoffset,
                offset,
                totalcount,
                data,
            } => Call2::Write {
                file,
                beginoffset,
                offset,
                totalcount,
                data: data.to_vec(),
            },
            Call2View::Create { where_, attributes } => Call2::Create {
                where_: where_.to_owned(),
                attributes,
            },
            Call2View::Mkdir { where_, attributes } => Call2::Mkdir {
                where_: where_.to_owned(),
                attributes,
            },
            Call2View::Rename { from, to } => Call2::Rename {
                from: from.to_owned(),
                to: to.to_owned(),
            },
            Call2View::Link { from, to } => Call2::Link {
                from,
                to: to.to_owned(),
            },
            Call2View::Symlink {
                where_,
                target,
                attributes,
            } => Call2::Symlink {
                where_: where_.to_owned(),
                target: target.to_owned(),
                attributes,
            },
            Call2View::Readdir { dir, cookie, count } => Call2::Readdir { dir, cookie, count },
        }
    }
}

/// One NFSv2 `READDIR` entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirEntry2 {
    /// File id.
    pub fileid: u32,
    /// Name.
    pub name: String,
    /// Resume cookie.
    pub cookie: u32,
}

/// A decoded NFSv2 reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply2 {
    /// NULL, ROOT, WRITECACHE: void.
    Void,
    /// `attrstat`: GETATTR, SETATTR, WRITE.
    AttrStat {
        /// Status.
        status: NfsStat3,
        /// Attributes on success.
        attributes: Option<Fattr2>,
    },
    /// `diropres`: LOOKUP, CREATE, MKDIR.
    DirOpRes {
        /// Status.
        status: NfsStat3,
        /// New/found handle on success.
        file: Option<FileHandle>,
        /// Attributes on success.
        attributes: Option<Fattr2>,
    },
    /// READLINK result.
    Readlink {
        /// Status.
        status: NfsStat3,
        /// Target path on success.
        target: String,
    },
    /// READ result.
    Read {
        /// Status.
        status: NfsStat3,
        /// Attributes on success.
        attributes: Option<Fattr2>,
        /// Data on success.
        data: Vec<u8>,
    },
    /// Bare status: REMOVE, RENAME, LINK, SYMLINK, RMDIR.
    Stat(NfsStat3),
    /// READDIR result.
    Readdir {
        /// Status.
        status: NfsStat3,
        /// Entries on success.
        entries: Vec<DirEntry2>,
        /// Whether the listing completed.
        eof: bool,
    },
    /// STATFS result.
    Statfs {
        /// Status.
        status: NfsStat3,
        /// Transfer size, block size, total/free/available blocks.
        info: [u32; 5],
    },
}

impl Reply2 {
    /// The status of this reply (`Ok` for void replies).
    pub fn status(&self) -> NfsStat3 {
        match self {
            Reply2::Void => NfsStat3::Ok,
            Reply2::AttrStat { status, .. }
            | Reply2::DirOpRes { status, .. }
            | Reply2::Readlink { status, .. }
            | Reply2::Read { status, .. }
            | Reply2::Readdir { status, .. }
            | Reply2::Statfs { status, .. } => *status,
            Reply2::Stat(status) => *status,
        }
    }

    /// Encodes the reply results.
    pub fn encode_results(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Reply2::Void => {}
            Reply2::AttrStat { status, attributes } => {
                status.pack(&mut enc);
                if status.is_ok() {
                    attributes.unwrap_or_default().pack(&mut enc);
                }
            }
            Reply2::DirOpRes {
                status,
                file,
                attributes,
            } => {
                status.pack(&mut enc);
                if status.is_ok() {
                    file.clone().unwrap_or_default().pack_v2(&mut enc);
                    attributes.unwrap_or_default().pack(&mut enc);
                }
            }
            Reply2::Readlink { status, target } => {
                status.pack(&mut enc);
                if status.is_ok() {
                    enc.put_string(target);
                }
            }
            Reply2::Read {
                status,
                attributes,
                data,
            } => {
                status.pack(&mut enc);
                if status.is_ok() {
                    attributes.unwrap_or_default().pack(&mut enc);
                    enc.put_opaque_var(data);
                }
            }
            Reply2::Stat(status) => status.pack(&mut enc),
            Reply2::Readdir {
                status,
                entries,
                eof,
            } => {
                status.pack(&mut enc);
                if status.is_ok() {
                    for e in entries {
                        enc.put_bool(true);
                        enc.put_u32(e.fileid);
                        enc.put_string(&e.name);
                        enc.put_u32(e.cookie);
                    }
                    enc.put_bool(false);
                    enc.put_bool(*eof);
                }
            }
            Reply2::Statfs { status, info } => {
                status.pack(&mut enc);
                if status.is_ok() {
                    for v in info {
                        enc.put_u32(*v);
                    }
                }
            }
        }
        enc.into_bytes()
    }

    /// Decodes reply results for `proc`.
    ///
    /// # Errors
    ///
    /// Any XDR error for malformed results.
    pub fn decode(proc: Proc2, results: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(results);
        let reply = match proc {
            Proc2::Null | Proc2::Root | Proc2::Writecache => Reply2::Void,
            Proc2::Getattr | Proc2::Setattr | Proc2::Write => {
                let status = NfsStat3::unpack(&mut dec)?;
                let attributes = if status.is_ok() {
                    Some(Fattr2::unpack(&mut dec)?)
                } else {
                    None
                };
                Reply2::AttrStat { status, attributes }
            }
            Proc2::Lookup | Proc2::Create | Proc2::Mkdir => {
                let status = NfsStat3::unpack(&mut dec)?;
                if status.is_ok() {
                    Reply2::DirOpRes {
                        status,
                        file: Some(FileHandle::unpack_v2(&mut dec)?),
                        attributes: Some(Fattr2::unpack(&mut dec)?),
                    }
                } else {
                    Reply2::DirOpRes {
                        status,
                        file: None,
                        attributes: None,
                    }
                }
            }
            Proc2::Readlink => {
                let status = NfsStat3::unpack(&mut dec)?;
                let target = if status.is_ok() {
                    dec.get_string()?
                } else {
                    String::new()
                };
                Reply2::Readlink { status, target }
            }
            Proc2::Read => {
                let status = NfsStat3::unpack(&mut dec)?;
                if status.is_ok() {
                    Reply2::Read {
                        status,
                        attributes: Some(Fattr2::unpack(&mut dec)?),
                        data: dec.get_opaque_var()?,
                    }
                } else {
                    Reply2::Read {
                        status,
                        attributes: None,
                        data: Vec::new(),
                    }
                }
            }
            Proc2::Remove | Proc2::Rename | Proc2::Link | Proc2::Symlink | Proc2::Rmdir => {
                Reply2::Stat(NfsStat3::unpack(&mut dec)?)
            }
            Proc2::Readdir => {
                let status = NfsStat3::unpack(&mut dec)?;
                if status.is_ok() {
                    let mut entries = Vec::new();
                    while dec.get_bool()? {
                        entries.push(DirEntry2 {
                            fileid: dec.get_u32()?,
                            name: dec.get_string()?,
                            cookie: dec.get_u32()?,
                        });
                    }
                    Reply2::Readdir {
                        status,
                        entries,
                        eof: dec.get_bool()?,
                    }
                } else {
                    Reply2::Readdir {
                        status,
                        entries: Vec::new(),
                        eof: false,
                    }
                }
            }
            Proc2::Statfs => {
                let status = NfsStat3::unpack(&mut dec)?;
                if status.is_ok() {
                    let mut info = [0u32; 5];
                    for v in &mut info {
                        *v = dec.get_u32()?;
                    }
                    Reply2::Statfs { status, info }
                } else {
                    Reply2::Statfs {
                        status,
                        info: [0; 5],
                    }
                }
            }
        };
        Ok(reply)
    }
}

/// The subset of an NFSv2 reply that flows into a flattened trace
/// record, decoded in one streaming pass with no heap allocation.
///
/// [`ReplyFacts2::decode`] consumes and validates a results body
/// exactly as [`Reply2::decode`] does — the same reads in the same
/// order, failing in the same cases — but borrows over read data,
/// symlink targets, and directory entries instead of materializing
/// them. `ret_count` is the returned data length for `READ` (v2 has no
/// count field; the flattener uses the payload length) and is left
/// `None` elsewhere — the v2 `WRITE` count and the inferred `READ` eof
/// are derived by the flattener from the call side plus `post_size`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyFacts2 {
    /// Reply status.
    pub status: NfsStat3,
    /// Post-op file size.
    pub post_size: Option<u64>,
    /// Post-op file type.
    pub ftype: Option<Ftype3>,
    /// Returned data length (`READ` only; zero on error replies).
    pub ret_count: Option<u32>,
    /// Handle of a created or looked-up object.
    pub new_fh: Option<FileHandle>,
}

impl ReplyFacts2 {
    fn empty(status: NfsStat3) -> Self {
        ReplyFacts2 {
            status,
            post_size: None,
            ftype: None,
            ret_count: None,
            new_fh: None,
        }
    }

    fn post(&mut self, a: &Fattr2) {
        self.post_size = Some(u64::from(a.size));
        self.ftype = Some(a.ftype);
    }

    /// Decodes the facts for `proc` from an RPC results body.
    ///
    /// # Errors
    ///
    /// Fails exactly when [`Reply2::decode`] would fail on the same
    /// bytes.
    pub fn decode(proc: Proc2, results: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(results);
        let facts = match proc {
            Proc2::Null | Proc2::Root | Proc2::Writecache => Self::empty(NfsStat3::Ok),
            Proc2::Getattr | Proc2::Setattr | Proc2::Write => {
                let mut f = Self::empty(NfsStat3::unpack(&mut dec)?);
                if f.status.is_ok() {
                    let a = Fattr2::unpack(&mut dec)?;
                    f.post(&a);
                }
                f
            }
            Proc2::Lookup | Proc2::Create | Proc2::Mkdir => {
                let mut f = Self::empty(NfsStat3::unpack(&mut dec)?);
                if f.status.is_ok() {
                    f.new_fh = Some(FileHandle::unpack_v2(&mut dec)?);
                    let a = Fattr2::unpack(&mut dec)?;
                    f.post(&a);
                }
                f
            }
            Proc2::Readlink => {
                let f = Self::empty(NfsStat3::unpack(&mut dec)?);
                if f.status.is_ok() {
                    dec.get_str_ref()?;
                }
                f
            }
            Proc2::Read => {
                let mut f = Self::empty(NfsStat3::unpack(&mut dec)?);
                if f.status.is_ok() {
                    let a = Fattr2::unpack(&mut dec)?;
                    f.post(&a);
                    f.ret_count = Some(dec.get_opaque_var_ref()?.len() as u32);
                } else {
                    f.ret_count = Some(0);
                }
                f
            }
            Proc2::Remove | Proc2::Rename | Proc2::Link | Proc2::Symlink | Proc2::Rmdir => {
                Self::empty(NfsStat3::unpack(&mut dec)?)
            }
            Proc2::Readdir => {
                let f = Self::empty(NfsStat3::unpack(&mut dec)?);
                if f.status.is_ok() {
                    while dec.get_bool()? {
                        dec.get_u32()?;
                        dec.get_str_ref()?;
                        dec.get_u32()?;
                    }
                    dec.get_bool()?;
                }
                f
            }
            Proc2::Statfs => {
                let f = Self::empty(NfsStat3::unpack(&mut dec)?);
                if f.status.is_ok() {
                    for _ in 0..5 {
                        dec.get_u32()?;
                    }
                }
                f
            }
        };
        Ok(facts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_call(call: Call2) {
        let bytes = call.encode_args();
        assert_eq!(Call2::decode(call.proc(), &bytes).unwrap(), call);
    }

    fn roundtrip_reply(proc: Proc2, reply: Reply2) {
        let bytes = reply.encode_results();
        assert_eq!(Reply2::decode(proc, &bytes).unwrap(), reply);
    }

    #[test]
    fn proc_numbers_match_rfc() {
        assert_eq!(Proc2::Read.as_u32(), 6);
        assert_eq!(Proc2::Write.as_u32(), 8);
        assert_eq!(Proc2::Statfs.as_u32(), 17);
        for p in Proc2::ALL {
            assert_eq!(Proc2::from_u32(p.as_u32()).unwrap(), p);
        }
        assert!(Proc2::from_u32(18).is_err());
    }

    #[test]
    fn calls_roundtrip() {
        roundtrip_call(Call2::Null);
        roundtrip_call(Call2::Getattr(FileHandle::from_u64(1)));
        roundtrip_call(Call2::Setattr {
            file: FileHandle::from_u64(2),
            attributes: Sattr2 {
                size: 0,
                ..Sattr2::default()
            },
        });
        roundtrip_call(Call2::Lookup(DirOpArgs2 {
            dir: FileHandle::from_u64(3),
            name: ".cshrc".into(),
        }));
        roundtrip_call(Call2::Read {
            file: FileHandle::from_u64(4),
            offset: 8192,
            count: 8192,
            totalcount: 0,
        });
        roundtrip_call(Call2::Write {
            file: FileHandle::from_u64(5),
            beginoffset: 0,
            offset: 16384,
            totalcount: 0,
            data: vec![7; 100],
        });
        roundtrip_call(Call2::Create {
            where_: DirOpArgs2 {
                dir: FileHandle::from_u64(6),
                name: "core.12345".into(),
            },
            attributes: Sattr2::default(),
        });
        roundtrip_call(Call2::Rename {
            from: DirOpArgs2 {
                dir: FileHandle::from_u64(7),
                name: "a".into(),
            },
            to: DirOpArgs2 {
                dir: FileHandle::from_u64(7),
                name: "b".into(),
            },
        });
        roundtrip_call(Call2::Link {
            from: FileHandle::from_u64(8),
            to: DirOpArgs2 {
                dir: FileHandle::from_u64(9),
                name: "ln".into(),
            },
        });
        roundtrip_call(Call2::Symlink {
            where_: DirOpArgs2 {
                dir: FileHandle::from_u64(10),
                name: "sl".into(),
            },
            target: "/tmp/x".into(),
            attributes: Sattr2::default(),
        });
        roundtrip_call(Call2::Readdir {
            dir: FileHandle::from_u64(11),
            cookie: 0,
            count: 4096,
        });
        roundtrip_call(Call2::Statfs(FileHandle::from_u64(12)));
        roundtrip_call(Call2::Remove(DirOpArgs2 {
            dir: FileHandle::from_u64(13),
            name: "#tmp#".into(),
        }));
        roundtrip_call(Call2::Rmdir(DirOpArgs2 {
            dir: FileHandle::from_u64(14),
            name: "dir".into(),
        }));
        roundtrip_call(Call2::Mkdir {
            where_: DirOpArgs2 {
                dir: FileHandle::from_u64(15),
                name: "CVS".into(),
            },
            attributes: Sattr2::default(),
        });
        roundtrip_call(Call2::Readlink(FileHandle::from_u64(16)));
    }

    #[test]
    fn replies_roundtrip() {
        roundtrip_reply(Proc2::Null, Reply2::Void);
        roundtrip_reply(
            Proc2::Getattr,
            Reply2::AttrStat {
                status: NfsStat3::Ok,
                attributes: Some(Fattr2 {
                    size: 100,
                    fileid: 5,
                    ..Fattr2::default()
                }),
            },
        );
        roundtrip_reply(
            Proc2::Getattr,
            Reply2::AttrStat {
                status: NfsStat3::Stale,
                attributes: None,
            },
        );
        roundtrip_reply(
            Proc2::Lookup,
            Reply2::DirOpRes {
                status: NfsStat3::Ok,
                file: Some(FileHandle::from_u64(44)),
                attributes: Some(Fattr2::default()),
            },
        );
        roundtrip_reply(
            Proc2::Read,
            Reply2::Read {
                status: NfsStat3::Ok,
                attributes: Some(Fattr2::default()),
                data: vec![0; 1024],
            },
        );
        roundtrip_reply(Proc2::Remove, Reply2::Stat(NfsStat3::Ok));
        roundtrip_reply(
            Proc2::Readdir,
            Reply2::Readdir {
                status: NfsStat3::Ok,
                entries: vec![DirEntry2 {
                    fileid: 1,
                    name: "inbox".into(),
                    cookie: 1,
                }],
                eof: true,
            },
        );
        roundtrip_reply(
            Proc2::Statfs,
            Reply2::Statfs {
                status: NfsStat3::Ok,
                info: [8192, 8192, 1000000, 500000, 500000],
            },
        );
    }

    #[test]
    fn fattr2_from_fattr3_clamps_size() {
        let big = crate::types::Fattr3 {
            size: u64::from(u32::MAX) + 10,
            ..crate::types::Fattr3::default()
        };
        let v2: Fattr2 = big.into();
        assert_eq!(v2.size, u32::MAX);
    }

    #[test]
    fn sattr2_size_option() {
        assert_eq!(Sattr2::default().size_opt(), None);
        let s = Sattr2 {
            size: 0,
            ..Sattr2::default()
        };
        assert_eq!(s.size_opt(), Some(0));
    }

    fn sample_calls() -> Vec<Call2> {
        vec![
            Call2::Null,
            Call2::Getattr(FileHandle::from_u64(1)),
            Call2::Setattr {
                file: FileHandle::from_u64(2),
                attributes: Sattr2 {
                    size: 0,
                    ..Sattr2::default()
                },
            },
            Call2::Root,
            Call2::Lookup(DirOpArgs2 {
                dir: FileHandle::from_u64(3),
                name: ".cshrc".into(),
            }),
            Call2::Readlink(FileHandle::from_u64(13)),
            Call2::Writecache,
            Call2::Read {
                file: FileHandle::from_u64(4),
                offset: 8192,
                count: 8192,
                totalcount: 0,
            },
            Call2::Write {
                file: FileHandle::from_u64(5),
                beginoffset: 0,
                offset: 16384,
                totalcount: 0,
                data: vec![7; 100],
            },
            Call2::Create {
                where_: DirOpArgs2 {
                    dir: FileHandle::from_u64(6),
                    name: "core.12345".into(),
                },
                attributes: Sattr2::default(),
            },
            Call2::Remove(DirOpArgs2 {
                dir: FileHandle::from_u64(6),
                name: "core.12345".into(),
            }),
            Call2::Rename {
                from: DirOpArgs2 {
                    dir: FileHandle::from_u64(7),
                    name: "a".into(),
                },
                to: DirOpArgs2 {
                    dir: FileHandle::from_u64(7),
                    name: "b".into(),
                },
            },
            Call2::Link {
                from: FileHandle::from_u64(8),
                to: DirOpArgs2 {
                    dir: FileHandle::from_u64(9),
                    name: "ln".into(),
                },
            },
            Call2::Symlink {
                where_: DirOpArgs2 {
                    dir: FileHandle::from_u64(10),
                    name: "sl".into(),
                },
                target: "/tmp/x".into(),
                attributes: Sattr2::default(),
            },
            Call2::Mkdir {
                where_: DirOpArgs2 {
                    dir: FileHandle::from_u64(14),
                    name: "CVS".into(),
                },
                attributes: Sattr2 {
                    mode: 0o755,
                    ..Sattr2::default()
                },
            },
            Call2::Rmdir(DirOpArgs2 {
                dir: FileHandle::from_u64(14),
                name: "CVS".into(),
            }),
            Call2::Readdir {
                dir: FileHandle::from_u64(11),
                cookie: 0,
                count: 4096,
            },
            Call2::Statfs(FileHandle::from_u64(12)),
        ]
    }

    #[test]
    fn call_view_matches_owned_decode_and_borrows() {
        for call in sample_calls() {
            let bytes = call.encode_args();
            let view = Call2View::decode(call.proc(), &bytes).unwrap();
            assert_eq!(view.proc(), call.proc());
            if let Call2View::Write { data, .. } = &view {
                assert!(bytes.as_ptr_range().contains(&data.as_ptr()));
            }
            assert_eq!(view.to_owned(), call);
            for cut in 0..bytes.len() {
                let owned = Call2::decode(call.proc(), &bytes[..cut]);
                let view = Call2View::decode(call.proc(), &bytes[..cut]);
                assert_eq!(owned.is_ok(), view.is_ok(), "{:?} cut {cut}", call.proc());
                assert_eq!(owned.err(), view.err());
            }
        }
    }

    fn sample_replies() -> Vec<(Proc2, Reply2)> {
        let attrs = Fattr2 {
            size: 4096,
            fileid: 5,
            ..Fattr2::default()
        };
        vec![
            (Proc2::Null, Reply2::Void),
            (
                Proc2::Getattr,
                Reply2::AttrStat {
                    status: NfsStat3::Ok,
                    attributes: Some(attrs),
                },
            ),
            (
                Proc2::Getattr,
                Reply2::AttrStat {
                    status: NfsStat3::Stale,
                    attributes: None,
                },
            ),
            (
                Proc2::Write,
                Reply2::AttrStat {
                    status: NfsStat3::Ok,
                    attributes: Some(attrs),
                },
            ),
            (
                Proc2::Lookup,
                Reply2::DirOpRes {
                    status: NfsStat3::Ok,
                    file: Some(FileHandle::from_u64(44)),
                    attributes: Some(attrs),
                },
            ),
            (
                Proc2::Create,
                Reply2::DirOpRes {
                    status: NfsStat3::NoEnt,
                    file: None,
                    attributes: None,
                },
            ),
            (
                Proc2::Readlink,
                Reply2::Readlink {
                    status: NfsStat3::Ok,
                    target: "/tmp/x".into(),
                },
            ),
            (
                Proc2::Read,
                Reply2::Read {
                    status: NfsStat3::Ok,
                    attributes: Some(attrs),
                    data: vec![0; 1024],
                },
            ),
            (
                Proc2::Read,
                Reply2::Read {
                    status: NfsStat3::Io,
                    attributes: None,
                    data: Vec::new(),
                },
            ),
            (
                Proc2::Setattr,
                Reply2::AttrStat {
                    status: NfsStat3::Ok,
                    attributes: Some(attrs),
                },
            ),
            (Proc2::Root, Reply2::Void),
            (Proc2::Writecache, Reply2::Void),
            (
                Proc2::Mkdir,
                Reply2::DirOpRes {
                    status: NfsStat3::Ok,
                    file: Some(FileHandle::from_u64(45)),
                    attributes: Some(attrs),
                },
            ),
            (Proc2::Remove, Reply2::Stat(NfsStat3::Ok)),
            (Proc2::Rename, Reply2::Stat(NfsStat3::Stale)),
            (Proc2::Link, Reply2::Stat(NfsStat3::Ok)),
            (Proc2::Symlink, Reply2::Stat(NfsStat3::Access)),
            (Proc2::Rmdir, Reply2::Stat(NfsStat3::NotEmpty)),
            (
                Proc2::Readdir,
                Reply2::Readdir {
                    status: NfsStat3::Ok,
                    entries: vec![
                        DirEntry2 {
                            fileid: 1,
                            name: "inbox".into(),
                            cookie: 1,
                        },
                        DirEntry2 {
                            fileid: 2,
                            name: "sent-mail".into(),
                            cookie: 2,
                        },
                    ],
                    eof: true,
                },
            ),
            (
                Proc2::Statfs,
                Reply2::Statfs {
                    status: NfsStat3::Ok,
                    info: [8192, 8192, 1_000_000, 500_000, 500_000],
                },
            ),
        ]
    }

    /// Test-local mirror of the canonical flattener's v2 reply mapping.
    fn facts_of(reply: &Reply2) -> ReplyFacts2 {
        let mut f = ReplyFacts2 {
            status: reply.status(),
            post_size: None,
            ftype: None,
            ret_count: None,
            new_fh: None,
        };
        match reply {
            Reply2::AttrStat {
                attributes: Some(a),
                ..
            } => {
                f.post_size = Some(u64::from(a.size));
                f.ftype = Some(a.ftype);
            }
            Reply2::DirOpRes {
                file, attributes, ..
            } => {
                f.new_fh = file.clone();
                if let Some(a) = attributes {
                    f.post_size = Some(u64::from(a.size));
                    f.ftype = Some(a.ftype);
                }
            }
            Reply2::Read {
                attributes, data, ..
            } => {
                f.ret_count = Some(data.len() as u32);
                if let Some(a) = attributes {
                    f.post_size = Some(u64::from(a.size));
                    f.ftype = Some(a.ftype);
                }
            }
            _ => {}
        }
        f
    }

    #[test]
    fn facts_decode_matches_full_decode() {
        for (proc, reply) in sample_replies() {
            let bytes = reply.encode_results();
            let full = Reply2::decode(proc, &bytes).unwrap();
            let facts = ReplyFacts2::decode(proc, &bytes).unwrap();
            assert_eq!(facts, facts_of(&full), "{proc:?}");
        }
    }

    #[test]
    fn facts_decode_fails_exactly_when_full_decode_fails() {
        for (proc, reply) in sample_replies() {
            let bytes = reply.encode_results();
            for cut in 0..bytes.len() {
                let facts = ReplyFacts2::decode(proc, &bytes[..cut]);
                let full = Reply2::decode(proc, &bytes[..cut]);
                match (facts, full) {
                    (Ok(f), Ok(r)) => assert_eq!(f, facts_of(&r), "{proc:?} cut {cut}"),
                    (Err(fe), Err(re)) => assert_eq!(fe, re, "{proc:?} cut {cut}"),
                    (f, r) => panic!("{proc:?} cut {cut}: facts {f:?} vs full {r:?}"),
                }
            }
        }
    }

    /// `encode ∘ decode == id` over every one of the 18 v2 procedures,
    /// calls and replies both, plus the truncation sweep: any strict
    /// prefix of a canonical encoding either fails to decode or decodes
    /// to a value whose re-encoding is exactly that prefix.
    #[test]
    fn every_procedure_roundtrips_and_survives_truncation() {
        let calls = sample_calls();
        let replies = sample_replies();
        for proc in Proc2::ALL {
            assert!(
                calls.iter().any(|c| c.proc() == proc),
                "{proc:?} has no call sample"
            );
            assert!(
                replies.iter().any(|(p, _)| *p == proc),
                "{proc:?} has no reply sample"
            );
        }
        for call in calls {
            let proc = call.proc();
            let bytes = call.encode_args();
            assert_eq!(Call2::decode(proc, &bytes).unwrap(), call, "{proc:?}");
            for cut in 0..bytes.len() {
                if let Ok(got) = Call2::decode(proc, &bytes[..cut]) {
                    assert_eq!(got.encode_args(), &bytes[..cut], "{proc:?} cut {cut}");
                }
            }
        }
        for (proc, reply) in replies {
            let bytes = reply.encode_results();
            assert_eq!(Reply2::decode(proc, &bytes).unwrap(), reply, "{proc:?}");
            for cut in 0..bytes.len() {
                if let Ok(got) = Reply2::decode(proc, &bytes[..cut]) {
                    assert_eq!(got.encode_results(), &bytes[..cut], "{proc:?} cut {cut}");
                }
            }
        }
    }
}
