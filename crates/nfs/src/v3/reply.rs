//! NFSv3 reply results for all 22 procedures.

use super::Proc3;
use crate::fh::FileHandle;
use crate::types::{Fattr3, Ftype3, NfsStat3, WccData};
use nfstrace_xdr::{Decoder, Encoder, Pack, Result, Unpack};

/// `GETATTR` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Getattr3Res {
    /// Object attributes (present on success).
    pub attributes: Option<Fattr3>,
}

/// `SETATTR` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Setattr3Res {
    /// Weak cache consistency data for the object.
    pub wcc: WccData,
}

/// `LOOKUP` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Lookup3Res {
    /// Handle of the found object (success only).
    pub object: Option<FileHandle>,
    /// Attributes of the found object.
    pub obj_attributes: Option<Fattr3>,
    /// Attributes of the directory.
    pub dir_attributes: Option<Fattr3>,
}

/// `ACCESS` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Access3Res {
    /// Post-op attributes.
    pub obj_attributes: Option<Fattr3>,
    /// Granted access bits (success only).
    pub access: u32,
}

/// `READLINK` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Readlink3Res {
    /// Post-op attributes.
    pub obj_attributes: Option<Fattr3>,
    /// Link target (success only).
    pub target: String,
}

/// `READ` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Read3Res {
    /// Post-op attributes (carrying the file size the client caches on).
    pub file_attributes: Option<Fattr3>,
    /// Bytes actually read.
    pub count: u32,
    /// Whether the read reached end-of-file.
    pub eof: bool,
    /// The data (zero-filled in the simulator; length is faithful).
    pub data: Vec<u8>,
}

/// `WRITE` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Write3Res {
    /// Weak cache consistency data.
    pub wcc: WccData,
    /// Bytes actually written.
    pub count: u32,
    /// Commitment achieved (wire value of `stable_how`).
    pub committed: u32,
    /// Write verifier for commit matching.
    pub verf: [u8; 8],
}

/// `CREATE` / `MKDIR` / `SYMLINK` / `MKNOD` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Create3Res {
    /// Handle of the new object, if the server returned one.
    pub obj: Option<FileHandle>,
    /// Attributes of the new object.
    pub obj_attributes: Option<Fattr3>,
    /// WCC for the parent directory.
    pub dir_wcc: WccData,
}

/// `REMOVE` / `RMDIR` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Remove3Res {
    /// WCC for the directory.
    pub dir_wcc: WccData,
}

/// `RENAME` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Rename3Res {
    /// WCC for the source directory.
    pub from_wcc: WccData,
    /// WCC for the destination directory.
    pub to_wcc: WccData,
}

/// `LINK` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Link3Res {
    /// Post-op attributes of the file.
    pub file_attributes: Option<Fattr3>,
    /// WCC for the directory.
    pub dir_wcc: WccData,
}

/// One `READDIR` entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirEntry3 {
    /// File id (inode number).
    pub fileid: u64,
    /// Entry name.
    pub name: String,
    /// Cookie for resuming after this entry.
    pub cookie: u64,
}

/// `READDIR` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Readdir3Res {
    /// Post-op directory attributes.
    pub dir_attributes: Option<Fattr3>,
    /// Cookie verifier.
    pub cookieverf: [u8; 8],
    /// The entries.
    pub entries: Vec<DirEntry3>,
    /// Whether the listing is complete.
    pub eof: bool,
}

/// One `READDIRPLUS` entry: name plus attributes and handle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirEntryPlus3 {
    /// File id.
    pub fileid: u64,
    /// Entry name.
    pub name: String,
    /// Resume cookie.
    pub cookie: u64,
    /// Entry attributes.
    pub name_attributes: Option<Fattr3>,
    /// Entry handle.
    pub name_handle: Option<FileHandle>,
}

/// `READDIRPLUS` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Readdirplus3Res {
    /// Post-op directory attributes.
    pub dir_attributes: Option<Fattr3>,
    /// Cookie verifier.
    pub cookieverf: [u8; 8],
    /// The entries.
    pub entries: Vec<DirEntryPlus3>,
    /// Whether the listing is complete.
    pub eof: bool,
}

/// `FSSTAT` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Fsstat3Res {
    /// Post-op attributes.
    pub obj_attributes: Option<Fattr3>,
    /// Total bytes.
    pub tbytes: u64,
    /// Free bytes.
    pub fbytes: u64,
    /// Bytes available to the caller.
    pub abytes: u64,
    /// Total file slots.
    pub tfiles: u64,
    /// Free file slots.
    pub ffiles: u64,
    /// File slots available to the caller.
    pub afiles: u64,
    /// Attribute volatility hint, seconds.
    pub invarsec: u32,
}

/// `FSINFO` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Fsinfo3Res {
    /// Post-op attributes.
    pub obj_attributes: Option<Fattr3>,
    /// Maximum read size.
    pub rtmax: u32,
    /// Preferred read size.
    pub rtpref: u32,
    /// Read size multiple.
    pub rtmult: u32,
    /// Maximum write size.
    pub wtmax: u32,
    /// Preferred write size.
    pub wtpref: u32,
    /// Write size multiple.
    pub wtmult: u32,
    /// Preferred readdir size.
    pub dtpref: u32,
    /// Maximum file size.
    pub maxfilesize: u64,
    /// Server time granularity.
    pub time_delta: crate::types::NfsTime3,
    /// Property bits.
    pub properties: u32,
}

/// `PATHCONF` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pathconf3Res {
    /// Post-op attributes.
    pub obj_attributes: Option<Fattr3>,
    /// Maximum link count.
    pub linkmax: u32,
    /// Maximum name length.
    pub name_max: u32,
    /// Whether names longer than `name_max` error (vs truncate).
    pub no_trunc: bool,
    /// Whether chown is restricted.
    pub chown_restricted: bool,
    /// Whether names are case-insensitive.
    pub case_insensitive: bool,
    /// Whether case is preserved.
    pub case_preserving: bool,
}

/// `COMMIT` result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Commit3Res {
    /// WCC for the file.
    pub wcc: WccData,
    /// Write verifier.
    pub verf: [u8; 8],
}

/// A decoded NFSv3 reply: status plus per-procedure results.
///
/// On non-OK status most procedures still return the "default" arm
/// (post-op attributes or WCC), which the codecs here honor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply3 {
    /// The status code.
    pub status: NfsStat3,
    /// The per-procedure body.
    pub body: Reply3Body,
}

/// Per-procedure reply bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply3Body {
    /// NULL has no body.
    Null,
    /// GETATTR.
    Getattr(Getattr3Res),
    /// SETATTR.
    Setattr(Setattr3Res),
    /// LOOKUP.
    Lookup(Lookup3Res),
    /// ACCESS.
    Access(Access3Res),
    /// READLINK.
    Readlink(Readlink3Res),
    /// READ.
    Read(Read3Res),
    /// WRITE.
    Write(Write3Res),
    /// CREATE.
    Create(Create3Res),
    /// MKDIR.
    Mkdir(Create3Res),
    /// SYMLINK.
    Symlink(Create3Res),
    /// MKNOD.
    Mknod(Create3Res),
    /// REMOVE.
    Remove(Remove3Res),
    /// RMDIR.
    Rmdir(Remove3Res),
    /// RENAME.
    Rename(Rename3Res),
    /// LINK.
    Link(Link3Res),
    /// READDIR.
    Readdir(Readdir3Res),
    /// READDIRPLUS.
    Readdirplus(Readdirplus3Res),
    /// FSSTAT.
    Fsstat(Fsstat3Res),
    /// FSINFO.
    Fsinfo(Fsinfo3Res),
    /// PATHCONF.
    Pathconf(Pathconf3Res),
    /// COMMIT.
    Commit(Commit3Res),
}

impl Reply3 {
    /// A successful reply with the given body.
    pub fn ok(body: Reply3Body) -> Self {
        Reply3 {
            status: NfsStat3::Ok,
            body,
        }
    }

    /// An error reply for `proc` with empty default body.
    pub fn error(proc: Proc3, status: NfsStat3) -> Self {
        Reply3 {
            status,
            body: Reply3Body::empty_for(proc),
        }
    }

    /// Encodes the results (the RPC reply body's results field).
    pub fn encode_results(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        if !matches!(self.body, Reply3Body::Null) {
            self.status.pack(&mut enc);
        }
        let ok = self.status.is_ok();
        match &self.body {
            Reply3Body::Null => {}
            Reply3Body::Getattr(r) => {
                if ok {
                    // GETATTR success carries bare fattr3 (not optional).
                    r.attributes.unwrap_or_default().pack(&mut enc);
                }
            }
            Reply3Body::Setattr(r) => r.wcc.pack(&mut enc),
            Reply3Body::Lookup(r) => {
                if ok {
                    r.object.clone().unwrap_or_default().pack(&mut enc);
                    r.obj_attributes.pack(&mut enc);
                }
                r.dir_attributes.pack(&mut enc);
            }
            Reply3Body::Access(r) => {
                r.obj_attributes.pack(&mut enc);
                if ok {
                    enc.put_u32(r.access);
                }
            }
            Reply3Body::Readlink(r) => {
                r.obj_attributes.pack(&mut enc);
                if ok {
                    enc.put_string(&r.target);
                }
            }
            Reply3Body::Read(r) => {
                r.file_attributes.pack(&mut enc);
                if ok {
                    enc.put_u32(r.count);
                    enc.put_bool(r.eof);
                    enc.put_opaque_var(&r.data);
                }
            }
            Reply3Body::Write(r) => {
                r.wcc.pack(&mut enc);
                if ok {
                    enc.put_u32(r.count);
                    enc.put_u32(r.committed);
                    enc.put_opaque_fixed(&r.verf);
                }
            }
            Reply3Body::Create(r)
            | Reply3Body::Mkdir(r)
            | Reply3Body::Symlink(r)
            | Reply3Body::Mknod(r) => {
                if ok {
                    r.obj.pack(&mut enc);
                    r.obj_attributes.pack(&mut enc);
                }
                r.dir_wcc.pack(&mut enc);
            }
            Reply3Body::Remove(r) | Reply3Body::Rmdir(r) => r.dir_wcc.pack(&mut enc),
            Reply3Body::Rename(r) => {
                r.from_wcc.pack(&mut enc);
                r.to_wcc.pack(&mut enc);
            }
            Reply3Body::Link(r) => {
                r.file_attributes.pack(&mut enc);
                r.dir_wcc.pack(&mut enc);
            }
            Reply3Body::Readdir(r) => {
                r.dir_attributes.pack(&mut enc);
                if ok {
                    enc.put_opaque_fixed(&r.cookieverf);
                    for e in &r.entries {
                        enc.put_bool(true);
                        enc.put_u64(e.fileid);
                        enc.put_string(&e.name);
                        enc.put_u64(e.cookie);
                    }
                    enc.put_bool(false);
                    enc.put_bool(r.eof);
                }
            }
            Reply3Body::Readdirplus(r) => {
                r.dir_attributes.pack(&mut enc);
                if ok {
                    enc.put_opaque_fixed(&r.cookieverf);
                    for e in &r.entries {
                        enc.put_bool(true);
                        enc.put_u64(e.fileid);
                        enc.put_string(&e.name);
                        enc.put_u64(e.cookie);
                        e.name_attributes.pack(&mut enc);
                        e.name_handle.pack(&mut enc);
                    }
                    enc.put_bool(false);
                    enc.put_bool(r.eof);
                }
            }
            Reply3Body::Fsstat(r) => {
                r.obj_attributes.pack(&mut enc);
                if ok {
                    enc.put_u64(r.tbytes);
                    enc.put_u64(r.fbytes);
                    enc.put_u64(r.abytes);
                    enc.put_u64(r.tfiles);
                    enc.put_u64(r.ffiles);
                    enc.put_u64(r.afiles);
                    enc.put_u32(r.invarsec);
                }
            }
            Reply3Body::Fsinfo(r) => {
                r.obj_attributes.pack(&mut enc);
                if ok {
                    enc.put_u32(r.rtmax);
                    enc.put_u32(r.rtpref);
                    enc.put_u32(r.rtmult);
                    enc.put_u32(r.wtmax);
                    enc.put_u32(r.wtpref);
                    enc.put_u32(r.wtmult);
                    enc.put_u32(r.dtpref);
                    enc.put_u64(r.maxfilesize);
                    r.time_delta.pack(&mut enc);
                    enc.put_u32(r.properties);
                }
            }
            Reply3Body::Pathconf(r) => {
                r.obj_attributes.pack(&mut enc);
                if ok {
                    enc.put_u32(r.linkmax);
                    enc.put_u32(r.name_max);
                    enc.put_bool(r.no_trunc);
                    enc.put_bool(r.chown_restricted);
                    enc.put_bool(r.case_insensitive);
                    enc.put_bool(r.case_preserving);
                }
            }
            Reply3Body::Commit(r) => {
                r.wcc.pack(&mut enc);
                if ok {
                    enc.put_opaque_fixed(&r.verf);
                }
            }
        }
        enc.into_bytes()
    }

    /// Decodes reply results for `proc` from raw XDR bytes.
    ///
    /// # Errors
    ///
    /// Any XDR decode error for malformed results.
    pub fn decode(proc: Proc3, results: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(results);
        if proc == Proc3::Null {
            return Ok(Reply3::ok(Reply3Body::Null));
        }
        let status = NfsStat3::unpack(&mut dec)?;
        let ok = status.is_ok();
        let body = match proc {
            Proc3::Null => unreachable!("handled above"),
            Proc3::Getattr => Reply3Body::Getattr(Getattr3Res {
                attributes: if ok {
                    Some(Fattr3::unpack(&mut dec)?)
                } else {
                    None
                },
            }),
            Proc3::Setattr => Reply3Body::Setattr(Setattr3Res {
                wcc: WccData::unpack(&mut dec)?,
            }),
            Proc3::Lookup => {
                if ok {
                    Reply3Body::Lookup(Lookup3Res {
                        object: Some(FileHandle::unpack(&mut dec)?),
                        obj_attributes: Option::unpack(&mut dec)?,
                        dir_attributes: Option::unpack(&mut dec)?,
                    })
                } else {
                    Reply3Body::Lookup(Lookup3Res {
                        object: None,
                        obj_attributes: None,
                        dir_attributes: Option::unpack(&mut dec)?,
                    })
                }
            }
            Proc3::Access => Reply3Body::Access(Access3Res {
                obj_attributes: Option::unpack(&mut dec)?,
                access: if ok { dec.get_u32()? } else { 0 },
            }),
            Proc3::Readlink => Reply3Body::Readlink(Readlink3Res {
                obj_attributes: Option::unpack(&mut dec)?,
                target: if ok { dec.get_string()? } else { String::new() },
            }),
            Proc3::Read => {
                let file_attributes = Option::unpack(&mut dec)?;
                if ok {
                    Reply3Body::Read(Read3Res {
                        file_attributes,
                        count: dec.get_u32()?,
                        eof: dec.get_bool()?,
                        data: dec.get_opaque_var()?,
                    })
                } else {
                    Reply3Body::Read(Read3Res {
                        file_attributes,
                        ..Read3Res::default()
                    })
                }
            }
            Proc3::Write => {
                let wcc = WccData::unpack(&mut dec)?;
                if ok {
                    let count = dec.get_u32()?;
                    let committed = dec.get_u32()?;
                    let v = dec.get_opaque_fixed(8)?;
                    let mut verf = [0u8; 8];
                    verf.copy_from_slice(&v);
                    Reply3Body::Write(Write3Res {
                        wcc,
                        count,
                        committed,
                        verf,
                    })
                } else {
                    Reply3Body::Write(Write3Res {
                        wcc,
                        ..Write3Res::default()
                    })
                }
            }
            Proc3::Create | Proc3::Mkdir | Proc3::Symlink | Proc3::Mknod => {
                let res = if ok {
                    let obj = Option::<FileHandle>::unpack(&mut dec)?;
                    let obj_attributes = Option::unpack(&mut dec)?;
                    Create3Res {
                        obj,
                        obj_attributes,
                        dir_wcc: WccData::unpack(&mut dec)?,
                    }
                } else {
                    Create3Res {
                        obj: None,
                        obj_attributes: None,
                        dir_wcc: WccData::unpack(&mut dec)?,
                    }
                };
                match proc {
                    Proc3::Create => Reply3Body::Create(res),
                    Proc3::Mkdir => Reply3Body::Mkdir(res),
                    Proc3::Symlink => Reply3Body::Symlink(res),
                    _ => Reply3Body::Mknod(res),
                }
            }
            Proc3::Remove => Reply3Body::Remove(Remove3Res {
                dir_wcc: WccData::unpack(&mut dec)?,
            }),
            Proc3::Rmdir => Reply3Body::Rmdir(Remove3Res {
                dir_wcc: WccData::unpack(&mut dec)?,
            }),
            Proc3::Rename => Reply3Body::Rename(Rename3Res {
                from_wcc: WccData::unpack(&mut dec)?,
                to_wcc: WccData::unpack(&mut dec)?,
            }),
            Proc3::Link => Reply3Body::Link(Link3Res {
                file_attributes: Option::unpack(&mut dec)?,
                dir_wcc: WccData::unpack(&mut dec)?,
            }),
            Proc3::Readdir => {
                let dir_attributes = Option::unpack(&mut dec)?;
                if ok {
                    let v = dec.get_opaque_fixed(8)?;
                    let mut cookieverf = [0u8; 8];
                    cookieverf.copy_from_slice(&v);
                    let mut entries = Vec::new();
                    while dec.get_bool()? {
                        entries.push(DirEntry3 {
                            fileid: dec.get_u64()?,
                            name: dec.get_string()?,
                            cookie: dec.get_u64()?,
                        });
                    }
                    Reply3Body::Readdir(Readdir3Res {
                        dir_attributes,
                        cookieverf,
                        entries,
                        eof: dec.get_bool()?,
                    })
                } else {
                    Reply3Body::Readdir(Readdir3Res {
                        dir_attributes,
                        ..Readdir3Res::default()
                    })
                }
            }
            Proc3::Readdirplus => {
                let dir_attributes = Option::unpack(&mut dec)?;
                if ok {
                    let v = dec.get_opaque_fixed(8)?;
                    let mut cookieverf = [0u8; 8];
                    cookieverf.copy_from_slice(&v);
                    let mut entries = Vec::new();
                    while dec.get_bool()? {
                        entries.push(DirEntryPlus3 {
                            fileid: dec.get_u64()?,
                            name: dec.get_string()?,
                            cookie: dec.get_u64()?,
                            name_attributes: Option::unpack(&mut dec)?,
                            name_handle: Option::unpack(&mut dec)?,
                        });
                    }
                    Reply3Body::Readdirplus(Readdirplus3Res {
                        dir_attributes,
                        cookieverf,
                        entries,
                        eof: dec.get_bool()?,
                    })
                } else {
                    Reply3Body::Readdirplus(Readdirplus3Res {
                        dir_attributes,
                        ..Readdirplus3Res::default()
                    })
                }
            }
            Proc3::Fsstat => {
                let obj_attributes = Option::unpack(&mut dec)?;
                if ok {
                    Reply3Body::Fsstat(Fsstat3Res {
                        obj_attributes,
                        tbytes: dec.get_u64()?,
                        fbytes: dec.get_u64()?,
                        abytes: dec.get_u64()?,
                        tfiles: dec.get_u64()?,
                        ffiles: dec.get_u64()?,
                        afiles: dec.get_u64()?,
                        invarsec: dec.get_u32()?,
                    })
                } else {
                    Reply3Body::Fsstat(Fsstat3Res {
                        obj_attributes,
                        ..Fsstat3Res::default()
                    })
                }
            }
            Proc3::Fsinfo => {
                let obj_attributes = Option::unpack(&mut dec)?;
                if ok {
                    Reply3Body::Fsinfo(Fsinfo3Res {
                        obj_attributes,
                        rtmax: dec.get_u32()?,
                        rtpref: dec.get_u32()?,
                        rtmult: dec.get_u32()?,
                        wtmax: dec.get_u32()?,
                        wtpref: dec.get_u32()?,
                        wtmult: dec.get_u32()?,
                        dtpref: dec.get_u32()?,
                        maxfilesize: dec.get_u64()?,
                        time_delta: crate::types::NfsTime3::unpack(&mut dec)?,
                        properties: dec.get_u32()?,
                    })
                } else {
                    Reply3Body::Fsinfo(Fsinfo3Res {
                        obj_attributes,
                        ..Fsinfo3Res::default()
                    })
                }
            }
            Proc3::Pathconf => {
                let obj_attributes = Option::unpack(&mut dec)?;
                if ok {
                    Reply3Body::Pathconf(Pathconf3Res {
                        obj_attributes,
                        linkmax: dec.get_u32()?,
                        name_max: dec.get_u32()?,
                        no_trunc: dec.get_bool()?,
                        chown_restricted: dec.get_bool()?,
                        case_insensitive: dec.get_bool()?,
                        case_preserving: dec.get_bool()?,
                    })
                } else {
                    Reply3Body::Pathconf(Pathconf3Res {
                        obj_attributes,
                        ..Pathconf3Res::default()
                    })
                }
            }
            Proc3::Commit => {
                let wcc = WccData::unpack(&mut dec)?;
                if ok {
                    let v = dec.get_opaque_fixed(8)?;
                    let mut verf = [0u8; 8];
                    verf.copy_from_slice(&v);
                    Reply3Body::Commit(Commit3Res { wcc, verf })
                } else {
                    Reply3Body::Commit(Commit3Res {
                        wcc,
                        ..Commit3Res::default()
                    })
                }
            }
        };
        Ok(Reply3 { status, body })
    }
}

impl Reply3Body {
    /// The empty (error-arm) body for a procedure.
    pub fn empty_for(proc: Proc3) -> Self {
        match proc {
            Proc3::Null => Reply3Body::Null,
            Proc3::Getattr => Reply3Body::Getattr(Getattr3Res::default()),
            Proc3::Setattr => Reply3Body::Setattr(Setattr3Res::default()),
            Proc3::Lookup => Reply3Body::Lookup(Lookup3Res::default()),
            Proc3::Access => Reply3Body::Access(Access3Res::default()),
            Proc3::Readlink => Reply3Body::Readlink(Readlink3Res::default()),
            Proc3::Read => Reply3Body::Read(Read3Res::default()),
            Proc3::Write => Reply3Body::Write(Write3Res::default()),
            Proc3::Create => Reply3Body::Create(Create3Res::default()),
            Proc3::Mkdir => Reply3Body::Mkdir(Create3Res::default()),
            Proc3::Symlink => Reply3Body::Symlink(Create3Res::default()),
            Proc3::Mknod => Reply3Body::Mknod(Create3Res::default()),
            Proc3::Remove => Reply3Body::Remove(Remove3Res::default()),
            Proc3::Rmdir => Reply3Body::Rmdir(Remove3Res::default()),
            Proc3::Rename => Reply3Body::Rename(Rename3Res::default()),
            Proc3::Link => Reply3Body::Link(Link3Res::default()),
            Proc3::Readdir => Reply3Body::Readdir(Readdir3Res::default()),
            Proc3::Readdirplus => Reply3Body::Readdirplus(Readdirplus3Res::default()),
            Proc3::Fsstat => Reply3Body::Fsstat(Fsstat3Res::default()),
            Proc3::Fsinfo => Reply3Body::Fsinfo(Fsinfo3Res::default()),
            Proc3::Pathconf => Reply3Body::Pathconf(Pathconf3Res::default()),
            Proc3::Commit => Reply3Body::Commit(Commit3Res::default()),
        }
    }
}

/// The subset of an NFSv3 reply that flows into a flattened trace
/// record, decoded in one streaming pass with no heap allocation.
///
/// [`ReplyFacts3::decode`] consumes and validates a results body
/// exactly as [`Reply3::decode`] does — the same reads in the same
/// order, failing in the same cases — but borrows over directory
/// entries, read data, and verifiers instead of materializing them.
/// A `Some` field means the reply carried that fact; `None` leaves the
/// corresponding trace-record field at its default, matching the
/// canonical flattener's behaviour on the full reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyFacts3 {
    /// Reply status.
    pub status: NfsStat3,
    /// Pre-op file size from weak-cache-consistency data.
    pub pre_size: Option<u64>,
    /// Post-op file size.
    pub post_size: Option<u64>,
    /// Post-op file type.
    pub ftype: Option<Ftype3>,
    /// Returned byte count (`READ`/`WRITE`; zero on error replies).
    pub ret_count: Option<u32>,
    /// End-of-file flag (`READ`; false on error replies).
    pub eof: Option<bool>,
    /// Handle of a created or looked-up object.
    pub new_fh: Option<FileHandle>,
}

impl ReplyFacts3 {
    fn empty(status: NfsStat3) -> Self {
        ReplyFacts3 {
            status,
            pre_size: None,
            post_size: None,
            ftype: None,
            ret_count: None,
            eof: None,
            new_fh: None,
        }
    }

    fn post(&mut self, attrs: Option<Fattr3>) {
        if let Some(a) = attrs {
            self.post_size = Some(a.size);
            self.ftype = Some(a.ftype);
        }
    }

    fn wcc_sizes(&mut self, wcc: &WccData) {
        self.pre_size = wcc.before.map(|b| b.size);
        self.post_size = wcc.after.map(|a| a.size);
    }

    /// Decodes the facts for `proc` from an RPC results body.
    ///
    /// # Errors
    ///
    /// Fails exactly when [`Reply3::decode`] would fail on the same
    /// bytes.
    pub fn decode(proc: Proc3, results: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(results);
        if proc == Proc3::Null {
            return Ok(Self::empty(NfsStat3::Ok));
        }
        let mut f = Self::empty(NfsStat3::unpack(&mut dec)?);
        let ok = f.status.is_ok();
        match proc {
            Proc3::Null => unreachable!("handled above"),
            Proc3::Getattr => {
                if ok {
                    f.post(Some(Fattr3::unpack(&mut dec)?));
                }
            }
            Proc3::Setattr => {
                let wcc = WccData::unpack(&mut dec)?;
                f.wcc_sizes(&wcc);
            }
            Proc3::Lookup => {
                if ok {
                    f.new_fh = Some(FileHandle::unpack(&mut dec)?);
                    f.post(Option::unpack(&mut dec)?);
                }
                let _dir: Option<Fattr3> = Option::unpack(&mut dec)?;
            }
            Proc3::Access => {
                let _attrs: Option<Fattr3> = Option::unpack(&mut dec)?;
                if ok {
                    dec.get_u32()?;
                }
            }
            Proc3::Readlink => {
                let _attrs: Option<Fattr3> = Option::unpack(&mut dec)?;
                if ok {
                    dec.get_str_ref()?;
                }
            }
            Proc3::Read => {
                f.post(Option::unpack(&mut dec)?);
                if ok {
                    f.ret_count = Some(dec.get_u32()?);
                    f.eof = Some(dec.get_bool()?);
                    dec.get_opaque_var_ref()?;
                } else {
                    f.ret_count = Some(0);
                    f.eof = Some(false);
                }
            }
            Proc3::Write => {
                let wcc = WccData::unpack(&mut dec)?;
                f.wcc_sizes(&wcc);
                if ok {
                    f.ret_count = Some(dec.get_u32()?);
                    dec.get_u32()?; // committed
                    dec.get_opaque_fixed_ref(8)?;
                } else {
                    f.ret_count = Some(0);
                }
            }
            Proc3::Create | Proc3::Mkdir | Proc3::Symlink | Proc3::Mknod => {
                if ok {
                    f.new_fh = Option::unpack(&mut dec)?;
                    f.post(Option::unpack(&mut dec)?);
                }
                // dir_wcc is consumed but never flattened.
                WccData::unpack(&mut dec)?;
            }
            Proc3::Remove | Proc3::Rmdir => {
                WccData::unpack(&mut dec)?;
            }
            Proc3::Rename => {
                WccData::unpack(&mut dec)?;
                WccData::unpack(&mut dec)?;
            }
            Proc3::Link => {
                let _attrs: Option<Fattr3> = Option::unpack(&mut dec)?;
                WccData::unpack(&mut dec)?;
            }
            Proc3::Readdir => {
                let _attrs: Option<Fattr3> = Option::unpack(&mut dec)?;
                if ok {
                    dec.get_opaque_fixed_ref(8)?;
                    while dec.get_bool()? {
                        dec.get_u64()?;
                        dec.get_str_ref()?;
                        dec.get_u64()?;
                    }
                    dec.get_bool()?;
                }
            }
            Proc3::Readdirplus => {
                let _attrs: Option<Fattr3> = Option::unpack(&mut dec)?;
                if ok {
                    dec.get_opaque_fixed_ref(8)?;
                    while dec.get_bool()? {
                        dec.get_u64()?;
                        dec.get_str_ref()?;
                        dec.get_u64()?;
                        Option::<Fattr3>::unpack(&mut dec)?;
                        Option::<FileHandle>::unpack(&mut dec)?;
                    }
                    dec.get_bool()?;
                }
            }
            Proc3::Fsstat => {
                let _attrs: Option<Fattr3> = Option::unpack(&mut dec)?;
                if ok {
                    for _ in 0..6 {
                        dec.get_u64()?;
                    }
                    dec.get_u32()?;
                }
            }
            Proc3::Fsinfo => {
                let _attrs: Option<Fattr3> = Option::unpack(&mut dec)?;
                if ok {
                    for _ in 0..7 {
                        dec.get_u32()?;
                    }
                    dec.get_u64()?;
                    crate::types::NfsTime3::unpack(&mut dec)?;
                    dec.get_u32()?;
                }
            }
            Proc3::Pathconf => {
                let _attrs: Option<Fattr3> = Option::unpack(&mut dec)?;
                if ok {
                    dec.get_u32()?;
                    dec.get_u32()?;
                    for _ in 0..4 {
                        dec.get_bool()?;
                    }
                }
            }
            Proc3::Commit => {
                WccData::unpack(&mut dec)?;
                if ok {
                    dec.get_opaque_fixed_ref(8)?;
                }
            }
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{NfsTime3, WccAttr};

    fn roundtrip(proc: Proc3, reply: Reply3) {
        let bytes = reply.encode_results();
        let got = Reply3::decode(proc, &bytes).unwrap();
        assert_eq!(got, reply);
    }

    fn attrs(size: u64) -> Fattr3 {
        Fattr3 {
            size,
            used: size,
            fileid: 7,
            ..Fattr3::default()
        }
    }

    #[test]
    fn getattr_ok_roundtrip() {
        roundtrip(
            Proc3::Getattr,
            Reply3::ok(Reply3Body::Getattr(Getattr3Res {
                attributes: Some(attrs(100)),
            })),
        );
    }

    #[test]
    fn getattr_err_roundtrip() {
        roundtrip(
            Proc3::Getattr,
            Reply3::error(Proc3::Getattr, NfsStat3::Stale),
        );
    }

    #[test]
    fn lookup_roundtrips() {
        roundtrip(
            Proc3::Lookup,
            Reply3::ok(Reply3Body::Lookup(Lookup3Res {
                object: Some(FileHandle::from_u64(5)),
                obj_attributes: Some(attrs(2048)),
                dir_attributes: None,
            })),
        );
        roundtrip(Proc3::Lookup, Reply3::error(Proc3::Lookup, NfsStat3::NoEnt));
    }

    #[test]
    fn read_roundtrips() {
        roundtrip(
            Proc3::Read,
            Reply3::ok(Reply3Body::Read(Read3Res {
                file_attributes: Some(attrs(1 << 21)),
                count: 8192,
                eof: false,
                data: vec![0u8; 8192],
            })),
        );
        roundtrip(Proc3::Read, Reply3::error(Proc3::Read, NfsStat3::Io));
    }

    #[test]
    fn write_roundtrips() {
        roundtrip(
            Proc3::Write,
            Reply3::ok(Reply3Body::Write(Write3Res {
                wcc: WccData {
                    before: Some(WccAttr {
                        size: 100,
                        mtime: NfsTime3::from_micros(1),
                        ctime: NfsTime3::from_micros(2),
                    }),
                    after: Some(attrs(200)),
                },
                count: 100,
                committed: 2,
                verf: [3; 8],
            })),
        );
    }

    #[test]
    fn create_family_roundtrips() {
        for proc in [Proc3::Create, Proc3::Mkdir, Proc3::Symlink, Proc3::Mknod] {
            let res = Create3Res {
                obj: Some(FileHandle::from_u64(77)),
                obj_attributes: Some(attrs(0)),
                dir_wcc: WccData::default(),
            };
            let body = match proc {
                Proc3::Create => Reply3Body::Create(res),
                Proc3::Mkdir => Reply3Body::Mkdir(res),
                Proc3::Symlink => Reply3Body::Symlink(res),
                _ => Reply3Body::Mknod(res),
            };
            roundtrip(proc, Reply3::ok(body));
            roundtrip(proc, Reply3::error(proc, NfsStat3::Exist));
        }
    }

    #[test]
    fn readdir_roundtrips() {
        roundtrip(
            Proc3::Readdir,
            Reply3::ok(Reply3Body::Readdir(Readdir3Res {
                dir_attributes: Some(attrs(4096)),
                cookieverf: [1; 8],
                entries: vec![
                    DirEntry3 {
                        fileid: 1,
                        name: ".".into(),
                        cookie: 1,
                    },
                    DirEntry3 {
                        fileid: 2,
                        name: "inbox".into(),
                        cookie: 2,
                    },
                ],
                eof: true,
            })),
        );
    }

    #[test]
    fn readdirplus_roundtrips() {
        roundtrip(
            Proc3::Readdirplus,
            Reply3::ok(Reply3Body::Readdirplus(Readdirplus3Res {
                dir_attributes: None,
                cookieverf: [0; 8],
                entries: vec![DirEntryPlus3 {
                    fileid: 3,
                    name: ".pinerc".into(),
                    cookie: 9,
                    name_attributes: Some(attrs(11 * 1024)),
                    name_handle: Some(FileHandle::from_u64(3)),
                }],
                eof: false,
            })),
        );
    }

    #[test]
    fn fs_info_family_roundtrips() {
        roundtrip(
            Proc3::Fsstat,
            Reply3::ok(Reply3Body::Fsstat(Fsstat3Res {
                obj_attributes: Some(attrs(0)),
                tbytes: 53 * 1_000_000_000,
                fbytes: 10_000_000_000,
                abytes: 10_000_000_000,
                tfiles: 1_000_000,
                ffiles: 900_000,
                afiles: 900_000,
                invarsec: 0,
            })),
        );
        roundtrip(
            Proc3::Fsinfo,
            Reply3::ok(Reply3Body::Fsinfo(Fsinfo3Res {
                rtmax: 32768,
                rtpref: 32768,
                wtmax: 32768,
                wtpref: 32768,
                dtpref: 8192,
                maxfilesize: u64::MAX,
                ..Fsinfo3Res::default()
            })),
        );
        roundtrip(
            Proc3::Pathconf,
            Reply3::ok(Reply3Body::Pathconf(Pathconf3Res {
                linkmax: 32767,
                name_max: 255,
                no_trunc: true,
                case_preserving: true,
                ..Pathconf3Res::default()
            })),
        );
        roundtrip(
            Proc3::Commit,
            Reply3::ok(Reply3Body::Commit(Commit3Res {
                wcc: WccData::default(),
                verf: [5; 8],
            })),
        );
    }

    #[test]
    fn remove_rename_link_roundtrips() {
        roundtrip(
            Proc3::Remove,
            Reply3::ok(Reply3Body::Remove(Remove3Res::default())),
        );
        roundtrip(
            Proc3::Rename,
            Reply3::ok(Reply3Body::Rename(Rename3Res::default())),
        );
        roundtrip(
            Proc3::Link,
            Reply3::ok(Reply3Body::Link(Link3Res {
                file_attributes: Some(attrs(1)),
                dir_wcc: WccData::default(),
            })),
        );
        roundtrip(
            Proc3::Access,
            Reply3::ok(Reply3Body::Access(Access3Res {
                obj_attributes: Some(attrs(1)),
                access: 0x1f,
            })),
        );
        roundtrip(
            Proc3::Readlink,
            Reply3::ok(Reply3Body::Readlink(Readlink3Res {
                obj_attributes: None,
                target: "/somewhere/else".into(),
            })),
        );
        roundtrip(
            Proc3::Setattr,
            Reply3::ok(Reply3Body::Setattr(Setattr3Res::default())),
        );
    }

    #[test]
    fn null_has_empty_encoding() {
        let r = Reply3::ok(Reply3Body::Null);
        assert!(r.encode_results().is_empty());
        assert_eq!(Reply3::decode(Proc3::Null, &[]).unwrap(), r);
    }

    /// Test-local mirror of the canonical flattener's reply mapping:
    /// the facts a fully-decoded reply would contribute to a record.
    fn facts_of(reply: &Reply3) -> ReplyFacts3 {
        let mut f = ReplyFacts3 {
            status: reply.status,
            pre_size: None,
            post_size: None,
            ftype: None,
            ret_count: None,
            eof: None,
            new_fh: None,
        };
        let post = |f: &mut ReplyFacts3, attrs: Option<Fattr3>| {
            if let Some(a) = attrs {
                f.post_size = Some(a.size);
                f.ftype = Some(a.ftype);
            }
        };
        match &reply.body {
            Reply3Body::Getattr(res) => post(&mut f, res.attributes),
            Reply3Body::Setattr(res) => {
                f.pre_size = res.wcc.before.map(|b| b.size);
                f.post_size = res.wcc.after.map(|a| a.size);
            }
            Reply3Body::Lookup(res) => {
                f.new_fh = res.object.clone();
                post(&mut f, res.obj_attributes);
            }
            Reply3Body::Read(res) => {
                f.ret_count = Some(res.count);
                f.eof = Some(res.eof);
                post(&mut f, res.file_attributes);
            }
            Reply3Body::Write(res) => {
                f.ret_count = Some(res.count);
                f.pre_size = res.wcc.before.map(|b| b.size);
                f.post_size = res.wcc.after.map(|a| a.size);
            }
            Reply3Body::Create(res)
            | Reply3Body::Mkdir(res)
            | Reply3Body::Symlink(res)
            | Reply3Body::Mknod(res) => {
                f.new_fh = res.obj.clone();
                post(&mut f, res.obj_attributes);
            }
            _ => {}
        }
        f
    }

    fn sample_replies() -> Vec<(Proc3, Reply3)> {
        let wcc = WccData {
            before: Some(WccAttr {
                size: 100,
                mtime: NfsTime3::from_micros(1),
                ctime: NfsTime3::from_micros(2),
            }),
            after: Some(attrs(200)),
        };
        let mut samples = vec![
            (Proc3::Null, Reply3::ok(Reply3Body::Null)),
            (
                Proc3::Getattr,
                Reply3::ok(Reply3Body::Getattr(Getattr3Res {
                    attributes: Some(attrs(100)),
                })),
            ),
            (
                Proc3::Setattr,
                Reply3::ok(Reply3Body::Setattr(Setattr3Res { wcc })),
            ),
            (
                Proc3::Lookup,
                Reply3::ok(Reply3Body::Lookup(Lookup3Res {
                    object: Some(FileHandle::from_u64(5)),
                    obj_attributes: Some(attrs(2048)),
                    dir_attributes: Some(attrs(4096)),
                })),
            ),
            (
                Proc3::Access,
                Reply3::ok(Reply3Body::Access(Access3Res {
                    obj_attributes: Some(attrs(1)),
                    access: 0x1f,
                })),
            ),
            (
                Proc3::Readlink,
                Reply3::ok(Reply3Body::Readlink(Readlink3Res {
                    obj_attributes: None,
                    target: "/somewhere/else".into(),
                })),
            ),
            (
                Proc3::Read,
                Reply3::ok(Reply3Body::Read(Read3Res {
                    file_attributes: Some(attrs(1 << 21)),
                    count: 8192,
                    eof: true,
                    data: vec![7u8; 8192],
                })),
            ),
            (
                Proc3::Write,
                Reply3::ok(Reply3Body::Write(Write3Res {
                    wcc,
                    count: 100,
                    committed: 2,
                    verf: [3; 8],
                })),
            ),
            (
                Proc3::Remove,
                Reply3::ok(Reply3Body::Remove(Remove3Res { dir_wcc: wcc })),
            ),
            (
                Proc3::Rename,
                Reply3::ok(Reply3Body::Rename(Rename3Res {
                    from_wcc: wcc,
                    to_wcc: WccData::default(),
                })),
            ),
            (
                Proc3::Link,
                Reply3::ok(Reply3Body::Link(Link3Res {
                    file_attributes: Some(attrs(1)),
                    dir_wcc: wcc,
                })),
            ),
            (
                Proc3::Readdir,
                Reply3::ok(Reply3Body::Readdir(Readdir3Res {
                    dir_attributes: Some(attrs(4096)),
                    cookieverf: [1; 8],
                    entries: vec![
                        DirEntry3 {
                            fileid: 1,
                            name: ".".into(),
                            cookie: 1,
                        },
                        DirEntry3 {
                            fileid: 2,
                            name: "inbox".into(),
                            cookie: 2,
                        },
                    ],
                    eof: true,
                })),
            ),
            (
                Proc3::Readdirplus,
                Reply3::ok(Reply3Body::Readdirplus(Readdirplus3Res {
                    dir_attributes: None,
                    cookieverf: [0; 8],
                    entries: vec![DirEntryPlus3 {
                        fileid: 3,
                        name: ".pinerc".into(),
                        cookie: 9,
                        name_attributes: Some(attrs(11 * 1024)),
                        name_handle: Some(FileHandle::from_u64(3)),
                    }],
                    eof: false,
                })),
            ),
            (
                Proc3::Fsstat,
                Reply3::ok(Reply3Body::Fsstat(Fsstat3Res {
                    obj_attributes: Some(attrs(0)),
                    tbytes: 53 * 1_000_000_000,
                    ..Fsstat3Res::default()
                })),
            ),
            (
                Proc3::Fsinfo,
                Reply3::ok(Reply3Body::Fsinfo(Fsinfo3Res {
                    rtmax: 32768,
                    maxfilesize: u64::MAX,
                    ..Fsinfo3Res::default()
                })),
            ),
            (
                Proc3::Pathconf,
                Reply3::ok(Reply3Body::Pathconf(Pathconf3Res {
                    linkmax: 32767,
                    name_max: 255,
                    no_trunc: true,
                    ..Pathconf3Res::default()
                })),
            ),
            (
                Proc3::Commit,
                Reply3::ok(Reply3Body::Commit(Commit3Res { wcc, verf: [5; 8] })),
            ),
        ];
        for proc in [Proc3::Create, Proc3::Mkdir, Proc3::Symlink, Proc3::Mknod] {
            let res = Create3Res {
                obj: Some(FileHandle::from_u64(77)),
                obj_attributes: Some(attrs(0)),
                dir_wcc: wcc,
            };
            let body = match proc {
                Proc3::Create => Reply3Body::Create(res),
                Proc3::Mkdir => Reply3Body::Mkdir(res),
                Proc3::Symlink => Reply3Body::Symlink(res),
                _ => Reply3Body::Mknod(res),
            };
            samples.push((proc, Reply3::ok(body)));
        }
        // Error arms for every procedure, including ones whose error
        // encoding still carries attributes or wcc data.
        for proc in Proc3::ALL {
            samples.push((proc, Reply3::error(proc, NfsStat3::Stale)));
        }
        samples.push((
            Proc3::Read,
            Reply3 {
                status: NfsStat3::Io,
                body: Reply3Body::Read(Read3Res {
                    file_attributes: Some(attrs(512)),
                    ..Read3Res::default()
                }),
            },
        ));
        samples.push((
            Proc3::Write,
            Reply3 {
                status: NfsStat3::Io,
                body: Reply3Body::Write(Write3Res {
                    wcc,
                    ..Write3Res::default()
                }),
            },
        ));
        samples
    }

    #[test]
    fn facts_decode_matches_full_decode() {
        for (proc, reply) in sample_replies() {
            let bytes = reply.encode_results();
            let full = Reply3::decode(proc, &bytes).unwrap();
            let facts = ReplyFacts3::decode(proc, &bytes).unwrap();
            assert_eq!(facts, facts_of(&full), "{proc:?}");
        }
    }

    #[test]
    fn facts_decode_fails_exactly_when_full_decode_fails() {
        for (proc, reply) in sample_replies() {
            let bytes = reply.encode_results();
            for cut in 0..bytes.len() {
                let facts = ReplyFacts3::decode(proc, &bytes[..cut]);
                let full = Reply3::decode(proc, &bytes[..cut]);
                match (facts, full) {
                    (Ok(f), Ok(r)) => assert_eq!(f, facts_of(&r), "{proc:?} cut {cut}"),
                    (Err(fe), Err(re)) => assert_eq!(fe, re, "{proc:?} cut {cut}"),
                    (f, r) => panic!("{proc:?} cut {cut}: facts {f:?} vs full {r:?}"),
                }
            }
        }
    }

    /// `encode ∘ decode == id` over every one of the 22 v3 procedures'
    /// reply results (success and error arms both), plus the truncation
    /// sweep: any strict prefix of a canonical encoding either fails to
    /// decode or decodes to a value whose re-encoding is exactly that
    /// prefix. NULL is the one wire-degenerate procedure — its results
    /// are empty, so every decode is the void success reply.
    #[test]
    fn every_procedure_roundtrips_and_survives_truncation() {
        let replies = sample_replies();
        for proc in Proc3::ALL {
            assert!(
                replies.iter().any(|(p, _)| *p == proc),
                "{proc:?} has no reply sample"
            );
        }
        for (proc, reply) in replies {
            let bytes = reply.encode_results();
            let decoded = Reply3::decode(proc, &bytes).unwrap();
            if proc == Proc3::Null {
                assert!(bytes.is_empty(), "NULL results must be void");
                assert_eq!(decoded, Reply3::ok(Reply3Body::Null));
                continue;
            }
            assert_eq!(decoded, reply, "{proc:?}");
            for cut in 0..bytes.len() {
                if let Ok(got) = Reply3::decode(proc, &bytes[..cut]) {
                    assert_eq!(got.encode_results(), &bytes[..cut], "{proc:?} cut {cut}");
                }
            }
        }
    }
}
