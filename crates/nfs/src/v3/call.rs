//! NFSv3 call arguments for all 22 procedures.

use super::Proc3;
use crate::fh::FileHandle;
use crate::types::Sattr3;
use nfstrace_xdr::{Decoder, Encoder, Error, Pack, Result, Unpack};

/// `GETATTR`, `READLINK`, `FSSTAT`, `FSINFO`, `PATHCONF` take just a handle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FhArgs {
    /// The object.
    pub object: FileHandle,
}

/// `SETATTR` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Setattr3Args {
    /// The object.
    pub object: FileHandle,
    /// Attributes to set (a set `size` is a truncate/extend).
    pub new_attributes: Sattr3,
    /// Guard ctime: the set only applies if the object's ctime matches.
    pub guard_ctime: Option<crate::types::NfsTime3>,
}

/// `LOOKUP`, `REMOVE`, `RMDIR` arguments: a directory and a name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirOpArgs {
    /// The directory.
    pub dir: FileHandle,
    /// The name within the directory.
    pub name: String,
}

/// `ACCESS` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Access3Args {
    /// The object.
    pub object: FileHandle,
    /// Requested access bits (READ=0x1, LOOKUP=0x2, MODIFY=0x4,
    /// EXTEND=0x8, DELETE=0x10, EXECUTE=0x20).
    pub access: u32,
}

/// `READ` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Read3Args {
    /// The file.
    pub file: FileHandle,
    /// Starting byte offset.
    pub offset: u64,
    /// Bytes requested.
    pub count: u32,
}

/// How the server must commit a `WRITE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StableHow {
    /// May be cached.
    #[default]
    Unstable,
    /// Data must be on stable storage.
    DataSync,
    /// Data and metadata must be on stable storage.
    FileSync,
}

impl StableHow {
    fn as_u32(self) -> u32 {
        match self {
            StableHow::Unstable => 0,
            StableHow::DataSync => 1,
            StableHow::FileSync => 2,
        }
    }

    fn from_u32(v: u32) -> Result<Self> {
        Ok(match v {
            0 => StableHow::Unstable,
            1 => StableHow::DataSync,
            2 => StableHow::FileSync,
            other => {
                return Err(Error::InvalidDiscriminant {
                    what: "stable_how",
                    value: other,
                })
            }
        })
    }
}

/// `WRITE` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Write3Args {
    /// The file.
    pub file: FileHandle,
    /// Starting byte offset.
    pub offset: u64,
    /// Bytes in `data` the server should write.
    pub count: u32,
    /// Commitment level.
    pub stable: StableHow,
    /// The data. In the simulator this is a zero-filled buffer of the
    /// right length so wire sizes are faithful.
    pub data: Vec<u8>,
}

/// How `CREATE` treats an existing file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CreateHow {
    /// Create or truncate, applying the attributes.
    #[default]
    Unchecked,
    /// Fail if the name exists.
    Guarded,
    /// Exclusive create keyed by an 8-byte verifier.
    Exclusive([u8; 8]),
}

/// `CREATE` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Create3Args {
    /// Where to create.
    pub where_: DirOpArgs,
    /// Creation semantics.
    pub how: CreateHow,
    /// Initial attributes (unchecked/guarded modes).
    pub attributes: Sattr3,
}

/// `MKDIR` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Mkdir3Args {
    /// Where to create.
    pub where_: DirOpArgs,
    /// Initial attributes.
    pub attributes: Sattr3,
}

/// `SYMLINK` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Symlink3Args {
    /// Where to create.
    pub where_: DirOpArgs,
    /// Attributes of the link itself.
    pub attributes: Sattr3,
    /// Link target path.
    pub target: String,
}

/// `MKNOD` arguments (device nodes reduced to their type + attrs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Mknod3Args {
    /// Where to create.
    pub where_: DirOpArgs,
    /// Node type (as `ftype3` wire value).
    pub node_type: u32,
    /// Attributes.
    pub attributes: Sattr3,
}

/// `RENAME` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Rename3Args {
    /// Source directory and name.
    pub from: DirOpArgs,
    /// Destination directory and name.
    pub to: DirOpArgs,
}

/// `LINK` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Link3Args {
    /// Existing file.
    pub file: FileHandle,
    /// New directory entry to create.
    pub link: DirOpArgs,
}

/// `READDIR` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Readdir3Args {
    /// The directory.
    pub dir: FileHandle,
    /// Resume cookie (0 to start).
    pub cookie: u64,
    /// Cookie verifier from a previous call.
    pub cookieverf: [u8; 8],
    /// Maximum reply size in bytes.
    pub count: u32,
}

/// `READDIRPLUS` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Readdirplus3Args {
    /// The directory.
    pub dir: FileHandle,
    /// Resume cookie.
    pub cookie: u64,
    /// Cookie verifier.
    pub cookieverf: [u8; 8],
    /// Maximum bytes of directory information.
    pub dircount: u32,
    /// Maximum total reply size.
    pub maxcount: u32,
}

/// `COMMIT` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Commit3Args {
    /// The file.
    pub file: FileHandle,
    /// Start of the range to commit.
    pub offset: u64,
    /// Length of the range (0 = to end).
    pub count: u32,
}

/// A decoded NFSv3 call: one variant per procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call3 {
    /// NULL ping.
    Null,
    /// Get attributes.
    Getattr(FhArgs),
    /// Set attributes.
    Setattr(Setattr3Args),
    /// Name lookup.
    Lookup(DirOpArgs),
    /// Access check.
    Access(Access3Args),
    /// Read symlink target.
    Readlink(FhArgs),
    /// Read file data.
    Read(Read3Args),
    /// Write file data.
    Write(Write3Args),
    /// Create file.
    Create(Create3Args),
    /// Create directory.
    Mkdir(Mkdir3Args),
    /// Create symlink.
    Symlink(Symlink3Args),
    /// Create special node.
    Mknod(Mknod3Args),
    /// Remove file.
    Remove(DirOpArgs),
    /// Remove directory.
    Rmdir(DirOpArgs),
    /// Rename.
    Rename(Rename3Args),
    /// Hard link.
    Link(Link3Args),
    /// Read directory.
    Readdir(Readdir3Args),
    /// Read directory plus attributes.
    Readdirplus(Readdirplus3Args),
    /// File system statistics.
    Fsstat(FhArgs),
    /// File system information.
    Fsinfo(FhArgs),
    /// Pathconf information.
    Pathconf(FhArgs),
    /// Commit written data.
    Commit(Commit3Args),
}

impl Call3 {
    /// The procedure this call invokes.
    pub fn proc(&self) -> Proc3 {
        match self {
            Call3::Null => Proc3::Null,
            Call3::Getattr(_) => Proc3::Getattr,
            Call3::Setattr(_) => Proc3::Setattr,
            Call3::Lookup(_) => Proc3::Lookup,
            Call3::Access(_) => Proc3::Access,
            Call3::Readlink(_) => Proc3::Readlink,
            Call3::Read(_) => Proc3::Read,
            Call3::Write(_) => Proc3::Write,
            Call3::Create(_) => Proc3::Create,
            Call3::Mkdir(_) => Proc3::Mkdir,
            Call3::Symlink(_) => Proc3::Symlink,
            Call3::Mknod(_) => Proc3::Mknod,
            Call3::Remove(_) => Proc3::Remove,
            Call3::Rmdir(_) => Proc3::Rmdir,
            Call3::Rename(_) => Proc3::Rename,
            Call3::Link(_) => Proc3::Link,
            Call3::Readdir(_) => Proc3::Readdir,
            Call3::Readdirplus(_) => Proc3::Readdirplus,
            Call3::Fsstat(_) => Proc3::Fsstat,
            Call3::Fsinfo(_) => Proc3::Fsinfo,
            Call3::Pathconf(_) => Proc3::Pathconf,
            Call3::Commit(_) => Proc3::Commit,
        }
    }

    /// Encodes the procedure arguments (the RPC call body's args field).
    pub fn encode_args(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Call3::Null => {}
            Call3::Getattr(a)
            | Call3::Readlink(a)
            | Call3::Fsstat(a)
            | Call3::Fsinfo(a)
            | Call3::Pathconf(a) => a.object.pack(&mut enc),
            Call3::Setattr(a) => {
                a.object.pack(&mut enc);
                a.new_attributes.pack(&mut enc);
                a.guard_ctime.pack(&mut enc);
            }
            Call3::Lookup(a) | Call3::Remove(a) | Call3::Rmdir(a) => {
                a.dir.pack(&mut enc);
                enc.put_string(&a.name);
            }
            Call3::Access(a) => {
                a.object.pack(&mut enc);
                enc.put_u32(a.access);
            }
            Call3::Read(a) => {
                a.file.pack(&mut enc);
                enc.put_u64(a.offset);
                enc.put_u32(a.count);
            }
            Call3::Write(a) => {
                a.file.pack(&mut enc);
                enc.put_u64(a.offset);
                enc.put_u32(a.count);
                enc.put_u32(a.stable.as_u32());
                enc.put_opaque_var(&a.data);
            }
            Call3::Create(a) => {
                a.where_.dir.pack(&mut enc);
                enc.put_string(&a.where_.name);
                match &a.how {
                    CreateHow::Unchecked => {
                        enc.put_u32(0);
                        a.attributes.pack(&mut enc);
                    }
                    CreateHow::Guarded => {
                        enc.put_u32(1);
                        a.attributes.pack(&mut enc);
                    }
                    CreateHow::Exclusive(verf) => {
                        enc.put_u32(2);
                        enc.put_opaque_fixed(verf);
                    }
                }
            }
            Call3::Mkdir(a) => {
                a.where_.dir.pack(&mut enc);
                enc.put_string(&a.where_.name);
                a.attributes.pack(&mut enc);
            }
            Call3::Symlink(a) => {
                a.where_.dir.pack(&mut enc);
                enc.put_string(&a.where_.name);
                a.attributes.pack(&mut enc);
                enc.put_string(&a.target);
            }
            Call3::Mknod(a) => {
                a.where_.dir.pack(&mut enc);
                enc.put_string(&a.where_.name);
                enc.put_u32(a.node_type);
                a.attributes.pack(&mut enc);
            }
            Call3::Rename(a) => {
                a.from.dir.pack(&mut enc);
                enc.put_string(&a.from.name);
                a.to.dir.pack(&mut enc);
                enc.put_string(&a.to.name);
            }
            Call3::Link(a) => {
                a.file.pack(&mut enc);
                a.link.dir.pack(&mut enc);
                enc.put_string(&a.link.name);
            }
            Call3::Readdir(a) => {
                a.dir.pack(&mut enc);
                enc.put_u64(a.cookie);
                enc.put_opaque_fixed(&a.cookieverf);
                enc.put_u32(a.count);
            }
            Call3::Readdirplus(a) => {
                a.dir.pack(&mut enc);
                enc.put_u64(a.cookie);
                enc.put_opaque_fixed(&a.cookieverf);
                enc.put_u32(a.dircount);
                enc.put_u32(a.maxcount);
            }
            Call3::Commit(a) => {
                a.file.pack(&mut enc);
                enc.put_u64(a.offset);
                enc.put_u32(a.count);
            }
        }
        enc.into_bytes()
    }

    /// Decodes call arguments for `proc` from raw XDR bytes.
    ///
    /// Implemented as [`Call3View::decode`] plus one materializing copy,
    /// so the owned and borrowed decoders accept identical wire forms.
    ///
    /// # Errors
    ///
    /// Any XDR decode error for malformed arguments.
    pub fn decode(proc: Proc3, args: &[u8]) -> Result<Self> {
        Call3View::decode(proc, args).map(|v| v.to_owned())
    }
}

/// `LOOKUP`/`REMOVE`/`RMDIR`-style directory+name arguments with the
/// name borrowed from the record buffer: the view form of [`DirOpArgs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOpView<'a> {
    /// The directory.
    pub dir: FileHandle,
    /// The name within the directory, borrowed from the record buffer.
    pub name: &'a str,
}

impl DirOpView<'_> {
    /// Copies into an owned [`DirOpArgs`].
    pub fn to_owned(&self) -> DirOpArgs {
        DirOpArgs {
            dir: self.dir.clone(),
            name: self.name.to_owned(),
        }
    }
}

/// `WRITE` arguments with the data borrowed: the view form of
/// [`Write3Args`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Write3View<'a> {
    /// The file.
    pub file: FileHandle,
    /// Starting byte offset.
    pub offset: u64,
    /// Bytes in `data` the server should write.
    pub count: u32,
    /// Commitment level.
    pub stable: StableHow,
    /// The data, borrowed from the record buffer.
    pub data: &'a [u8],
}

/// `SYMLINK` arguments with name and target borrowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symlink3View<'a> {
    /// Where to create.
    pub where_: DirOpView<'a>,
    /// Attributes of the link itself.
    pub attributes: Sattr3,
    /// Link target path, borrowed from the record buffer.
    pub target: &'a str,
}

/// A decoded NFSv3 call with every variable-length field (names, symlink
/// targets, write data) borrowed from the record buffer: the zero-copy
/// counterpart of [`Call3`].
///
/// Heap-free argument structs ([`FhArgs`], [`Read3Args`], …) are shared
/// with the owned enum; only name- or data-carrying procedures get view
/// structs. The decode logic lives here — [`Call3::decode`] is this plus
/// [`Call3View::to_owned`] — so the two cannot drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call3View<'a> {
    /// NULL ping.
    Null,
    /// Get attributes.
    Getattr(FhArgs),
    /// Set attributes.
    Setattr(Setattr3Args),
    /// Name lookup.
    Lookup(DirOpView<'a>),
    /// Access check.
    Access(Access3Args),
    /// Read symlink target.
    Readlink(FhArgs),
    /// Read file data.
    Read(Read3Args),
    /// Write file data.
    Write(Write3View<'a>),
    /// Create file.
    Create {
        /// Where to create.
        where_: DirOpView<'a>,
        /// Creation semantics.
        how: CreateHow,
        /// Initial attributes (unchecked/guarded modes).
        attributes: Sattr3,
    },
    /// Create directory.
    Mkdir {
        /// Where to create.
        where_: DirOpView<'a>,
        /// Initial attributes.
        attributes: Sattr3,
    },
    /// Create symlink.
    Symlink(Symlink3View<'a>),
    /// Create special node.
    Mknod {
        /// Where to create.
        where_: DirOpView<'a>,
        /// Node type (as `ftype3` wire value).
        node_type: u32,
        /// Attributes.
        attributes: Sattr3,
    },
    /// Remove file.
    Remove(DirOpView<'a>),
    /// Remove directory.
    Rmdir(DirOpView<'a>),
    /// Rename.
    Rename {
        /// Source directory and name.
        from: DirOpView<'a>,
        /// Destination directory and name.
        to: DirOpView<'a>,
    },
    /// Hard link.
    Link {
        /// Existing file.
        file: FileHandle,
        /// New directory entry to create.
        link: DirOpView<'a>,
    },
    /// Read directory.
    Readdir(Readdir3Args),
    /// Read directory plus attributes.
    Readdirplus(Readdirplus3Args),
    /// File system statistics.
    Fsstat(FhArgs),
    /// File system information.
    Fsinfo(FhArgs),
    /// Pathconf information.
    Pathconf(FhArgs),
    /// Commit written data.
    Commit(Commit3Args),
}

impl<'a> Call3View<'a> {
    /// Decodes call arguments for `proc` without copying any
    /// variable-length field.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Call3::decode`].
    pub fn decode(proc: Proc3, args: &'a [u8]) -> Result<Self> {
        let mut dec = Decoder::new(args);
        let call = match proc {
            Proc3::Null => Call3View::Null,
            Proc3::Getattr => Call3View::Getattr(FhArgs {
                object: FileHandle::unpack(&mut dec)?,
            }),
            Proc3::Setattr => Call3View::Setattr(Setattr3Args {
                object: FileHandle::unpack(&mut dec)?,
                new_attributes: Sattr3::unpack(&mut dec)?,
                guard_ctime: Option::unpack(&mut dec)?,
            }),
            Proc3::Lookup => Call3View::Lookup(Self::dir_op(&mut dec)?),
            Proc3::Access => Call3View::Access(Access3Args {
                object: FileHandle::unpack(&mut dec)?,
                access: dec.get_u32()?,
            }),
            Proc3::Readlink => Call3View::Readlink(FhArgs {
                object: FileHandle::unpack(&mut dec)?,
            }),
            Proc3::Read => Call3View::Read(Read3Args {
                file: FileHandle::unpack(&mut dec)?,
                offset: dec.get_u64()?,
                count: dec.get_u32()?,
            }),
            Proc3::Write => {
                let file = FileHandle::unpack(&mut dec)?;
                let offset = dec.get_u64()?;
                let count = dec.get_u32()?;
                let stable = StableHow::from_u32(dec.get_u32()?)?;
                let data = dec.get_opaque_var_ref()?;
                Call3View::Write(Write3View {
                    file,
                    offset,
                    count,
                    stable,
                    data,
                })
            }
            Proc3::Create => {
                let where_ = Self::dir_op(&mut dec)?;
                let mode = dec.get_u32()?;
                let (how, attributes) = match mode {
                    0 => (CreateHow::Unchecked, Sattr3::unpack(&mut dec)?),
                    1 => (CreateHow::Guarded, Sattr3::unpack(&mut dec)?),
                    2 => {
                        let v = dec.get_opaque_fixed_ref(8)?;
                        let mut verf = [0u8; 8];
                        verf.copy_from_slice(v);
                        (CreateHow::Exclusive(verf), Sattr3::default())
                    }
                    other => {
                        return Err(Error::InvalidDiscriminant {
                            what: "createmode3",
                            value: other,
                        })
                    }
                };
                Call3View::Create {
                    where_,
                    how,
                    attributes,
                }
            }
            Proc3::Mkdir => Call3View::Mkdir {
                where_: Self::dir_op(&mut dec)?,
                attributes: Sattr3::unpack(&mut dec)?,
            },
            Proc3::Symlink => Call3View::Symlink(Symlink3View {
                where_: Self::dir_op(&mut dec)?,
                attributes: Sattr3::unpack(&mut dec)?,
                target: dec.get_str_ref()?,
            }),
            Proc3::Mknod => Call3View::Mknod {
                where_: Self::dir_op(&mut dec)?,
                node_type: dec.get_u32()?,
                attributes: Sattr3::unpack(&mut dec)?,
            },
            Proc3::Remove => Call3View::Remove(Self::dir_op(&mut dec)?),
            Proc3::Rmdir => Call3View::Rmdir(Self::dir_op(&mut dec)?),
            Proc3::Rename => Call3View::Rename {
                from: Self::dir_op(&mut dec)?,
                to: Self::dir_op(&mut dec)?,
            },
            Proc3::Link => Call3View::Link {
                file: FileHandle::unpack(&mut dec)?,
                link: Self::dir_op(&mut dec)?,
            },
            Proc3::Readdir => {
                let dir = FileHandle::unpack(&mut dec)?;
                let cookie = dec.get_u64()?;
                let v = dec.get_opaque_fixed_ref(8)?;
                let mut cookieverf = [0u8; 8];
                cookieverf.copy_from_slice(v);
                Call3View::Readdir(Readdir3Args {
                    dir,
                    cookie,
                    cookieverf,
                    count: dec.get_u32()?,
                })
            }
            Proc3::Readdirplus => {
                let dir = FileHandle::unpack(&mut dec)?;
                let cookie = dec.get_u64()?;
                let v = dec.get_opaque_fixed_ref(8)?;
                let mut cookieverf = [0u8; 8];
                cookieverf.copy_from_slice(v);
                Call3View::Readdirplus(Readdirplus3Args {
                    dir,
                    cookie,
                    cookieverf,
                    dircount: dec.get_u32()?,
                    maxcount: dec.get_u32()?,
                })
            }
            Proc3::Fsstat => Call3View::Fsstat(FhArgs {
                object: FileHandle::unpack(&mut dec)?,
            }),
            Proc3::Fsinfo => Call3View::Fsinfo(FhArgs {
                object: FileHandle::unpack(&mut dec)?,
            }),
            Proc3::Pathconf => Call3View::Pathconf(FhArgs {
                object: FileHandle::unpack(&mut dec)?,
            }),
            Proc3::Commit => Call3View::Commit(Commit3Args {
                file: FileHandle::unpack(&mut dec)?,
                offset: dec.get_u64()?,
                count: dec.get_u32()?,
            }),
        };
        Ok(call)
    }

    /// The procedure this call invokes.
    pub fn proc(&self) -> Proc3 {
        match self {
            Call3View::Null => Proc3::Null,
            Call3View::Getattr(_) => Proc3::Getattr,
            Call3View::Setattr(_) => Proc3::Setattr,
            Call3View::Lookup(_) => Proc3::Lookup,
            Call3View::Access(_) => Proc3::Access,
            Call3View::Readlink(_) => Proc3::Readlink,
            Call3View::Read(_) => Proc3::Read,
            Call3View::Write(_) => Proc3::Write,
            Call3View::Create { .. } => Proc3::Create,
            Call3View::Mkdir { .. } => Proc3::Mkdir,
            Call3View::Symlink(_) => Proc3::Symlink,
            Call3View::Mknod { .. } => Proc3::Mknod,
            Call3View::Remove(_) => Proc3::Remove,
            Call3View::Rmdir(_) => Proc3::Rmdir,
            Call3View::Rename { .. } => Proc3::Rename,
            Call3View::Link { .. } => Proc3::Link,
            Call3View::Readdir(_) => Proc3::Readdir,
            Call3View::Readdirplus(_) => Proc3::Readdirplus,
            Call3View::Fsstat(_) => Proc3::Fsstat,
            Call3View::Fsinfo(_) => Proc3::Fsinfo,
            Call3View::Pathconf(_) => Proc3::Pathconf,
            Call3View::Commit(_) => Proc3::Commit,
        }
    }

    /// Copies into an owned [`Call3`]: the single materialization the
    /// owned decoder performs.
    pub fn to_owned(&self) -> Call3 {
        match self {
            Call3View::Null => Call3::Null,
            Call3View::Getattr(a) => Call3::Getattr(a.clone()),
            Call3View::Setattr(a) => Call3::Setattr(a.clone()),
            Call3View::Lookup(a) => Call3::Lookup(a.to_owned()),
            Call3View::Access(a) => Call3::Access(a.clone()),
            Call3View::Readlink(a) => Call3::Readlink(a.clone()),
            Call3View::Read(a) => Call3::Read(a.clone()),
            Call3View::Write(a) => Call3::Write(Write3Args {
                file: a.file.clone(),
                offset: a.offset,
                count: a.count,
                stable: a.stable,
                data: a.data.to_vec(),
            }),
            Call3View::Create {
                where_,
                how,
                attributes,
            } => Call3::Create(Create3Args {
                where_: where_.to_owned(),
                how: how.clone(),
                attributes: *attributes,
            }),
            Call3View::Mkdir { where_, attributes } => Call3::Mkdir(Mkdir3Args {
                where_: where_.to_owned(),
                attributes: *attributes,
            }),
            Call3View::Symlink(a) => Call3::Symlink(Symlink3Args {
                where_: a.where_.to_owned(),
                attributes: a.attributes,
                target: a.target.to_owned(),
            }),
            Call3View::Mknod {
                where_,
                node_type,
                attributes,
            } => Call3::Mknod(Mknod3Args {
                where_: where_.to_owned(),
                node_type: *node_type,
                attributes: *attributes,
            }),
            Call3View::Remove(a) => Call3::Remove(a.to_owned()),
            Call3View::Rmdir(a) => Call3::Rmdir(a.to_owned()),
            Call3View::Rename { from, to } => Call3::Rename(Rename3Args {
                from: from.to_owned(),
                to: to.to_owned(),
            }),
            Call3View::Link { file, link } => Call3::Link(Link3Args {
                file: file.clone(),
                link: link.to_owned(),
            }),
            Call3View::Readdir(a) => Call3::Readdir(a.clone()),
            Call3View::Readdirplus(a) => Call3::Readdirplus(a.clone()),
            Call3View::Fsstat(a) => Call3::Fsstat(a.clone()),
            Call3View::Fsinfo(a) => Call3::Fsinfo(a.clone()),
            Call3View::Pathconf(a) => Call3::Pathconf(a.clone()),
            Call3View::Commit(a) => Call3::Commit(a.clone()),
        }
    }

    fn dir_op(dec: &mut Decoder<'a>) -> Result<DirOpView<'a>> {
        Ok(DirOpView {
            dir: FileHandle::unpack(dec)?,
            name: dec.get_str_ref()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(call: Call3) {
        let bytes = call.encode_args();
        let got = Call3::decode(call.proc(), &bytes).unwrap();
        assert_eq!(got, call);
    }

    #[test]
    fn null_roundtrip() {
        roundtrip(Call3::Null);
    }

    #[test]
    fn getattr_roundtrip() {
        roundtrip(Call3::Getattr(FhArgs {
            object: FileHandle::from_u64(1),
        }));
    }

    #[test]
    fn setattr_truncate_roundtrip() {
        roundtrip(Call3::Setattr(Setattr3Args {
            object: FileHandle::from_u64(2),
            new_attributes: Sattr3 {
                size: Some(0),
                ..Sattr3::default()
            },
            guard_ctime: None,
        }));
    }

    #[test]
    fn lookup_roundtrip() {
        roundtrip(Call3::Lookup(DirOpArgs {
            dir: FileHandle::from_u64(3),
            name: ".pinerc".to_string(),
        }));
    }

    #[test]
    fn read_write_roundtrip() {
        roundtrip(Call3::Read(Read3Args {
            file: FileHandle::from_u64(4),
            offset: 65536,
            count: 8192,
        }));
        roundtrip(Call3::Write(Write3Args {
            file: FileHandle::from_u64(5),
            offset: 1 << 20,
            count: 5,
            stable: StableHow::FileSync,
            data: vec![1, 2, 3, 4, 5],
        }));
    }

    #[test]
    fn create_all_modes_roundtrip() {
        for how in [
            CreateHow::Unchecked,
            CreateHow::Guarded,
            CreateHow::Exclusive([9; 8]),
        ] {
            roundtrip(Call3::Create(Create3Args {
                where_: DirOpArgs {
                    dir: FileHandle::from_u64(6),
                    name: "inbox.lock".to_string(),
                },
                how,
                attributes: Sattr3::default(),
            }));
        }
    }

    #[test]
    fn namespace_ops_roundtrip() {
        roundtrip(Call3::Remove(DirOpArgs {
            dir: FileHandle::from_u64(7),
            name: "Applet_7_Extern".to_string(),
        }));
        roundtrip(Call3::Rename(Rename3Args {
            from: DirOpArgs {
                dir: FileHandle::from_u64(8),
                name: "mbox.tmp".to_string(),
            },
            to: DirOpArgs {
                dir: FileHandle::from_u64(8),
                name: "mbox".to_string(),
            },
        }));
        roundtrip(Call3::Link(Link3Args {
            file: FileHandle::from_u64(9),
            link: DirOpArgs {
                dir: FileHandle::from_u64(10),
                name: "hardlink".to_string(),
            },
        }));
        roundtrip(Call3::Symlink(Symlink3Args {
            where_: DirOpArgs {
                dir: FileHandle::from_u64(11),
                name: "sym".to_string(),
            },
            attributes: Sattr3::default(),
            target: "../target/path".to_string(),
        }));
        roundtrip(Call3::Mkdir(Mkdir3Args {
            where_: DirOpArgs {
                dir: FileHandle::from_u64(12),
                name: "CVS".to_string(),
            },
            attributes: Sattr3 {
                mode: Some(0o755),
                ..Sattr3::default()
            },
        }));
        roundtrip(Call3::Mknod(Mknod3Args {
            where_: DirOpArgs {
                dir: FileHandle::from_u64(13),
                name: "fifo".to_string(),
            },
            node_type: 7,
            attributes: Sattr3::default(),
        }));
    }

    #[test]
    fn readdir_variants_roundtrip() {
        roundtrip(Call3::Readdir(Readdir3Args {
            dir: FileHandle::from_u64(14),
            cookie: 77,
            cookieverf: [1; 8],
            count: 4096,
        }));
        roundtrip(Call3::Readdirplus(Readdirplus3Args {
            dir: FileHandle::from_u64(15),
            cookie: 0,
            cookieverf: [0; 8],
            dircount: 1024,
            maxcount: 8192,
        }));
    }

    #[test]
    fn fs_info_ops_roundtrip() {
        for call in [
            Call3::Fsstat(FhArgs {
                object: FileHandle::from_u64(16),
            }),
            Call3::Fsinfo(FhArgs {
                object: FileHandle::from_u64(17),
            }),
            Call3::Pathconf(FhArgs {
                object: FileHandle::from_u64(18),
            }),
            Call3::Commit(Commit3Args {
                file: FileHandle::from_u64(19),
                offset: 0,
                count: 0,
            }),
            Call3::Access(Access3Args {
                object: FileHandle::from_u64(20),
                access: 0x3f,
            }),
            Call3::Readlink(FhArgs {
                object: FileHandle::from_u64(21),
            }),
        ] {
            roundtrip(call);
        }
    }

    #[test]
    fn truncated_args_error() {
        assert!(Call3::decode(Proc3::Read, &[0, 0, 0, 1]).is_err());
    }

    fn sample_calls() -> Vec<Call3> {
        vec![
            Call3::Null,
            Call3::Getattr(FhArgs {
                object: FileHandle::from_u64(1),
            }),
            Call3::Setattr(Setattr3Args {
                object: FileHandle::from_u64(2),
                new_attributes: Sattr3 {
                    size: Some(1 << 33),
                    mode: Some(0o644),
                    ..Sattr3::default()
                },
                guard_ctime: None,
            }),
            Call3::Lookup(DirOpArgs {
                dir: FileHandle::from_u64(3),
                name: ".pinerc".to_string(),
            }),
            Call3::Access(Access3Args {
                object: FileHandle::from_u64(4),
                access: 0x1f,
            }),
            Call3::Readlink(FhArgs {
                object: FileHandle::from_u64(5),
            }),
            Call3::Read(Read3Args {
                file: FileHandle::from_u64(6),
                offset: 1 << 32,
                count: 32768,
            }),
            Call3::Write(Write3Args {
                file: FileHandle::from_u64(7),
                offset: 0,
                count: 3,
                stable: StableHow::Unstable,
                data: vec![9, 9, 9],
            }),
            Call3::Create(Create3Args {
                where_: DirOpArgs {
                    dir: FileHandle::from_u64(8),
                    name: "inbox.lock".to_string(),
                },
                how: CreateHow::Exclusive([7; 8]),
                attributes: Sattr3::default(),
            }),
            Call3::Mkdir(Mkdir3Args {
                where_: DirOpArgs {
                    dir: FileHandle::from_u64(9),
                    name: "CVS".to_string(),
                },
                attributes: Sattr3::default(),
            }),
            Call3::Symlink(Symlink3Args {
                where_: DirOpArgs {
                    dir: FileHandle::from_u64(10),
                    name: "sym".to_string(),
                },
                attributes: Sattr3::default(),
                target: "../elsewhere".to_string(),
            }),
            Call3::Mknod(Mknod3Args {
                where_: DirOpArgs {
                    dir: FileHandle::from_u64(11),
                    name: "fifo".to_string(),
                },
                node_type: 7,
                attributes: Sattr3::default(),
            }),
            Call3::Remove(DirOpArgs {
                dir: FileHandle::from_u64(12),
                name: "core".to_string(),
            }),
            Call3::Rmdir(DirOpArgs {
                dir: FileHandle::from_u64(13),
                name: "tmp".to_string(),
            }),
            Call3::Rename(Rename3Args {
                from: DirOpArgs {
                    dir: FileHandle::from_u64(14),
                    name: "mbox.tmp".to_string(),
                },
                to: DirOpArgs {
                    dir: FileHandle::from_u64(15),
                    name: "mbox".to_string(),
                },
            }),
            Call3::Link(Link3Args {
                file: FileHandle::from_u64(16),
                link: DirOpArgs {
                    dir: FileHandle::from_u64(17),
                    name: "hardlink".to_string(),
                },
            }),
            Call3::Readdir(Readdir3Args {
                dir: FileHandle::from_u64(18),
                cookie: 77,
                cookieverf: [1; 8],
                count: 4096,
            }),
            Call3::Readdirplus(Readdirplus3Args {
                dir: FileHandle::from_u64(19),
                cookie: 0,
                cookieverf: [0; 8],
                dircount: 1024,
                maxcount: 8192,
            }),
            Call3::Fsstat(FhArgs {
                object: FileHandle::from_u64(20),
            }),
            Call3::Fsinfo(FhArgs {
                object: FileHandle::from_u64(21),
            }),
            Call3::Pathconf(FhArgs {
                object: FileHandle::from_u64(22),
            }),
            Call3::Commit(Commit3Args {
                file: FileHandle::from_u64(23),
                offset: 4096,
                count: 65536,
            }),
        ]
    }

    /// `encode ∘ decode == id` over every one of the 22 v3 procedures'
    /// call arguments, plus the truncation sweep: any strict prefix of
    /// a canonical encoding either fails to decode or decodes to a
    /// value whose re-encoding is exactly that prefix.
    #[test]
    fn every_procedure_roundtrips_and_survives_truncation() {
        let calls = sample_calls();
        for proc in Proc3::ALL {
            assert!(
                calls.iter().any(|c| c.proc() == proc),
                "{proc:?} has no call sample"
            );
        }
        for call in calls {
            let proc = call.proc();
            let bytes = call.encode_args();
            assert_eq!(Call3::decode(proc, &bytes).unwrap(), call, "{proc:?}");
            for cut in 0..bytes.len() {
                if let Ok(got) = Call3::decode(proc, &bytes[..cut]) {
                    assert_eq!(got.encode_args(), &bytes[..cut], "{proc:?} cut {cut}");
                }
            }
        }
    }
}
