//! NFS version 3 (RFC 1813): procedures, arguments, and results.
//!
//! Every CAMPUS client spoke NFSv3 over TCP, and most EECS clients spoke
//! NFSv3 over UDP (paper §3). All 22 procedures are implemented with
//! full wire codecs.

mod call;
mod reply;

pub use call::*;
pub use reply::*;

use nfstrace_xdr::Error;

/// NFSv3 procedure numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u32)]
pub enum Proc3 {
    /// Do nothing (ping).
    Null = 0,
    /// Get file attributes.
    Getattr = 1,
    /// Set file attributes.
    Setattr = 2,
    /// Look up a name in a directory.
    Lookup = 3,
    /// Check access permission.
    Access = 4,
    /// Read a symbolic link.
    Readlink = 5,
    /// Read from a file.
    Read = 6,
    /// Write to a file.
    Write = 7,
    /// Create a file.
    Create = 8,
    /// Create a directory.
    Mkdir = 9,
    /// Create a symbolic link.
    Symlink = 10,
    /// Create a special node.
    Mknod = 11,
    /// Remove a file.
    Remove = 12,
    /// Remove a directory.
    Rmdir = 13,
    /// Rename a file or directory.
    Rename = 14,
    /// Create a hard link.
    Link = 15,
    /// Read a directory.
    Readdir = 16,
    /// Read a directory with attributes.
    Readdirplus = 17,
    /// Get file system statistics.
    Fsstat = 18,
    /// Get static file system info.
    Fsinfo = 19,
    /// Get POSIX pathconf info.
    Pathconf = 20,
    /// Commit cached writes to stable storage.
    Commit = 21,
}

impl Proc3 {
    /// All procedures in numeric order.
    pub const ALL: [Proc3; 22] = [
        Proc3::Null,
        Proc3::Getattr,
        Proc3::Setattr,
        Proc3::Lookup,
        Proc3::Access,
        Proc3::Readlink,
        Proc3::Read,
        Proc3::Write,
        Proc3::Create,
        Proc3::Mkdir,
        Proc3::Symlink,
        Proc3::Mknod,
        Proc3::Remove,
        Proc3::Rmdir,
        Proc3::Rename,
        Proc3::Link,
        Proc3::Readdir,
        Proc3::Readdirplus,
        Proc3::Fsstat,
        Proc3::Fsinfo,
        Proc3::Pathconf,
        Proc3::Commit,
    ];

    /// The wire procedure number.
    pub fn as_u32(self) -> u32 {
        self as u32
    }

    /// Parses a wire procedure number.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDiscriminant`] for numbers above 21.
    pub fn from_u32(v: u32) -> Result<Self, Error> {
        Proc3::ALL
            .get(v as usize)
            .copied()
            .ok_or(Error::InvalidDiscriminant {
                what: "nfsv3 procedure",
                value: v,
            })
    }

    /// The procedure's conventional upper-case name.
    pub fn name(self) -> &'static str {
        match self {
            Proc3::Null => "NULL",
            Proc3::Getattr => "GETATTR",
            Proc3::Setattr => "SETATTR",
            Proc3::Lookup => "LOOKUP",
            Proc3::Access => "ACCESS",
            Proc3::Readlink => "READLINK",
            Proc3::Read => "READ",
            Proc3::Write => "WRITE",
            Proc3::Create => "CREATE",
            Proc3::Mkdir => "MKDIR",
            Proc3::Symlink => "SYMLINK",
            Proc3::Mknod => "MKNOD",
            Proc3::Remove => "REMOVE",
            Proc3::Rmdir => "RMDIR",
            Proc3::Rename => "RENAME",
            Proc3::Link => "LINK",
            Proc3::Readdir => "READDIR",
            Proc3::Readdirplus => "READDIRPLUS",
            Proc3::Fsstat => "FSSTAT",
            Proc3::Fsinfo => "FSINFO",
            Proc3::Pathconf => "PATHCONF",
            Proc3::Commit => "COMMIT",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_numbers_match_rfc() {
        assert_eq!(Proc3::Getattr.as_u32(), 1);
        assert_eq!(Proc3::Read.as_u32(), 6);
        assert_eq!(Proc3::Write.as_u32(), 7);
        assert_eq!(Proc3::Commit.as_u32(), 21);
    }

    #[test]
    fn from_u32_roundtrip() {
        for p in Proc3::ALL {
            assert_eq!(Proc3::from_u32(p.as_u32()).unwrap(), p);
        }
        assert!(Proc3::from_u32(22).is_err());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Proc3::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22);
    }
}
