//! The paper's operation taxonomy.
//!
//! Table 1 contrasts the two systems as "Most NFS calls are for data"
//! (CAMPUS) versus "Most NFS calls are for metadata" (EECS), and §6.1.1
//! names `lookup`, `getattr`, and `access` as the attribute calls that
//! dominate EECS. This module gives every procedure of both protocol
//! versions a [`OpKind`] (read/write/other) and an [`OpClass`]
//! (data/metadata) so analyses can compute those ratios uniformly.

use crate::v2::Proc2;
use crate::v3::Proc3;

/// Read/write/other classification, used for read:write op ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Transfers file data to the client (READ).
    Read,
    /// Transfers file data to the server (WRITE).
    Write,
    /// Everything else.
    Other,
}

/// Data/metadata classification, used for the Table 1 characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Moves file contents (READ, WRITE, COMMIT).
    Data,
    /// Queries or updates names and attributes.
    Metadata,
}

/// Classifies an NFSv3 procedure as read/write/other.
pub fn kind_v3(proc: Proc3) -> OpKind {
    match proc {
        Proc3::Read => OpKind::Read,
        Proc3::Write => OpKind::Write,
        _ => OpKind::Other,
    }
}

/// Classifies an NFSv3 procedure as data or metadata.
pub fn class_v3(proc: Proc3) -> OpClass {
    match proc {
        Proc3::Read | Proc3::Write | Proc3::Commit => OpClass::Data,
        _ => OpClass::Metadata,
    }
}

/// Classifies an NFSv2 procedure as read/write/other.
pub fn kind_v2(proc: Proc2) -> OpKind {
    match proc {
        Proc2::Read => OpKind::Read,
        Proc2::Write => OpKind::Write,
        _ => OpKind::Other,
    }
}

/// Classifies an NFSv2 procedure as data or metadata.
pub fn class_v2(proc: Proc2) -> OpClass {
    match proc {
        Proc2::Read | Proc2::Write => OpClass::Data,
        _ => OpClass::Metadata,
    }
}

/// Whether an NFSv3 procedure is one of the "attribute calls" the paper
/// says dominate EECS: `lookup`, `getattr`, and `access` (§6.1.1).
pub fn is_attribute_call_v3(proc: Proc3) -> bool {
    matches!(proc, Proc3::Lookup | Proc3::Getattr | Proc3::Access)
}

/// NFSv2 analogue of [`is_attribute_call_v3`] (v2 has no ACCESS).
pub fn is_attribute_call_v2(proc: Proc2) -> bool {
    matches!(proc, Proc2::Lookup | Proc2::Getattr)
}

/// Whether an NFSv3 procedure modifies namespace or file state (used to
/// distinguish cache-validation traffic from mutation).
pub fn is_mutation_v3(proc: Proc3) -> bool {
    matches!(
        proc,
        Proc3::Setattr
            | Proc3::Write
            | Proc3::Create
            | Proc3::Mkdir
            | Proc3::Symlink
            | Proc3::Mknod
            | Proc3::Remove
            | Proc3::Rmdir
            | Proc3::Rename
            | Proc3::Link
            | Proc3::Commit
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v3_read_write_kinds() {
        assert_eq!(kind_v3(Proc3::Read), OpKind::Read);
        assert_eq!(kind_v3(Proc3::Write), OpKind::Write);
        assert_eq!(kind_v3(Proc3::Getattr), OpKind::Other);
    }

    #[test]
    fn v3_data_class_is_exactly_read_write_commit() {
        let data: Vec<Proc3> = Proc3::ALL
            .into_iter()
            .filter(|p| class_v3(*p) == OpClass::Data)
            .collect();
        assert_eq!(data, vec![Proc3::Read, Proc3::Write, Proc3::Commit]);
    }

    #[test]
    fn v2_data_class_is_exactly_read_write() {
        let data: Vec<Proc2> = Proc2::ALL
            .into_iter()
            .filter(|p| class_v2(*p) == OpClass::Data)
            .collect();
        assert_eq!(data, vec![Proc2::Read, Proc2::Write]);
    }

    #[test]
    fn attribute_calls_match_paper() {
        assert!(is_attribute_call_v3(Proc3::Lookup));
        assert!(is_attribute_call_v3(Proc3::Getattr));
        assert!(is_attribute_call_v3(Proc3::Access));
        assert!(!is_attribute_call_v3(Proc3::Read));
        assert!(is_attribute_call_v2(Proc2::Getattr));
        assert!(!is_attribute_call_v2(Proc2::Read));
    }

    #[test]
    fn mutations_exclude_reads() {
        assert!(is_mutation_v3(Proc3::Write));
        assert!(is_mutation_v3(Proc3::Remove));
        assert!(!is_mutation_v3(Proc3::Read));
        assert!(!is_mutation_v3(Proc3::Getattr));
    }
}
