//! Complete NFSv2 (RFC 1094) and NFSv3 (RFC 1813) protocol types.
//!
//! Both traced systems in the FAST 2003 paper spoke NFS: EECS clients
//! used a mix of NFSv2 and NFSv3 over UDP, CAMPUS used NFSv3 over TCP.
//! The tracer therefore "can handle any combination of NFSv2 and NFSv3,
//! TCP or UDP transport" (§2). This crate provides:
//!
//! - [`fh`]: file handles (fixed 32 bytes in v2, up to 64 variable in v3).
//! - [`types`]: attributes, times, status codes, and other shared types.
//! - [`v3`]: all 22 NFSv3 procedures with argument/result codecs.
//! - [`v2`]: all 18 NFSv2 procedures with argument/result codecs.
//! - [`taxonomy`]: the paper's data-vs-metadata operation classification.
//!
//! # Examples
//!
//! ```
//! use nfstrace_nfs::v3::{Call3, Read3Args};
//! use nfstrace_nfs::fh::FileHandle;
//!
//! let call = Call3::Read(Read3Args {
//!     file: FileHandle::from_u64(42),
//!     offset: 8192,
//!     count: 8192,
//! });
//! let bytes = call.encode_args();
//! let decoded = Call3::decode(call.proc(), &bytes).unwrap();
//! assert_eq!(decoded, call);
//! ```

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod fh;
pub mod taxonomy;
pub mod types;
pub mod v2;
pub mod v3;

pub use fh::FileHandle;
pub use taxonomy::{OpClass, OpKind};
pub use types::{Fattr3, Ftype3, NfsStat3, NfsTime3, Sattr3};
