//! NFS file handles.
//!
//! A file handle is an opaque server token naming a file. NFSv2 handles
//! are exactly 32 bytes; NFSv3 handles are variable up to 64 bytes. The
//! simulated server packs a 64-bit file id into its handles, and the
//! analysis layer treats handles as opaque identities, exactly as the
//! paper's tools do.

use nfstrace_xdr::{Decoder, Encoder, Error, Pack, Result, Unpack};
use std::fmt;

/// Fixed NFSv2 handle size.
pub const FHSIZE_V2: usize = 32;
/// Maximum NFSv3 handle size.
pub const FHSIZE_V3_MAX: usize = 64;

/// An opaque NFS file handle of at most 64 bytes.
///
/// # Examples
///
/// ```
/// use nfstrace_nfs::fh::FileHandle;
///
/// let fh = FileHandle::from_u64(1234);
/// assert_eq!(fh.as_u64(), Some(1234));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle {
    len: u8,
    data: [u8; FHSIZE_V3_MAX],
}

impl FileHandle {
    /// Creates a handle from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds 64 bytes; wire decoding validates length
    /// before calling this.
    pub fn new(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= FHSIZE_V3_MAX, "file handle too long");
        let mut data = [0u8; FHSIZE_V3_MAX];
        data[..bytes.len()].copy_from_slice(bytes);
        Self {
            len: bytes.len() as u8,
            data,
        }
    }

    /// A compact handle embedding a 64-bit file id, as the simulated
    /// server issues.
    pub fn from_u64(id: u64) -> Self {
        Self::new(&id.to_be_bytes())
    }

    /// Extracts the embedded file id if this is an 8-byte handle.
    pub fn as_u64(&self) -> Option<u64> {
        if self.len == 8 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.data[..8]);
            Some(u64::from_be_bytes(b))
        } else {
            None
        }
    }

    /// The handle bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..usize::from(self.len)]
    }

    /// Handle length in bytes.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether the handle is empty (never valid on the wire, but useful
    /// as a sentinel).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero-pads (or truncates) to the fixed 32-byte NFSv2 form.
    pub fn to_v2(&self) -> [u8; FHSIZE_V2] {
        let mut out = [0u8; FHSIZE_V2];
        let n = self.len().min(FHSIZE_V2);
        out[..n].copy_from_slice(&self.as_bytes()[..n]);
        out
    }

    /// Encodes as a fixed 32-byte NFSv2 handle.
    pub fn pack_v2(&self, enc: &mut Encoder) {
        enc.put_opaque_fixed(&self.to_v2());
    }

    /// Decodes a fixed 32-byte NFSv2 handle. Heap-free: the handle is an
    /// inline array filled straight from the decoder's view.
    ///
    /// # Errors
    ///
    /// XDR truncation errors.
    pub fn unpack_v2(dec: &mut Decoder<'_>) -> Result<Self> {
        let bytes = dec.get_opaque_fixed_ref(FHSIZE_V2)?;
        // v2 handles embedding a u64 id are zero-padded; strip the pad so
        // identities match across protocol versions.
        let mut end = bytes.len();
        while end > 8 && bytes[end - 1] == 0 {
            end -= 1;
        }
        Ok(Self::new(&bytes[..end.max(8)]))
    }
}

impl fmt::Debug for FileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FileHandle(")?;
        for b in self.as_bytes() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for FileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.as_bytes() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl Default for FileHandle {
    fn default() -> Self {
        Self::new(&[])
    }
}

/// NFSv3 variable-length encoding.
impl Pack for FileHandle {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_opaque_var(self.as_bytes());
    }
}

impl Unpack for FileHandle {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        // Heap-free: the handle is an inline array filled straight from
        // the decoder's borrowed view.
        let bytes = dec.get_opaque_var_ref()?;
        if bytes.len() > FHSIZE_V3_MAX {
            return Err(Error::LengthTooLarge {
                declared: bytes.len(),
                limit: FHSIZE_V3_MAX,
            });
        }
        Ok(Self::new(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let fh = FileHandle::from_u64(0xdead_beef_cafe_f00d);
        assert_eq!(fh.as_u64(), Some(0xdead_beef_cafe_f00d));
        assert_eq!(fh.len(), 8);
    }

    #[test]
    fn v3_wire_roundtrip() {
        let fh = FileHandle::from_u64(99);
        let got = FileHandle::from_xdr_bytes(&fh.to_xdr_bytes()).unwrap();
        assert_eq!(got, fh);
    }

    #[test]
    fn v2_wire_roundtrip_preserves_id() {
        let fh = FileHandle::from_u64(12345);
        let mut enc = Encoder::new();
        fh.pack_v2(&mut enc);
        let bytes = enc.into_bytes();
        assert_eq!(bytes.len(), FHSIZE_V2);
        let mut dec = Decoder::new(&bytes);
        let got = FileHandle::unpack_v2(&mut dec).unwrap();
        assert_eq!(got.as_u64(), Some(12345));
    }

    #[test]
    fn oversized_v3_handle_rejected() {
        let mut enc = Encoder::new();
        enc.put_opaque_var(&[1u8; 65]);
        assert!(FileHandle::from_xdr_bytes(&enc.into_bytes()).is_err());
    }

    #[test]
    fn display_is_hex() {
        let fh = FileHandle::new(&[0xab, 0xcd]);
        assert_eq!(fh.to_string(), "abcd");
        assert_eq!(format!("{fh:?}"), "FileHandle(abcd)");
    }

    #[test]
    fn default_is_empty_sentinel() {
        assert!(FileHandle::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "file handle too long")]
    fn new_panics_on_oversize() {
        let _ = FileHandle::new(&[0u8; 65]);
    }
}
