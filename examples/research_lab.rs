//! The EECS story (§6.1.1): a departmental filer dominated by
//! cache-validation metadata, where writes outnumber reads and most
//! blocks die within a second — log and object files churned by builds.
//!
//! Run with: `cargo run --release --example research_lab`

use nfstrace::core::lifetime::{analyze, LifetimeConfig};
use nfstrace::core::record::Op;
use nfstrace::core::summary::SummaryStats;
use nfstrace::core::time::{DAY, SECOND};
use nfstrace::workload::{EecsConfig, EecsWorkload};

fn main() {
    let records = EecsWorkload::new(EecsConfig {
        users: 10,
        duration_micros: 2 * DAY,
        seed: 31,
        ..EecsConfig::default()
    })
    .generate();

    let s = SummaryStats::from_records(records.iter());
    println!(
        "EECS-style research workload: {} ops over 2 days",
        s.total_ops
    );
    println!(
        "  metadata calls: {:.0}% of all calls (attribute calls alone: {:.0}%)",
        100.0 * (1.0 - s.data_fraction()),
        100.0 * s.attribute_ops as f64 / s.total_ops as f64
    );
    println!(
        "  write ops / read ops = {:.2} (writes dominate, unlike every pre-2000 study)",
        s.write_ops as f64 / s.read_ops.max(1) as f64
    );

    // Applet churn: the window-manager files of §5.2.2.
    let applets = records
        .iter()
        .filter(|r| {
            r.op == Op::Remove && r.name.as_deref().is_some_and(|n| n.starts_with("Applet_"))
        })
        .count();
    println!("  Applet_*_Extern deletions: {applets}");

    // Block lifetimes: the fast-death signature.
    let rep = analyze(
        records.iter(),
        LifetimeConfig {
            phase1_start: 0,
            phase1_len: DAY,
            phase2_len: DAY,
        },
    );
    let sub_second = rep.lifespans.iter().filter(|&&l| l < SECOND).count() as f64
        / rep.lifespans.len().max(1) as f64;
    println!(
        "  {:.0}% of dying blocks die within one second (paper: ~50%)",
        100.0 * sub_second
    );
    let deaths = rep.deaths_total().max(1) as f64;
    println!(
        "  death causes: overwrite {:.0}%, truncate {:.0}%, delete {:.0}%",
        100.0 * rep.deaths_overwrite as f64 / deaths,
        100.0 * rep.deaths_truncate as f64 / deaths,
        100.0 * rep.deaths_delete as f64 / deaths,
    );
}
