//! The CAMPUS story (§6.1.2): an email system whose file-grain client
//! caching turns every delivery into a multi-megabyte inbox re-read,
//! whose churn is almost entirely zero-length lock files, and whose
//! blocks die by overwriting after mail-session-length lifetimes.
//!
//! Run with: `cargo run --release --example email_server`

use nfstrace::core::lifetime::{analyze, figure3_probes, LifetimeConfig};
use nfstrace::core::names::{classify, FileCategory, NamePredictionReport};
use nfstrace::core::record::Op;
use nfstrace::core::summary::SummaryStats;
use nfstrace::core::time::{DAY, MINUTE, SECOND};
use nfstrace::workload::{CampusConfig, CampusWorkload};

fn main() {
    let records = CampusWorkload::new(CampusConfig {
        users: 12,
        duration_micros: 2 * DAY,
        seed: 21,
        ..CampusConfig::default()
    })
    .generate();

    let s = SummaryStats::from_records(records.iter());
    println!(
        "CAMPUS-style email workload: {} ops over 2 days",
        s.total_ops
    );
    println!(
        "  reads outnumber writes by {:.1}x (bytes)",
        s.rw_bytes_ratio()
    );
    println!("  {:.0}% of calls move data", 100.0 * s.data_fraction());

    // Where do the bytes go? Overwhelmingly mailboxes.
    let mailbox_reads: u64 = records
        .iter()
        .filter(|r| r.op == Op::Read && r.post_size.unwrap_or(0) > 100_000)
        .map(|r| u64::from(r.ret_count))
        .sum();
    println!(
        "  {:.0}% of read bytes come from large (mailbox-sized) files",
        100.0 * mailbox_reads as f64 / s.bytes_read.max(1) as f64
    );

    // Lock-file churn.
    let names = NamePredictionReport::from_records(records.iter());
    println!(
        "  {:.0}% of created+deleted files are locks",
        100.0 * names.lock_fraction_of_churn()
    );
    if let Some(locks) = names.by_category.get(&FileCategory::Lock) {
        if let Some(p999) = locks.lifetime_percentile(99.9) {
            println!(
                "  99.9% of lock files live under {:.2} s (paper: under 0.40 s)",
                p999 as f64 / 1e6
            );
        }
    }

    // Block lifetimes: most live 10+ minutes, dying by overwrite.
    let rep = analyze(
        records.iter(),
        LifetimeConfig {
            phase1_start: 0,
            phase1_len: DAY,
            phase2_len: DAY,
        },
    );
    let ow = 100.0 * rep.deaths_overwrite as f64 / rep.deaths_total().max(1) as f64;
    println!("  {ow:.0}% of block deaths are overwrites (paper: >99%)");
    for (probe, frac) in rep.cdf(&figure3_probes()) {
        if probe == SECOND || probe == 30 * MINUTE {
            println!(
                "  blocks dead within {:>6}: {:.0}%",
                if probe == SECOND { "1 s" } else { "30 min" },
                100.0 * frac
            );
        }
    }

    // Name-based prediction accuracy (§6.3).
    let sample = ["inbox", "inbox.lock", "snd.123", ".pinerc"];
    println!("\n  name classification: {:?}", sample.map(classify));
}
