//! The §6.4 server experiment: read-ahead driven by the sequentiality
//! metric beats a strictly-sequential detector once calls arrive
//! reordered.
//!
//! Run with: `cargo run --release --example readahead_tuning`

use nfstrace::fssim::readahead::{replay, MetricReadAhead, StrictSequential};
use nfstrace::fssim::{DiskModel, DiskParams};

fn main() {
    // A 64 MB sequential read stream in 32 KB requests.
    let stream: Vec<(u64, u64)> = (0..2048u64).map(|i| (i * 4, 4)).collect();

    // Swap ~10% of adjacent pairs, as a loaded NFS server observes.
    let mut reordered = stream.clone();
    let mut i = 1;
    while i + 1 < reordered.len() {
        if i % 10 == 0 {
            reordered.swap(i, i + 1);
        }
        i += 1;
    }

    for (label, requests) in [("in-order stream", &stream), ("~10% reordered", &reordered)] {
        let strict = replay(
            requests,
            StrictSequential::new(),
            DiskModel::new(DiskParams::default()),
        );
        let metric = replay(
            requests,
            MetricReadAhead::new(),
            DiskModel::new(DiskParams::default()),
        );
        let speedup =
            (strict.total_micros as f64 - metric.total_micros as f64) / strict.total_micros as f64;
        println!("{label}:");
        println!(
            "  strict-sequential: {:>8.1} ms  ({} disk reads, {} cache hits)",
            strict.total_micros as f64 / 1000.0,
            strict.disk_reads,
            strict.cache_hits
        );
        println!(
            "  sequentiality-metric: {:>5.1} ms  ({} disk reads, {} cache hits)",
            metric.total_micros as f64 / 1000.0,
            metric.disk_reads,
            metric.cache_hits
        );
        println!(
            "  speedup: {:.1}% (paper: >5% at ~10% reordering)\n",
            100.0 * speedup
        );
    }
}
