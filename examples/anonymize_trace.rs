//! Anonymizing a trace for publication (§2): identities and names are
//! replaced with arbitrary-but-consistent tokens, suffix classes and
//! special forms survive, and the analyses are unchanged.
//!
//! Run with: `cargo run --release --example anonymize_trace`

use nfstrace::anonymize::{Anonymizer, AnonymizerConfig};
use nfstrace::core::summary::SummaryStats;
use nfstrace::core::text;
use nfstrace::core::time::HOUR;
use nfstrace::workload::{CampusConfig, CampusWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records = CampusWorkload::new(CampusConfig {
        users: 4,
        duration_micros: HOUR,
        seed: 11,
        ..CampusConfig::default()
    })
    .generate();

    let mut anonymizer = Anonymizer::new(AnonymizerConfig::default());
    let anonymized = anonymizer.anonymize_trace(&records);

    // Show a few before/after lines of the on-disk format.
    println!("raw -> anonymized (first named records):");
    let mut shown = 0;
    for (a, b) in records.iter().zip(&anonymized) {
        if a.name.is_some() && shown < 5 {
            println!("  {}", text::format_record(a));
            println!("  {}", text::format_record(b));
            shown += 1;
        }
    }

    // Round-trip the anonymized trace through the text format.
    let mut buf = Vec::new();
    text::write_trace(&mut buf, anonymized.iter())?;
    let reread = text::read_trace(&buf[..])?;
    assert_eq!(reread, anonymized);
    println!(
        "\ntext round-trip: {} records, {} bytes",
        reread.len(),
        buf.len()
    );

    // The analyses cannot tell the difference.
    let s_raw = SummaryStats::from_records(records.iter());
    let s_anon = SummaryStats::from_records(anonymized.iter());
    assert_eq!(s_raw.total_ops, s_anon.total_ops);
    assert_eq!(s_raw.bytes_read, s_anon.bytes_read);
    println!(
        "analyses agree: {} ops, {:.2} R/W ratio on both raw and anonymized traces",
        s_raw.total_ops,
        s_raw.rw_bytes_ratio()
    );

    // The mapping (kept private by the traced site) can be stored.
    let mapping = anonymizer.to_json()?;
    println!(
        "anonymization map: {} bytes of JSON (keep it secret)",
        mapping.len()
    );
    Ok(())
}
