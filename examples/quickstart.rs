//! Quickstart: simulate a small email server, capture its traffic off
//! the (simulated) wire with the passive sniffer, and print a workload
//! characterization.
//!
//! Run with: `cargo run --release --example quickstart`

use nfstrace::core::summary::SummaryStats;
use nfstrace::core::time::HOUR;
use nfstrace::sniffer::{Sniffer, WireEncoder};
use nfstrace::workload::{CampusConfig, CampusWorkload};

fn main() {
    // 1. Simulate three hours of a 6-user email system. The generator
    //    returns analysis-ready records directly...
    let records = CampusWorkload::new(CampusConfig {
        users: 6,
        duration_micros: 3 * HOUR,
        seed: 7,
        ..CampusConfig::default()
    })
    .generate();
    println!("generated {} NFS call/reply records", records.len());

    // 2. ...and the same traffic can be pushed through the real wire
    //    path: records -> RPC/XDR bytes -> TCP segments -> sniffer.
    //    (Here we re-encode a slice of it to keep the example snappy.)
    let sample = &records[..records.len().min(2000)];
    let mut encoder = WireEncoder::tcp_jumbo();
    let mut sniffer = Sniffer::new();
    let mut packets = 0u64;
    for r in sample {
        if let Some(e) = record_to_event(r) {
            for pkt in encoder.encode_event(&e) {
                packets += 1;
                sniffer.observe(&pkt);
            }
        }
    }
    let (sniffed, stats) = sniffer.finish();
    println!(
        "sniffed {packets} packets -> {} records ({} calls, {} matched replies)",
        sniffed.len(),
        stats.calls,
        stats.matched_replies
    );

    // 3. Characterize the full trace.
    let s = SummaryStats::from_records(records.iter());
    println!("\nworkload characterization:");
    println!("  total operations : {}", s.total_ops);
    println!(
        "  read ops         : {} ({} MB)",
        s.read_ops,
        s.bytes_read / 1_000_000
    );
    println!(
        "  write ops        : {} ({} MB)",
        s.write_ops,
        s.bytes_written / 1_000_000
    );
    println!("  read/write bytes : {:.2}", s.rw_bytes_ratio());
    println!("  data-call share  : {:.0}%", 100.0 * s.data_fraction());
}

/// Rebuilds a wire event from a flattened record (reads/writes only —
/// enough for the demo).
fn record_to_event(r: &nfstrace::core::TraceRecord) -> Option<nfstrace::client::EmittedCall> {
    use nfstrace::core::record::Op;
    use nfstrace::nfs::fh::FileHandle;
    use nfstrace::nfs::v3::*;
    let fh = FileHandle::from_u64(r.fh.0);
    let (call, reply) = match r.op {
        Op::Read => (
            Call3::Read(Read3Args {
                file: fh,
                offset: r.offset,
                count: r.count,
            }),
            Reply3::ok(Reply3Body::Read(Read3Res {
                file_attributes: None,
                count: r.ret_count,
                eof: r.eof,
                data: vec![0; r.ret_count as usize],
            })),
        ),
        Op::Write => (
            Call3::Write(Write3Args {
                file: fh,
                offset: r.offset,
                count: r.count,
                stable: StableHow::Unstable,
                data: vec![0; r.count as usize],
            }),
            Reply3::ok(Reply3Body::Write(Write3Res {
                count: r.ret_count,
                ..Write3Res::default()
            })),
        ),
        _ => return None,
    };
    Some(nfstrace::client::EmittedCall {
        wire_micros: r.micros,
        reply_micros: r.reply_micros,
        xid: r.xid ^ r.micros as u32,
        client_ip: r.client,
        server_ip: r.server,
        uid: r.uid,
        gid: r.gid,
        vers: 3,
        call,
        reply,
    })
}
